#!/usr/bin/env python3
"""Offline Markdown link checker for README.md and docs/.

Validates every ``[text](target)`` link in the repo's Markdown
documentation without touching the network:

* relative file links must point at an existing file inside the repo;
* ``#fragment`` anchors (same-file or on a linked Markdown file) must match
  a heading, using GitHub's slug rules (lowercase, punctuation stripped,
  spaces to dashes);
* external links (``http(s)://``, ``mailto:``) and relative links that
  escape the repository root (e.g. the CI badge's ``../../actions/...``,
  which only resolves on github.com) are skipped.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
printed).  Run from anywhere::

    python tools/check_links.py

Used by the CI docs job and wrapped by ``tests/test_docs.py`` so the check
also runs in the tier-1 matrix.
"""

from __future__ import annotations

import functools
import pathlib
import re
import sys
from typing import List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- target captured up to the closing parenthesis.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files() -> List[pathlib.Path]:
    """The documentation set: README.md plus everything under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # Inline code/markup characters do not contribute to the slug.
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_slugs(path: pathlib.Path) -> frozenset:
    """All anchor slugs defined by ``path``'s headings (cached per file)."""
    text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return frozenset(github_slug(m.group(1)) for m in _HEADING_RE.finditer(text))


def check_file(path: pathlib.Path,
               text: Optional[str] = None) -> List[Tuple[str, str]]:
    """Return ``(link, problem)`` pairs for every broken link in ``path``.

    ``text`` optionally supplies the already fence-stripped contents so a
    caller that also inspects the file does not read it twice.
    """
    problems: List[Tuple[str, str]] = []
    if text is None:
        text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            try:
                resolved.relative_to(REPO_ROOT)
            except ValueError:
                continue  # escapes the repo (e.g. the CI badge) -- site-relative
            if not resolved.exists():
                problems.append((target, f"file not found: {resolved}"))
                continue
            anchor_file = resolved
        else:
            anchor_file = path
        if fragment and anchor_file.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(anchor_file):
                problems.append((target, f"no heading for anchor #{fragment} "
                                         f"in {anchor_file.name}"))
    return problems


def main() -> int:
    """Check every documentation file; print failures; return the exit code."""
    files = markdown_files()
    total_links = 0
    broken = 0
    for path in files:
        text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        total_links += len(_LINK_RE.findall(text))
        for target, problem in check_file(path, text=text):
            broken += 1
            print(f"BROKEN {path.relative_to(REPO_ROOT)}: ({target}) -- {problem}")
    if broken:
        print(f"{broken} broken link(s) across {len(files)} files")
        return 1
    print(f"all {total_links} links ok across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
