"""ARES: Adaptive, Reconfigurable, Erasure-coded, atomic Storage.

A full reproduction of the ARES / TREAS protocol suite (Cadambe, Nicolaou,
Konwar, Prakash, Lynch, Medard -- ICDCS 2019) on top of a deterministic
discrete-event simulation of an asynchronous message-passing system.

Public API overview
-------------------

Substrates
    :mod:`repro.sim`        -- discrete-event simulator and coroutine futures.
    :mod:`repro.net`        -- simulated network, latency models, failure injection.
    :mod:`repro.chaos`      -- scripted fault schedules (the adversary subsystem).
    :mod:`repro.erasure`    -- Reed-Solomon [n, k] MDS codes over GF(256).
    :mod:`repro.consensus`  -- single-decree Paxos consensus per configuration.

Protocols
    :mod:`repro.dap`        -- data-access primitives (ABD, TREAS, LDR).
    :mod:`repro.registers`  -- static atomic registers built from DAPs (templates A1/A2).
    :mod:`repro.core`       -- the ARES reconfigurable store and ARES-TREAS.
    :mod:`repro.store`      -- sharded multi-object store (many keys, per-shard DAPs).

Verification and experiments
    :mod:`repro.spec`       -- histories, linearizability checking, DAP properties.
    :mod:`repro.workloads`  -- workload generators and canned scenarios.
    :mod:`repro.analysis`   -- analytic cost formulas and measured-cost reports.
"""

from repro.common.tags import Tag, TagValue
from repro.common.values import Value
from repro.common.ids import ProcessId, ConfigId
from repro.sim.core import Simulator
from repro.net.network import Network
from repro.net.latency import UniformLatency, FixedLatency
from repro.chaos import At, ChaosEngine, During, Schedule
from repro.erasure.rs import ReedSolomonCode
from repro.erasure.replication import ReplicationCode
from repro.config.configuration import Configuration
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.registers.static import StaticRegisterDeployment
from repro.store import ShardMap, ShardSpec, StoreDeployment, StoreSpec

__version__ = "1.2.0"

__all__ = [
    "Tag",
    "TagValue",
    "Value",
    "ProcessId",
    "ConfigId",
    "Simulator",
    "Network",
    "UniformLatency",
    "FixedLatency",
    "ChaosEngine",
    "Schedule",
    "At",
    "During",
    "ReedSolomonCode",
    "ReplicationCode",
    "Configuration",
    "AresDeployment",
    "DeploymentSpec",
    "StaticRegisterDeployment",
    "ShardMap",
    "ShardSpec",
    "StoreDeployment",
    "StoreSpec",
    "__version__",
]
