"""The chaos engine: arms fault schedules on a running system.

:class:`ChaosEngine` is the glue between the declarative layers
(:mod:`repro.chaos.faults`, :mod:`repro.chaos.schedule`) and the substrate:
it resolves process names against the network registry, turns schedule
entries into simulator events, owns the network hooks installed by window
faults, and keeps a timestamped log of everything it injected.

Determinism: fault *timing* rides on the simulator's event queue (ties
broken by insertion order, like every other event) and fault *randomness*
(drop/duplication coin flips, reorder jitter) comes from the engine's own
seeded RNG, independent of the simulator RNG that drives latencies.  Two
runs with the same seeds therefore produce byte-identical executions, and
the chaos log doubles as a determinism witness for tests.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.common.errors import SimulationError
from repro.common.ids import ProcessId
from repro.net.network import Network

from repro.chaos.faults import Fault, Isolate, Partition, Target
from repro.chaos.schedule import Schedule

#: Shorthand prefixes accepted in fault targets: ``s3`` = ``server-3`` etc.
_SHORTHAND = {"s": "server", "w": "writer", "r": "reader", "g": "reconfigurer"}

#: How many recent chaos-log entries the bounded ring retains.  Scripted
#: schedules record a handful of lines; per-message stochastic triggers at
#: 10^6-op scale would otherwise grow the log without bound and break the
#: streaming pipeline's O(open-window) memory guarantee.
LOG_RECENT = 256


#: Quantization step for effective gate rates.  Gates at the same seed
#: share one coin stream, so two runs whose rates quantize to the same
#: step are byte-identical -- the pass/fail oracle a ``fault_rate`` sweep
#: bisects is a *step function* of the rate, and frontier probes landing
#: anywhere inside a step agree deterministically instead of sampling
#: fresh micro-noise at every float.
RATE_RESOLUTION = 1.0 / 64.0


class StochasticGate:
    """A dedicated Bernoulli stream gating one :class:`~repro.chaos.schedule.Stochastic` entry.

    Each gate owns its own seeded RNG (derived from the engine seed and a
    per-engine gate counter), so gated per-message draws never perturb the
    engine RNG that scripted faults consume -- superimposing a stochastic
    background on a scripted schedule leaves the scripted coin flips
    byte-identical.

    The nominal ``rate`` is quantized to :data:`RATE_RESOLUTION` steps
    (round-to-nearest), which makes runs piecewise-constant in the rate:
    the coin stream does not depend on the rate, so every rate inside one
    step fires on exactly the same draws.
    """

    __slots__ = ("rate", "effective_rate", "rng", "triggers")

    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rate = rate
        self.effective_rate = round(rate / RATE_RESOLUTION) * RATE_RESOLUTION
        self.rng = rng
        #: How many times this gate fired (for reports; not part of signatures).
        self.triggers = 0

    def fires(self) -> bool:
        """Draw one Bernoulli trial; ``True`` lets the gated hook act."""
        if self.rng.random() < self.effective_rate:
            self.triggers += 1
            return True
        return False


class ChaosEngine:
    """Injects scripted faults into a :class:`~repro.net.network.Network`.

    Parameters
    ----------
    network:
        The network under attack (its simulator provides the clock).
    seed:
        Seed of the engine's dedicated RNG (an int or a string; strings
        hash deterministically across processes).  Keeping chaos randomness
        out of the simulator RNG means arming a schedule never perturbs
        latency or workload draws -- the fault-free prefix of a chaotic run
        is identical to the fault-free run.  Callers that also seed the
        simulator should derive a *distinct* seed here (e.g.
        ``f"chaos-{seed}"``): two ``random.Random`` instances built from
        the same integer emit identical sequences, which would correlate
        fault coin flips with latency draws.
    """

    def __init__(self, network: Network, seed: Union[int, str] = 0) -> None:
        self.network = network
        self.sim = network.sim
        self.seed = seed
        self.rng = random.Random(seed)
        #: Timestamped, time-ordered log of recent fault applications: a
        #: bounded ring (plus total/dropped counters) so per-message
        #: stochastic triggers stay O(1) in memory at any scale.
        self.log: "deque[Tuple[float, str]]" = deque(maxlen=LOG_RECENT)
        #: Total entries ever recorded / entries evicted from the ring.
        self.log_total = 0
        self.log_dropped = 0
        #: Currently active window faults (one entry per active start, so a
        #: fault reused by overlapping schedule windows appears once per
        #: window and each stop retires exactly one activation).
        self.active: List[Fault] = []
        #: Coroutine handles of operations the schedule fired (e.g.
        #: :class:`~repro.chaos.faults.Reconfigure` migrations); the
        #: scenario runner checks them for exceptions and stalls the same
        #: way it checks workload sessions.
        self.pending_operations: List = []
        # Hooks installed per fault instance: fault id -> stack of
        # per-activation groups of (kind, callable) entries with kind in
        # {"drop", "delay", "dup"}.  Grouping per activation lets the same
        # fault object appear in several (even overlapping) schedule
        # entries: each stop removes only its own activation's hooks.
        self._hooks: Dict[int, List[List[Tuple[str, object]]]] = {}
        # Collects the hooks installed by the fault.start() call in flight.
        self._pending_install: Optional[List[Tuple[str, object]]] = None
        # Bernoulli gates handed out to Stochastic schedule entries, in
        # creation (= arming) order; the counter seeds each gate's RNG.
        self.gates: List[StochasticGate] = []
        # The gate of the Stochastic activation in flight: while set, every
        # hook a fault installs is wrapped behind per-decision gate draws.
        self._active_gate: Optional[StochasticGate] = None
        #: Observability registry; None (the default) keeps the fault
        #: lifecycle at one attribute test per activation, same idiom as
        #: the network's quiet path.  Activations bump counters and stops
        #: leave ``heal`` marks the SLO DSL anchors recovery windows on.
        self.metrics = None

    # ------------------------------------------------------------ resolution
    def resolve(self, target: Target) -> ProcessId:
        """Resolve a target (id, ``"server-3"`` or ``"s3"``) to a :class:`ProcessId`."""
        if isinstance(target, ProcessId):
            if target not in self.network.processes:
                raise SimulationError(f"chaos target {target} is not registered")
            return target
        name = str(target)
        if len(name) >= 2 and name[0] in _SHORTHAND and name[1:].isdigit():
            name = f"{_SHORTHAND[name[0]]}-{int(name[1:])}"
        for pid in self.network.processes:
            if pid.name == name:
                return pid
        raise SimulationError(f"chaos target {target!r} does not name a registered process")

    def resolve_all(self, targets: Iterable[Target]) -> FrozenSet[ProcessId]:
        """Resolve a collection of targets to a frozen set of process ids."""
        return frozenset(self.resolve(target) for target in targets)

    # ------------------------------------------------------------- injection
    def inject(self, schedule: Union[Schedule, Iterable]) -> "ChaosEngine":
        """Arm ``schedule`` (a :class:`Schedule` or iterable of entries)."""
        if not isinstance(schedule, Schedule):
            schedule = Schedule(list(schedule))
        schedule.arm(self)
        return self

    def apply_at(self, time: float, fault: Fault) -> None:
        """Schedule a point application (or permanent start) of ``fault``."""
        self.sim.schedule_at(time, lambda: self._apply(fault),
                             label=f"chaos {fault.describe()}")

    def start_at(self, time: float, fault: Fault) -> None:
        """Schedule the start of a window fault."""
        self.sim.schedule_at(time, lambda: self._start(fault),
                             label=f"chaos start {fault.describe()}")

    def stop_at(self, time: float, fault: Fault) -> None:
        """Schedule the stop of a window fault."""
        self.sim.schedule_at(time, lambda: self._stop(fault),
                             label=f"chaos stop {fault.describe()}")

    # ------------------------------------------------------- stochastic gates
    def new_gate(self, rate: float) -> StochasticGate:
        """Create a Bernoulli gate with its own seed-derived RNG stream.

        The stream is ``Random(f"{seed!r}:gate:{n}")`` for the ``n``-th gate
        created on this engine, so gates are mutually independent, never
        touch :attr:`rng`, and reproduce exactly across processes.
        """
        gate = StochasticGate(rate, random.Random(f"{self.seed!r}:gate:{len(self.gates)}"))
        self.gates.append(gate)
        return gate

    def start_stochastic_at(self, time: float, fault: Fault,
                            gate: StochasticGate) -> None:
        """Schedule a gated start of a window fault (see :class:`StochasticGate`)."""
        self.sim.schedule_at(time, lambda: self._start_stochastic(fault, gate),
                             label=f"chaos start stochastic {fault.describe()}")

    # ------------------------------------------------------- fault lifecycle
    def _activate(self, fault: Fault, run) -> None:
        """Run a fault's start/apply, grouping the hooks it installs."""
        self._pending_install = []
        try:
            run()
        finally:
            installed, self._pending_install = self._pending_install, None
        if installed:
            self._hooks.setdefault(id(fault), []).append(installed)

    def _apply(self, fault: Fault) -> None:
        self.record(fault.describe())
        if self.metrics is not None:
            self.metrics.inc("fault_activations")
        self._activate(fault, lambda: fault.apply(self))
        if id(fault) in self._hooks:
            self.active.append(fault)

    def _start(self, fault: Fault) -> None:
        self.record(f"start {fault.describe()}")
        if self.metrics is not None:
            self.metrics.inc("fault_activations")
        self._activate(fault, lambda: fault.start(self))
        self.active.append(fault)

    def _start_stochastic(self, fault: Fault, gate: StochasticGate) -> None:
        # Log the *effective* (quantized) rate: two runs whose nominal
        # rates land in the same RATE_RESOLUTION step are the same run,
        # and their chaos logs must be byte-identical too.
        self.record(f"start {fault.describe()} ~rate={gate.effective_rate:g}")
        if self.metrics is not None:
            self.metrics.inc("fault_activations")
        self._active_gate = gate
        try:
            self._activate(fault, lambda: fault.start(self))
        finally:
            self._active_gate = None
        self.active.append(fault)

    def _stop(self, fault: Fault) -> None:
        if fault not in self.active:
            return  # already healed (e.g. by an explicit Heal entry)
        self.record(f"stop {fault.describe()}")
        if self.metrics is not None:
            self.metrics.mark("heal")
        fault.stop(self)
        self.active.remove(fault)

    def heal_partitions(self) -> None:
        """Stop every active :class:`Partition`/:class:`Isolate` activation."""
        while True:
            fault = next((f for f in self.active
                          if isinstance(f, (Partition, Isolate))), None)
            if fault is None:
                return
            self._stop(fault)

    def stop_all(self) -> None:
        """Stop every active window fault (used by teardown paths)."""
        for fault in list(self.active):
            self._stop(fault)

    def track_operation(self, handle) -> None:
        """Register a schedule-fired operation handle for liveness checking."""
        self.pending_operations.append(handle)

    def operation_errors(self) -> List[str]:
        """Failures of schedule-fired operations: exceptions and stalls.

        Called after the simulator drained; an operation that neither
        completed nor raised by then can never make progress (the event
        queue is empty), so it is reported as stalled.
        """
        errors = []
        for handle in self.pending_operations:
            if handle.exception() is not None:
                errors.append(repr(handle.exception()))
            elif not handle.done():
                label = getattr(handle, "label", "") or "operation"
                errors.append(f"chaos-triggered {label!r} never completed (stalled)")
        return errors

    def record(self, text: str) -> None:
        """Append a timestamped line to the (bounded) chaos log."""
        self.log_total += 1
        if len(self.log) == LOG_RECENT:
            self.log_dropped += 1
        self.log.append((self.sim.now, text))

    def describe_log(self) -> str:
        """Human-readable rendering of the chaos log (recent ring).

        When per-message stochastic triggers have evicted older entries, an
        elision header reports how many; otherwise the rendering is exactly
        the full log, line for line.
        """
        lines = [f"{t:8.2f}  {text}" for t, text in self.log]
        if self.log_dropped:
            lines.insert(0, f"  [...]   {self.log_dropped} earlier entries elided "
                            f"({self.log_total} recorded)")
        return "\n".join(lines)

    def log_signature(self) -> Tuple[Tuple[float, str], ...]:
        """Deterministic tuple rendering of the log, for run signatures.

        With nothing evicted this is byte-identical to ``tuple(log)`` over
        the previous unbounded list, so pre-existing golden signatures are
        unchanged; once the ring overflows, an elision marker carrying the
        exact drop/total counters keeps the signature a faithful witness.
        """
        if not self.log_dropped:
            return tuple(self.log)
        marker = (-1.0, f"[{self.log_dropped} entries elided; {self.log_total} recorded]")
        return (marker, *self.log)

    # ----------------------------------------------------------- hook wiring
    def _register_hook(self, fault: Fault, entry: Tuple[str, object]) -> None:
        if self._pending_install is not None:
            self._pending_install.append(entry)
        else:  # installed outside _start/_apply (direct fault.start(engine))
            self._hooks.setdefault(id(fault), []).append([entry])

    def install_drop_filter(self, fault: Fault, rule) -> None:
        """Install a drop filter on behalf of ``fault`` (removed on stop).

        Inside a :class:`~repro.chaos.schedule.Stochastic` activation the
        rule is wrapped behind a per-message gate draw: the gate flips its
        coin first (so the draw sequence is independent of the rule's own
        scope matching), and only a fired gate consults the rule.
        """
        gate = self._active_gate
        if gate is not None:
            inner = rule
            def rule(src, dest, message, _gate=gate, _inner=inner):
                return _gate.fires() and _inner(src, dest, message)
        self.network.add_drop_filter(rule)
        self._register_hook(fault, ("drop", rule))

    def install_delay_adjuster(self, fault: Fault, adjuster) -> None:
        """Install a delay adjuster on behalf of ``fault`` (removed on stop).

        Under a stochastic gate, messages whose gate draw does not fire keep
        their sampled delay untouched.
        """
        gate = self._active_gate
        if gate is not None:
            inner = adjuster
            def adjuster(src, dest, message, delay, _gate=gate, _inner=inner):
                if not _gate.fires():
                    return delay
                return _inner(src, dest, message, delay)
        self.network.add_delay_adjuster(adjuster)
        self._register_hook(fault, ("delay", adjuster))

    def install_duplicator(self, fault: Fault, rule) -> None:
        """Install a duplication rule on behalf of ``fault`` (removed on stop).

        Under a stochastic gate, messages whose gate draw does not fire get
        zero extra copies.
        """
        gate = self._active_gate
        if gate is not None:
            inner = rule
            def rule(src, dest, message, _gate=gate, _inner=inner):
                if not _gate.fires():
                    return 0
                return _inner(src, dest, message)
        self.network.add_duplicator(rule)
        self._register_hook(fault, ("dup", rule))

    def install_governor_rule(self, fault: Fault, governor, rule) -> None:
        """Install a server-admission rule on behalf of ``fault`` (removed on stop).

        ``governor`` is the target server's
        :class:`~repro.chaos.resources.ResourceGovernor`; the rule maps
        ``(server, message, now)`` to a refusal reason (or ``None`` to
        admit).  Under a stochastic gate the rule only applies to messages
        whose gate draw fires.
        """
        gate = self._active_gate
        if gate is not None:
            inner = rule
            def rule(server, message, now, _gate=gate, _inner=inner):
                if not _gate.fires():
                    return None
                return _inner(server, message, now)
        governor.rules.append(rule)
        self._register_hook(fault, ("governor", (governor, rule)))

    def remove_hooks(self, fault: Fault) -> None:
        """Remove the hooks of ``fault``'s most recent activation."""
        groups = self._hooks.get(id(fault))
        if not groups:
            return
        for kind, hook in groups.pop():
            if kind == "drop":
                self.network.remove_drop_filter(hook)
            elif kind == "delay":
                self.network.remove_delay_adjuster(hook)
            elif kind == "governor":
                governor, rule = hook
                if rule in governor.rules:
                    governor.rules.remove(rule)
            else:
                self.network.remove_duplicator(hook)
        if not groups:
            del self._hooks[id(fault)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChaosEngine active={len(self.active)} log={self.log_total}>"
