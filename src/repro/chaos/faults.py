"""Composable fault injectors.

Every fault is a small declarative object naming *what* goes wrong; *when* it
goes wrong is the schedule's job (:mod:`repro.chaos.schedule`) and *how* it
is wired into the running system is the engine's
(:mod:`repro.chaos.engine`).  Faults therefore hold no runtime state of
their own -- the engine keeps the installed network hooks, which lets the
same fault object appear in several schedule entries.

Two kinds of fault exist:

* **Point faults** (:class:`Crash`, :class:`Restart`, :class:`Heal`) happen
  instantaneously via :meth:`Fault.apply`.
* **Window faults** (:class:`Partition`, :class:`Isolate`, :class:`Drop`,
  :class:`Duplicate`, :class:`Reorder`, :class:`LatencySpike`,
  :class:`SlowServer`, and the resource-exhaustion family
  :class:`CpuPressure`, :class:`MemoryPressure`, :class:`DiskFull`,
  :class:`QueueExhaustion`) are active between :meth:`Fault.start` and
  :meth:`Fault.stop`; scheduling them with :class:`~repro.chaos.schedule.At`
  starts them permanently (until a :class:`Heal`).

Process targets may be given as :class:`~repro.common.ids.ProcessId`
objects, full names (``"server-3"``) or the shorthand used throughout the
paper's figures (``"s3"``, ``"w0"``, ``"r1"``, ``"g0"``).

Liveness note: the paper proves operations terminate only while each
configuration loses at most ``f`` servers and channels stay reliable.
Faults beyond that envelope (partitioning a client away from every quorum,
dropping messages to a majority) are *allowed* -- safety must still hold --
but operations may stall; scenario authors are responsible for keeping
schedules inside the tolerance when they also assert liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Tuple, TYPE_CHECKING, Union

from repro.common.ids import ProcessId, Role

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEngine

#: A process target: an id, a full name, or a figure-style shorthand.
Target = Union[ProcessId, str]


def _targets(targets: Iterable[Target]) -> Tuple[Target, ...]:
    if isinstance(targets, (str, ProcessId)):
        return (targets,)
    return tuple(targets)


@dataclass(frozen=True, eq=False)
class Fault:
    """Base class of all fault injectors.

    ``eq=False`` keeps identity semantics so the engine can track installed
    hooks per fault instance even when two faults have identical fields.
    """

    def describe(self) -> str:
        """One-line human-readable description (used for the chaos log)."""
        return type(self).__name__.lower()

    # ------------------------------------------------------------- point API
    def apply(self, engine: "ChaosEngine") -> None:
        """Fire a point fault; window faults interpret this as ``start``."""
        self.start(engine)

    # ------------------------------------------------------------ window API
    def start(self, engine: "ChaosEngine") -> None:
        """Activate the fault (install network hooks, crash processes, ...)."""
        raise NotImplementedError

    def stop(self, engine: "ChaosEngine") -> None:
        """Deactivate the fault (remove installed hooks).  Point faults ignore it."""


# --------------------------------------------------------------------- crash
@dataclass(frozen=True, eq=False)
class Crash(Fault):
    """Crash one or more processes (crash-stop, until a :class:`Restart`)."""

    targets: Tuple[Target, ...]

    def __init__(self, *targets: Target) -> None:
        object.__setattr__(self, "targets", _targets(targets))

    def describe(self) -> str:
        return f"crash({', '.join(str(t) for t in self.targets)})"

    def start(self, engine: "ChaosEngine") -> None:
        for pid in engine.resolve_all(self.targets):
            engine.network.crash(pid)


@dataclass(frozen=True, eq=False)
class Restart(Fault):
    """Restart crashed processes (crash-recovery with stable storage).

    Server protocol state survives the outage (see
    :meth:`repro.sim.process.Process.restart`); messages sent while the
    process was down are lost, exactly as in a real reboot.
    """

    targets: Tuple[Target, ...]

    def __init__(self, *targets: Target) -> None:
        object.__setattr__(self, "targets", _targets(targets))

    def describe(self) -> str:
        return f"restart({', '.join(str(t) for t in self.targets)})"

    def start(self, engine: "ChaosEngine") -> None:
        for pid in engine.resolve_all(self.targets):
            engine.network.restart(pid)


# ----------------------------------------------------------------- partition
@dataclass(frozen=True, eq=False)
class Partition(Fault):
    """Split the process set into groups that cannot exchange messages.

    Messages between two listed groups are dropped; processes not listed in
    any group (e.g. servers added by a reconfiguration after the partition
    was scheduled) form an implicit extra group that can only talk to itself.
    Use :class:`Isolate` when "these processes vs. everyone else" is meant.
    """

    groups: Tuple[FrozenSet[Target], ...]

    def __init__(self, *groups: Iterable[Target]) -> None:
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        object.__setattr__(self, "groups", tuple(frozenset(g) for g in groups))

    def describe(self) -> str:
        rendered = " | ".join("{" + ", ".join(sorted(str(t) for t in g)) + "}"
                              for g in self.groups)
        return f"partition({rendered})"

    def start(self, engine: "ChaosEngine") -> None:
        resolved = [engine.resolve_all(group) for group in self.groups]

        def side(pid: ProcessId) -> int:
            for index, group in enumerate(resolved):
                if pid in group:
                    return index
            return -1

        engine.install_drop_filter(
            self, lambda src, dest, message: side(src) != side(dest))

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class Isolate(Fault):
    """Partition ``targets`` away from everyone else.

    Unlike :class:`Partition`, membership of the "everyone else" side is
    decided per message, so processes created *after* the fault started
    (fresh servers installed by a reconfiguration) end up on the connected
    side instead of in limbo.
    """

    targets: Tuple[Target, ...]

    def __init__(self, *targets: Target) -> None:
        object.__setattr__(self, "targets", _targets(targets))

    def describe(self) -> str:
        return f"isolate({', '.join(str(t) for t in self.targets)})"

    def start(self, engine: "ChaosEngine") -> None:
        island = engine.resolve_all(self.targets)
        engine.install_drop_filter(
            self, lambda src, dest, message: (src in island) != (dest in island))

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class Heal(Fault):
    """Point fault removing every active :class:`Partition`/:class:`Isolate`."""

    def describe(self) -> str:
        return "heal()"

    def start(self, engine: "ChaosEngine") -> None:
        engine.heal_partitions()


# ------------------------------------------------------------ reconfiguration
@dataclass(frozen=True, eq=False)
class Reconfigure(Fault):
    """Point action firing a reconfiguration/migration from a fault schedule.

    ``action`` is a zero-argument callable -- typically a closure over the
    deployment, e.g. ``lambda: store.spawn_migrate_shard(0, dap="treas",
    fresh_servers=6)`` -- invoked at the scheduled time.  When it returns a
    coroutine handle, the handle is registered with the engine
    (:meth:`~repro.chaos.engine.ChaosEngine.track_operation`) so the
    scenario runner can assert the triggered operation neither stalled nor
    raised, exactly like the workload sessions.

    Strictly speaking a reconfiguration is an *operation*, not a fault --
    but scripting it through the schedule DSL is what lets adversary
    scenarios interleave migrations with crashes and partitions at exact
    virtual times, which is where reconfiguration bugs live.
    """

    action: Callable[[], object]
    note: str

    def __init__(self, action: Callable[[], object], note: str = "migration") -> None:
        object.__setattr__(self, "action", action)
        object.__setattr__(self, "note", note)

    def describe(self) -> str:
        return f"reconfigure({self.note})"

    def start(self, engine: "ChaosEngine") -> None:
        handle = self.action()
        if handle is not None:
            engine.track_operation(handle)


# ------------------------------------------------------------- message chaos
@dataclass(frozen=True, eq=False)
class Drop(Fault):
    """Drop each matching message independently with probability ``probability``.

    ``src``/``dst`` optionally restrict the fault to messages from/to the
    given processes (either side ``None`` matches everything).  Randomness
    comes from the engine's dedicated RNG, so a chaos run with the same seed
    drops exactly the same messages.
    """

    probability: float
    src: Optional[Tuple[Target, ...]]
    dst: Optional[Tuple[Target, ...]]

    def __init__(self, probability: float,
                 src: Optional[Iterable[Target]] = None,
                 dst: Optional[Iterable[Target]] = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        object.__setattr__(self, "probability", probability)
        object.__setattr__(self, "src", None if src is None else _targets(src))
        object.__setattr__(self, "dst", None if dst is None else _targets(dst))

    def describe(self) -> str:
        scope = ""
        if self.src is not None:
            scope += f" from {', '.join(str(t) for t in self.src)}"
        if self.dst is not None:
            scope += f" to {', '.join(str(t) for t in self.dst)}"
        return f"drop(p={self.probability}{scope})"

    def _matches(self, engine: "ChaosEngine") -> "tuple":
        src = None if self.src is None else engine.resolve_all(self.src)
        dst = None if self.dst is None else engine.resolve_all(self.dst)
        return src, dst

    def start(self, engine: "ChaosEngine") -> None:
        src_set, dst_set = self._matches(engine)

        def rule(src, dest, message) -> bool:
            if src_set is not None and src not in src_set:
                return False
            if dst_set is not None and dest not in dst_set:
                return False
            return engine.rng.random() < self.probability

        engine.install_drop_filter(self, rule)

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class Duplicate(Fault):
    """Deliver ``copies`` extra copies of each message with probability ``probability``.

    Every copy draws its own latency sample, so duplicates may overtake the
    original.  Quorum gathers dedupe replies per responder
    (:class:`repro.sim.futures.QuorumFuture`), so protocols remain correct.
    """

    probability: float
    copies: int

    def __init__(self, probability: float = 1.0, copies: int = 1) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("duplication probability must be in [0, 1]")
        if copies < 1:
            raise ValueError("duplication must add at least one copy")
        object.__setattr__(self, "probability", probability)
        object.__setattr__(self, "copies", copies)

    def describe(self) -> str:
        return f"duplicate(p={self.probability}, copies={self.copies})"

    def start(self, engine: "ChaosEngine") -> None:
        def rule(src, dest, message) -> int:
            return self.copies if engine.rng.random() < self.probability else 0

        engine.install_duplicator(self, rule)

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class Reorder(Fault):
    """Aggressively reorder messages by adding uniform jitter to each delay.

    The network already reorders (every message draws an independent delay);
    this fault widens the window by up to ``jitter`` extra time units per
    message, which stresses the "old replies arriving late" paths.
    """

    jitter: float

    def __init__(self, jitter: float) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        object.__setattr__(self, "jitter", jitter)

    def describe(self) -> str:
        return f"reorder(jitter={self.jitter})"

    def start(self, engine: "ChaosEngine") -> None:
        engine.install_delay_adjuster(
            self, lambda src, dest, message, delay: delay + engine.rng.uniform(0.0, self.jitter))

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class LatencySpike(Fault):
    """Multiply (and optionally pad) every delivery delay while active.

    Models a congested network: ``delay * factor + extra`` for all traffic.
    """

    factor: float
    extra: float

    def __init__(self, factor: float = 1.0, extra: float = 0.0) -> None:
        if factor < 0 or extra < 0:
            raise ValueError("latency spike factor/extra must be non-negative")
        object.__setattr__(self, "factor", factor)
        object.__setattr__(self, "extra", extra)

    def describe(self) -> str:
        return f"latency_spike(factor={self.factor}, extra={self.extra})"

    def start(self, engine: "ChaosEngine") -> None:
        engine.install_delay_adjuster(
            self, lambda src, dest, message, delay: delay * self.factor + self.extra)

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class SlowServer(Fault):
    """Gray failure: one process stays up but all its traffic crawls.

    Messages to *or* from ``target`` take ``delay * factor + extra``.  The
    process never appears crashed, so quorum gathers still count it as alive
    -- the classic "limping node" that is worse than a clean crash.
    """

    target: Target
    factor: float
    extra: float

    def __init__(self, target: Target, factor: float = 4.0, extra: float = 0.0) -> None:
        if factor < 0 or extra < 0:
            raise ValueError("slow-server factor/extra must be non-negative")
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "factor", factor)
        object.__setattr__(self, "extra", extra)

    def describe(self) -> str:
        return f"slow_server({self.target}, factor={self.factor}, extra={self.extra})"

    def start(self, engine: "ChaosEngine") -> None:
        pid = engine.resolve(self.target)

        def adjust(src, dest, message, delay: float) -> float:
            if src == pid or dest == pid:
                return delay * self.factor + self.extra
            return delay

        engine.install_delay_adjuster(self, adjust)

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


# --------------------------------------------------------- resource pressure
def _resolve_servers(engine: "ChaosEngine",
                     targets: Tuple[Target, ...]) -> "FrozenSet[ProcessId]":
    """Resolve targets, defaulting (empty tuple) to every registered server."""
    if targets:
        return engine.resolve_all(targets)
    return frozenset(pid for pid in engine.network.processes
                     if pid.role is Role.SERVER)


@dataclass(frozen=True, eq=False)
class CpuPressure(Fault):
    """Gray failure: pressured servers process everything slowly.

    Models CPU starvation as multiplicative processing-delay inflation on
    every message *into* the pressured servers (``delay * factor + extra``),
    via the existing delay-adjuster hooks -- the request sits in the run
    queue before the handler fires.  With no targets given, every server is
    pressured.  The servers never appear crashed, so quorums still count
    them; under a :class:`~repro.chaos.schedule.Stochastic` entry only the
    gated fraction of messages is slowed, which is what sporadic CPU
    contention looks like from the network.
    """

    targets: Tuple[Target, ...]
    factor: float
    extra: float

    def __init__(self, *targets: Target, factor: float = 3.0,
                 extra: float = 0.0) -> None:
        if factor < 0 or extra < 0:
            raise ValueError("cpu-pressure factor/extra must be non-negative")
        object.__setattr__(self, "targets", _targets(targets) if targets else ())
        object.__setattr__(self, "factor", factor)
        object.__setattr__(self, "extra", extra)

    def describe(self) -> str:
        scope = ", ".join(str(t) for t in self.targets) or "all servers"
        return f"cpu_pressure({scope}, factor={self.factor}, extra={self.extra})"

    def start(self, engine: "ChaosEngine") -> None:
        pressured = _resolve_servers(engine, self.targets)

        def adjust(src, dest, message, delay: float) -> float:
            if dest in pressured:
                return delay * self.factor + self.extra
            return delay

        engine.install_delay_adjuster(self, adjust)

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class MemoryPressure(Fault):
    """Bound the object-state bytes a server may hold; over budget it sheds.

    While active, a data-carrying request that would push the server's
    stored object bytes (:meth:`~repro.core.server.AresServer.storage_data_bytes`)
    over ``budget_bytes`` is refused with an explicit NACK instead of being
    applied -- bounded memory with explicit shedding, never silent growth.
    Metadata-only traffic (tag queries, configuration reads, consensus)
    always passes, so the control plane limps on while the data plane sheds.
    """

    budget_bytes: int
    targets: Tuple[Target, ...]

    def __init__(self, budget_bytes: int, *targets: Target) -> None:
        if budget_bytes < 0:
            raise ValueError("memory budget must be non-negative")
        object.__setattr__(self, "budget_bytes", int(budget_bytes))
        object.__setattr__(self, "targets", _targets(targets) if targets else ())

    def describe(self) -> str:
        scope = ", ".join(str(t) for t in self.targets) or "all servers"
        return f"memory_pressure({scope}, budget={self.budget_bytes}B)"

    def start(self, engine: "ChaosEngine") -> None:
        from repro.chaos.resources import ensure_governor, memory_budget_rule
        for pid in sorted(_resolve_servers(engine, self.targets)):
            server = engine.network.process(pid)
            engine.install_governor_rule(
                self, ensure_governor(server, engine),
                memory_budget_rule(self.budget_bytes))

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class DiskFull(Fault):
    """The persistence layer is out of space: every data write is refused.

    Write-persistence failures surface as retriable NACKs carrying the
    classic ``[Errno 28] No space left on device`` reason, so clients retry
    against the remaining quorum instead of hanging.  Reads and
    metadata-only traffic still succeed -- exactly how a full disk degrades
    a real replica.
    """

    targets: Tuple[Target, ...]

    def __init__(self, *targets: Target) -> None:
        object.__setattr__(self, "targets", _targets(targets) if targets else ())

    def describe(self) -> str:
        scope = ", ".join(str(t) for t in self.targets) or "all servers"
        return f"disk_full({scope})"

    def start(self, engine: "ChaosEngine") -> None:
        from repro.chaos.resources import disk_full_rule, ensure_governor
        for pid in sorted(_resolve_servers(engine, self.targets)):
            server = engine.network.process(pid)
            engine.install_governor_rule(
                self, ensure_governor(server, engine), disk_full_rule())

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)


@dataclass(frozen=True, eq=False)
class QueueExhaustion(Fault):
    """Bounded inflight request queues: a backed-up server refuses new work.

    Each pressured server gets a deterministic queue model: an admitted
    data-plane request occupies one of ``limit`` slots for ``service_time``
    simulated seconds, and a request arriving with all slots busy is NACKed.
    Control traffic (configuration reads/writes, consensus) bypasses the
    queue so reconfiguration can still drain an overloaded configuration.
    """

    limit: int
    service_time: float
    targets: Tuple[Target, ...]

    def __init__(self, limit: int, service_time: float = 4.0,
                 *targets: Target) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        if service_time <= 0:
            raise ValueError("queue service time must be positive")
        object.__setattr__(self, "limit", int(limit))
        object.__setattr__(self, "service_time", float(service_time))
        object.__setattr__(self, "targets", _targets(targets) if targets else ())

    def describe(self) -> str:
        scope = ", ".join(str(t) for t in self.targets) or "all servers"
        return f"queue_exhaustion({scope}, limit={self.limit}, service={self.service_time:g})"

    def start(self, engine: "ChaosEngine") -> None:
        from repro.chaos.resources import ensure_governor, queue_limit_rule
        for pid in sorted(_resolve_servers(engine, self.targets)):
            server = engine.network.process(pid)
            engine.install_governor_rule(
                self, ensure_governor(server, engine),
                queue_limit_rule(self.limit, self.service_time))

    def stop(self, engine: "ChaosEngine") -> None:
        engine.remove_hooks(self)
