"""Chaos/adversary subsystem: scripted fault schedules for ARES executions.

The paper's central claim is that atomicity and liveness survive crashes,
asynchrony and concurrent reconfiguration.  This package turns that claim
into an executable adversary: composable fault injectors driven by a
declarative schedule DSL, hooked into the simulator's event queue and the
network's delivery pipeline, so that every DAP, erasure code and
reconfiguration policy can be stress-tested under identical, reproducible
fault sequences.

The three layers:

* :mod:`repro.chaos.faults`   -- the fault vocabulary (:class:`Crash`,
  :class:`Restart`, :class:`Partition`, :class:`Isolate`, :class:`Heal`,
  :class:`Drop`, :class:`Duplicate`, :class:`Reorder`,
  :class:`LatencySpike`, :class:`SlowServer`) plus the scripted
  :class:`Reconfigure` action, which fires a live migration from a
  schedule so reconfigurations interleave with faults at exact times.
* :mod:`repro.chaos.schedule` -- the schedule DSL (:class:`At`,
  :class:`During`, :class:`Stochastic`, :class:`Schedule`).
* :mod:`repro.chaos.engine`   -- :class:`ChaosEngine`, which resolves
  process names, arms schedules on the simulator and keeps a deterministic
  log of every injected fault.

A schedule reads like the experiment section of a paper::

    Schedule([
        At(50, Crash("s3")),
        During(100, 200, Partition({"s1", "s2"}, {"s3", "s4", "s5"})),
        During(120, 260, SlowServer("s4", factor=5.0)),
        At(300, Restart("s3")),
    ])

and is armed with ``ChaosEngine(deployment.network).inject(schedule)``.
Named, seed-deterministic scenarios that cross-product DAPs with fault
schedules live in :mod:`repro.workloads.scenarios`.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (
    CpuPressure,
    Crash,
    DiskFull,
    Drop,
    Duplicate,
    Fault,
    Heal,
    Isolate,
    LatencySpike,
    MemoryPressure,
    Partition,
    QueueExhaustion,
    Reconfigure,
    Reorder,
    Restart,
    SlowServer,
)
from repro.chaos.schedule import At, During, Schedule, Stochastic

__all__ = [
    "ChaosEngine",
    "Fault",
    "Crash",
    "Restart",
    "Partition",
    "Isolate",
    "Heal",
    "Drop",
    "Duplicate",
    "Reconfigure",
    "Reorder",
    "LatencySpike",
    "SlowServer",
    "CpuPressure",
    "MemoryPressure",
    "DiskFull",
    "QueueExhaustion",
    "At",
    "During",
    "Stochastic",
    "Schedule",
]
