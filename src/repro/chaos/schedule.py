"""The fault-schedule DSL.

A :class:`Schedule` is a declarative list of timed entries:

* ``At(t, fault, ...)`` -- fire point faults (or permanently start window
  faults) at virtual time ``t``;
* ``During(t0, t1, fault, ...)`` -- start window faults at ``t0`` and stop
  them at ``t1``;
* ``Stochastic(t0, t1, fault, ..., rate=p)`` -- keep window faults armed on
  ``[t0, t1)`` but gate every per-message / per-admission hook decision
  behind an independent Bernoulli draw with probability ``p``, so scenarios
  superimpose continuous low-grade background failure on scripted incidents.

Schedules are plain data until armed on a
:class:`~repro.chaos.engine.ChaosEngine`, which translates every entry into
simulator events (:meth:`repro.sim.core.Simulator.schedule_at`), so fault
timing is ordered deterministically with protocol events -- same seed, same
schedule, same execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, TYPE_CHECKING

from repro.chaos.faults import Fault

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEngine


@dataclass(frozen=True)
class At:
    """Apply ``faults`` at absolute virtual time ``time``.

    Window faults started this way stay active until a matching stop entry
    (e.g. a later ``At(t, Heal())``) or the end of the run.
    """

    time: float
    faults: Tuple[Fault, ...]

    def __init__(self, time: float, *faults: Fault) -> None:
        if time < 0:
            raise ValueError(f"cannot schedule a fault at negative time {time}")
        if not faults:
            raise ValueError("At() needs at least one fault")
        object.__setattr__(self, "time", float(time))
        object.__setattr__(self, "faults", tuple(faults))

    def arm(self, engine: "ChaosEngine") -> None:
        """Schedule every fault's point application at ``time`` on ``engine``."""
        for fault in self.faults:
            engine.apply_at(self.time, fault)

    def describe(self) -> str:
        """One-line rendering, e.g. ``at t=50: crash(s3)``."""
        inner = "; ".join(fault.describe() for fault in self.faults)
        return f"at t={self.time:g}: {inner}"


@dataclass(frozen=True)
class During:
    """Keep ``faults`` active on the half-open window ``[start, end)``."""

    start: float
    end: float
    faults: Tuple[Fault, ...]

    def __init__(self, start: float, end: float, *faults: Fault) -> None:
        if start < 0:
            raise ValueError(f"cannot schedule a fault at negative time {start}")
        if end <= start:
            raise ValueError(f"During window [{start}, {end}) is empty")
        if not faults:
            raise ValueError("During() needs at least one fault")
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "end", float(end))
        object.__setattr__(self, "faults", tuple(faults))

    def arm(self, engine: "ChaosEngine") -> None:
        """Schedule every fault's start at ``start`` and stop at ``end``."""
        for fault in self.faults:
            engine.start_at(self.start, fault)
            engine.stop_at(self.end, fault)

    def describe(self) -> str:
        """One-line rendering, e.g. ``during [100, 200): isolate(s5)``."""
        inner = "; ".join(fault.describe() for fault in self.faults)
        return f"during [{self.start:g}, {self.end:g}): {inner}"


@dataclass(frozen=True)
class Stochastic:
    """Keep ``faults`` active on ``[start, end)``, gated by a Bernoulli rate.

    Unlike :class:`During`, whose faults act on *every* matching message or
    admission decision while the window is open, a stochastic entry draws an
    independent Bernoulli trial (probability ``rate``) per hook decision from
    a dedicated RNG stream the engine derives from its seed
    (:meth:`~repro.chaos.engine.ChaosEngine.new_gate`).  Same seed, same
    byte-identical execution; and ``rate=0.0`` arms *nothing at all*, so a
    zero-rate entry is signature-identical to leaving it out of the schedule.
    """

    start: float
    end: float
    faults: Tuple[Fault, ...]
    rate: float

    def __init__(self, start: float, end: float, *faults: Fault,
                 rate: float) -> None:
        if start < 0:
            raise ValueError(f"cannot schedule a fault at negative time {start}")
        if end <= start:
            raise ValueError(f"Stochastic window [{start}, {end}) is empty")
        if not faults:
            raise ValueError("Stochastic() needs at least one fault")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"Stochastic rate must be in [0, 1], got {rate}")
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "end", float(end))
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "rate", float(rate))

    def arm(self, engine: "ChaosEngine") -> None:
        """Arm gated starts/stops; a 0.0 rate arms nothing whatsoever."""
        if self.rate == 0.0:
            return
        gate = engine.new_gate(self.rate)
        for fault in self.faults:
            engine.start_stochastic_at(self.start, fault, gate)
            engine.stop_at(self.end, fault)

    def describe(self) -> str:
        """One-line rendering, e.g. ``stochastic [0, 400) rate=0.05: drop(...)``."""
        inner = "; ".join(fault.describe() for fault in self.faults)
        return f"stochastic [{self.start:g}, {self.end:g}) rate={self.rate:g}: {inner}"


class Schedule:
    """An ordered collection of :class:`At` / :class:`During` / :class:`Stochastic` entries."""

    def __init__(self, entries: Sequence) -> None:
        for entry in entries:
            if not hasattr(entry, "arm"):
                raise TypeError(
                    f"schedule entries must be At/During/Stochastic, "
                    f"got {type(entry).__name__}")
        self.entries: List = sorted(
            entries, key=lambda e: getattr(e, "time", getattr(e, "start", 0.0)))

    def arm(self, engine: "ChaosEngine") -> None:
        """Translate every entry into simulator events on ``engine``."""
        for entry in self.entries:
            entry.arm(engine)

    def describe(self) -> str:
        """Multi-line, time-ordered rendering of the schedule."""
        return "\n".join(entry.describe() for entry in self.entries)

    def __iter__(self) -> Iterator:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __add__(self, other: "Schedule") -> "Schedule":
        """Merge two schedules (entries stay time-sorted)."""
        return Schedule([*self.entries, *other.entries])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Schedule entries={len(self.entries)}>"
