"""Resource-exhaustion gray failures: the server-side admission governor.

Real fleets rarely die cleanly.  They run out of memory and start shedding
work, their disks fill up and writes fail with ``ENOSPC``, their queues
back up and new requests bounce -- all while the process stays up and keeps
answering health checks.  This module models that family of *gray* failures
as a per-server :class:`ResourceGovernor`: a stack of admission rules
consulted by :meth:`repro.core.server.AresServer.on_message` before any
request is dispatched.  A rule that refuses returns a reason string; the
server then replies with an explicit NACK carrying that reason instead of
silently dropping the request, so clients can distinguish "retriable
resource pressure" from a dead peer and retry with backoff.

The governor itself is inert scaffolding: with no rules installed (the
default -- servers are built with ``governor = None``) the admission check
is a single attribute test and executions are byte-identical to builds
without this module.  Rules are installed and removed through the chaos
engine's hook machinery (:meth:`~repro.chaos.engine.ChaosEngine.install_governor_rule`),
so resource faults participate in ``During``/``Stochastic`` windows, heal
cleanly, and respect stochastic gates like every network-level fault.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEngine

#: An admission rule: ``(server, message, now) -> refusal reason or None``.
AdmissionRule = Callable[[object, Message, float], Optional[str]]


class ResourceGovernor:
    """Per-server admission control under injected resource pressure.

    Parameters
    ----------
    server:
        The :class:`~repro.core.server.AresServer` being governed.
    engine:
        The chaos engine, used to record shed decisions in the chaos log
        (bounded, so per-message sheds at scale stay O(1) in memory).
    """

    def __init__(self, server, engine: "ChaosEngine") -> None:
        self.server = server
        self.engine = engine
        #: Active admission rules, consulted in installation order.
        self.rules: List[AdmissionRule] = []
        #: How many requests this governor refused (for reports/tests).
        self.shed = 0

    def admit(self, message: Message) -> Optional[str]:
        """Consult every rule; the first refusal reason wins (``None`` admits)."""
        if not self.rules:
            return None
        now = self.engine.sim.now
        for rule in self.rules:
            reason = rule(self.server, message, now)
            if reason is not None:
                self.shed += 1
                self.engine.record(
                    f"shed {message.kind} at {self.server.pid.name}: {reason}")
                return reason
        return None


def ensure_governor(server, engine: "ChaosEngine") -> ResourceGovernor:
    """The server's governor, created (and attached) on first use."""
    governor = getattr(server, "governor", None)
    if governor is None:
        governor = ResourceGovernor(server, engine)
        server.governor = governor
    return governor


# ----------------------------------------------------------------- rules
def memory_budget_rule(budget_bytes: int) -> AdmissionRule:
    """Refuse data-carrying writes that would push stored bytes over budget.

    Models bounded per-server object-state memory with explicit shedding:
    requests that carry no object data (tag queries, config reads, Paxos
    traffic) always pass, so the control plane keeps working while the data
    plane degrades -- the signature gray-failure asymmetry.
    """

    def rule(server, message: Message, now: float) -> Optional[str]:
        if message.data_bytes <= 0:
            return None
        stored = server.storage_data_bytes()
        if stored + message.data_bytes > budget_bytes:
            return (f"memory budget exceeded ({stored}+{message.data_bytes}B "
                    f"> {budget_bytes}B)")
        return None

    return rule


def disk_full_rule() -> AdmissionRule:
    """Refuse every data-carrying write: the persistence layer is out of space.

    The reason string follows the classic ``OSError(errno.ENOSPC)``
    rendering so logs read like the real incident.
    """

    def rule(server, message: Message, now: float) -> Optional[str]:
        if message.data_bytes <= 0:
            return None
        return "[Errno 28] No space left on device"

    return rule


def queue_limit_rule(limit: int, service_time: float) -> AdmissionRule:
    """Refuse data-plane requests once the simulated inflight queue is full.

    The queue is modelled deterministically: each admitted data-plane
    request occupies a slot for ``service_time`` simulated seconds; a
    request arriving when ``limit`` slots are busy is refused.  Control
    messages (configuration reads/writes, consensus) bypass the queue, so
    reconfiguration can still drain an overloaded configuration.
    """
    inflight: List[float] = []  # completion times, maintained sorted

    def rule(server, message: Message, now: float) -> Optional[str]:
        if message.request_id is None or message.data_bytes <= 0:
            return None
        while inflight and inflight[0] <= now:
            inflight.pop(0)
        if len(inflight) >= limit:
            return f"inflight queue full ({limit} slots)"
        inflight.append(now + service_time)
        return None

    return rule
