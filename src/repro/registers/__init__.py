"""Static atomic registers built from DAPs (templates A1 and A2).

A *static* register runs inside a single, fixed configuration -- no
reconfiguration.  This is how the paper presents TREAS (Section 3) and the
ABD/LDR transformations (Appendix A.1), and it is the baseline against which
the reconfigurable ARES store is compared in the benchmarks.
"""

from repro.registers.static import (
    RegisterServer,
    RegisterClient,
    StaticRegisterDeployment,
)

__all__ = [
    "RegisterServer",
    "RegisterClient",
    "StaticRegisterDeployment",
]
