"""Static (single-configuration) register deployments.

* :class:`RegisterServer` -- a server process hosting the DAP server state of
  one configuration.
* :class:`RegisterClient` -- a client process exposing ``read`` and ``write``
  following the generic templates A1 (read = get-data; put-data) and A2
  (read = get-data only), Algorithms 10 and 11.
* :class:`StaticRegisterDeployment` -- builds a whole system (simulator,
  network, servers, clients) for one configuration and offers synchronous
  helpers for tests, examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.ids import ProcessId, reader_id, server_id, writer_id
from repro.common.tags import TagValue
from repro.common.values import Value
from repro.config.configuration import Configuration, DapKind
from repro.dap import make_dap_client, make_dap_server_state
from repro.dap.interface import DapServerState
from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.futures import Coroutine
from repro.sim.process import Process
from repro.spec.history import History, OperationType
from repro.spec.properties import DapRecorder


class RegisterServer(Process):
    """A server hosting the DAP state of a single configuration."""

    def __init__(self, pid: ProcessId, network: Network, configuration: Configuration) -> None:
        super().__init__(pid, network)
        self.configuration = configuration
        self.dap_state: DapServerState = make_dap_server_state(configuration, pid)
        self.dap_state.bind(self)

    def on_message(self, src: ProcessId, message: Message) -> None:
        if not self.dap_state.handles(message.kind):
            return
        response = self.dap_state.handle(src, message)
        if response is not None:
            self.send(src, response)

    # ------------------------------------------------------------ accounting
    def storage_data_bytes(self) -> int:
        """Bytes of object data currently stored at this server."""
        return self.dap_state.storage_data_bytes()


class RegisterClient(Process):
    """A reader/writer client for a static configuration.

    Parameters
    ----------
    use_template_a2:
        When ``True``, reads skip the propagation (put-data) phase, i.e. the
        client follows template A2.  Only DAPs that satisfy property C3 (such
        as LDR's get-data, which performs its own helping) should be used
        this way; the default is the always-safe template A1.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        configuration: Configuration,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
        use_template_a2: bool = False,
    ) -> None:
        super().__init__(pid, network)
        self.configuration = configuration
        self.history = history
        self.dap_recorder = dap_recorder
        self.use_template_a2 = use_template_a2
        self.dap = make_dap_client(self, configuration)
        self._write_counter = 0

    # ------------------------------------------------------------ operations
    def read(self):
        """Template A1/A2 read: get-data (then put-data for A1); returns the value."""
        record = None
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.READ, self.now)
        pair = yield from self.dap.get_data()
        if not self.use_template_a2:
            yield from self.dap.put_data(pair)
        if record is not None:
            self.history.respond(record, self.now, value_label=pair.value.label,
                                 tag=pair.tag)
        return pair.value

    def write(self, value: Value):
        """Template A1 write: get-tag, increment, put-data; returns the new tag."""
        record = None
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.WRITE, self.now,
                                         value_label=value.label)
        tag = yield from self.dap.get_tag()
        new_tag = tag.increment(self.pid)
        yield from self.dap.put_data(TagValue(tag=new_tag, value=value))
        if record is not None:
            self.history.respond(record, self.now, tag=new_tag)
        return new_tag

    # --------------------------------------------------------------- helpers
    def next_value(self, size: int) -> Value:
        """A fresh uniquely-labelled value of ``size`` bytes (for workloads)."""
        self._write_counter += 1
        return Value.of_size(size, label=f"{self.pid.name}:{self._write_counter}")


class StaticRegisterDeployment:
    """A complete single-configuration system.

    Builds the simulator, network, one :class:`RegisterServer` per
    configuration member, plus the requested number of writer and reader
    clients.  The deployment offers synchronous ``write``/``read`` helpers
    (spawn the operation and run the simulator until it completes) as well as
    asynchronous spawning for concurrency experiments.

    Parameters
    ----------
    configuration_factory:
        Callable receiving the list of server ids and returning the
        :class:`~repro.config.configuration.Configuration`; use
        ``Configuration.abd`` / ``Configuration.treas`` / ``Configuration.ldr``
        partials.  Convenience constructors :meth:`abd`, :meth:`treas` and
        :meth:`ldr` cover the common cases.
    """

    def __init__(
        self,
        configuration: Configuration,
        num_writers: int = 1,
        num_readers: int = 1,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        record_dap: bool = False,
        use_template_a2: bool = False,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, latency=latency)
        self.configuration = configuration
        self.history = History()
        self.dap_recorder = DapRecorder(self.sim) if record_dap else None
        self.servers: Dict[ProcessId, RegisterServer] = {
            pid: RegisterServer(pid, self.network, configuration)
            for pid in configuration.servers
        }
        self.writers: List[RegisterClient] = [
            RegisterClient(writer_id(i), self.network, configuration,
                           history=self.history, dap_recorder=self.dap_recorder,
                           use_template_a2=use_template_a2)
            for i in range(num_writers)
        ]
        self.readers: List[RegisterClient] = [
            RegisterClient(reader_id(i), self.network, configuration,
                           history=self.history, dap_recorder=self.dap_recorder,
                           use_template_a2=use_template_a2)
            for i in range(num_readers)
        ]

    # ------------------------------------------------------------- factories
    @classmethod
    def abd(cls, num_servers: int = 3, **kwargs) -> "StaticRegisterDeployment":
        """An ABD (replication, majority quorum) deployment."""
        servers = [server_id(i) for i in range(num_servers)]
        from repro.common.ids import config_id

        return cls(Configuration.abd(config_id(0), servers), **kwargs)

    @classmethod
    def treas(cls, num_servers: int = 5, k: Optional[int] = None, delta: int = 2,
              **kwargs) -> "StaticRegisterDeployment":
        """A TREAS (erasure-coded) deployment."""
        servers = [server_id(i) for i in range(num_servers)]
        from repro.common.ids import config_id

        return cls(Configuration.treas(config_id(0), servers, k=k, delta=delta), **kwargs)

    @classmethod
    def ldr(cls, num_directories: int = 3, num_replicas: int = 3,
            **kwargs) -> "StaticRegisterDeployment":
        """An LDR (directory/replica) deployment."""
        directories = [server_id(i) for i in range(num_directories)]
        replicas = [server_id(num_directories + i) for i in range(num_replicas)]
        from repro.common.ids import config_id

        return cls(Configuration.ldr(config_id(0), directories, replicas), **kwargs)

    # ------------------------------------------------------------ sync helpers
    def write(self, value: Value, writer_index: int = 0) -> None:
        """Run one write to completion on writer ``writer_index``."""
        writer = self.writers[writer_index]
        op = writer.spawn(writer.write(value), label=f"{writer.pid}:write")
        self.sim.run_until_complete(op)

    def read(self, reader_index: int = 0) -> Value:
        """Run one read to completion on reader ``reader_index`` and return the value."""
        reader = self.readers[reader_index]
        op = reader.spawn(reader.read(), label=f"{reader.pid}:read")
        return self.sim.run_until_complete(op)

    # ----------------------------------------------------------- async helpers
    def spawn_write(self, value: Value, writer_index: int = 0) -> Coroutine:
        """Start a write without driving the simulator (for concurrency tests)."""
        writer = self.writers[writer_index]
        return writer.spawn(writer.write(value), label=f"{writer.pid}:write")

    def spawn_read(self, reader_index: int = 0) -> Coroutine:
        """Start a read without driving the simulator."""
        reader = self.readers[reader_index]
        return reader.spawn(reader.read(), label=f"{reader.pid}:read")

    def run(self) -> None:
        """Drain the event queue (completes every spawned operation)."""
        self.sim.run()

    # ------------------------------------------------------------ accounting
    def total_storage_data_bytes(self) -> int:
        """Total object-data bytes stored across all servers (Theorem 3's metric)."""
        return sum(server.storage_data_bytes() for server in self.servers.values())

    @property
    def stats(self):
        """The network traffic statistics."""
        return self.network.stats
