"""Configuration sequences (the local view ``cseq`` of the global list GL).

Every client process keeps a local approximation of the global configuration
sequence: an array of ``<cfg, status>`` pairs where ``status`` is ``P``
(pending) or ``F`` (finalized).  The key quantities used by the protocol and
by its analysis are:

* ``µ(cseq)`` -- the index of the *last finalized* configuration;
* ``ν(cseq)`` -- the index of the *last* (non-⊥) configuration.

The sequence operations here mirror the paper's notation and additionally
provide the prefix checks used by the tests for Lemmas 13-16 (Configuration
Uniqueness / Prefix / Progress).

Pruning
-------
The liveness analysis only ever traverses the suffix ``[µ, ν]``, so entries
strictly before ``µ`` are dead weight once the configurations they name have
been retired.  :meth:`ConfigSequence.prune` drops them behind a retained
**base offset**: every public index stays the *absolute* GL index (``µ``/``ν``
and all existing index arithmetic keep their paper meaning) while the backing
list shrinks.  :meth:`ConfigSequence.jump_to` is the client-side half of the
server's retirement tombstone -- a stale sequence whose retained window lies
entirely before a finalized successor re-bases onto that successor in one
step, mirroring :meth:`repro.store.shardmap.ShardMap.forward`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.config.configuration import Configuration


class Status(enum.Enum):
    """Configuration status within a sequence."""

    PENDING = "P"
    FINALIZED = "F"


@dataclass(frozen=True)
class ConfigRecord:
    """One ``<cfg, status>`` entry of a configuration sequence."""

    config: Configuration
    status: Status

    def finalized(self) -> "ConfigRecord":
        """The same entry with status ``F``."""
        return ConfigRecord(config=self.config, status=Status.FINALIZED)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.config.cfg_id}, {self.status.value}>"


class ConfigSequence:
    """A growable, prunable sequence of :class:`ConfigRecord` entries.

    Index 0 of GL always holds the initial configuration ``c0`` with status
    ``F``.  A fresh sequence retains everything from index 0; after
    :meth:`prune` (or :meth:`jump_to`) the backing list starts at
    :attr:`base` instead, but **every index accepted or returned by this
    class remains the absolute GL index** -- accessing a pruned index raises
    :class:`~repro.common.errors.ConfigurationError`.
    """

    def __init__(self, initial: Configuration) -> None:
        self._entries: List[ConfigRecord] = [ConfigRecord(initial, Status.FINALIZED)]
        #: Absolute GL index of ``_entries[0]`` (0 until the sequence prunes).
        self._base = 0
        #: Cached ``µ``: the index of the last finalized entry.  Finalized
        #: status only ever moves forward (``set_record`` never downgrades
        #: ``F``), so the cache is maintained monotonically by every mutator
        #: instead of re-scanning the list on each read/write/reconfig round.
        self._mu = 0

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        """Logical length of the known prefix of GL (``ν + 1``)."""
        return self._base + len(self._entries)

    def __iter__(self) -> Iterator[ConfigRecord]:
        """Iterate over the *retained* records (those at ``base .. ν``)."""
        return iter(self._entries)

    def __getitem__(self, index: int) -> ConfigRecord:
        return self._record_at(index)

    def _record_at(self, index: int) -> ConfigRecord:
        offset = index - self._base
        if offset < 0:
            raise ConfigurationError(
                f"index {index} was pruned from the sequence (retained base "
                f"is {self._base})")
        if offset >= len(self._entries):
            raise ConfigurationError(
                f"index {index} is beyond the sequence (last index "
                f"is {self.nu})")
        return self._entries[offset]

    def entries(self) -> List[ConfigRecord]:
        """A copy of the retained records (records are immutable)."""
        return list(self._entries)

    @property
    def base(self) -> int:
        """Absolute GL index of the first *retained* entry."""
        return self._base

    @property
    def nu(self) -> int:
        """``ν``: index of the last configuration in the sequence."""
        return self._base + len(self._entries) - 1

    @property
    def mu(self) -> int:
        """``µ``: index of the last configuration whose status is ``F``.

        Served from the monotone cache; ``mu_scan`` is the reference
        implementation the property tests compare against.
        """
        return self._mu

    def mu_scan(self) -> int:
        """``µ`` by backward scan over the retained entries (reference)."""
        for offset in range(len(self._entries) - 1, -1, -1):
            if self._entries[offset].status is Status.FINALIZED:
                return self._base + offset
        raise ConfigurationError("configuration sequence has no finalized entry")

    @property
    def last(self) -> ConfigRecord:
        """The record at index ``ν``."""
        return self._entries[-1]

    def config_at(self, index: int) -> Configuration:
        """The configuration object at ``index``."""
        return self._record_at(index).config

    def last_finalized(self) -> Configuration:
        """The configuration at index ``µ``."""
        return self._record_at(self._mu).config

    def pending_suffix(self) -> List[ConfigRecord]:
        """Records from index ``µ`` to ``ν`` inclusive (those an operation must visit)."""
        return self._entries[self._mu - self._base:]

    def index_of(self, cfg_id) -> Optional[int]:
        """Absolute index of the retained entry for ``cfg_id`` (or ``None``)."""
        for offset, entry in enumerate(self._entries):
            if entry.config.cfg_id == cfg_id:
                return self._base + offset
        return None

    def records_before(self, index: int) -> List[Tuple[int, ConfigRecord]]:
        """The retained ``(absolute index, record)`` pairs strictly before ``index``."""
        stop = min(index, self.nu + 1) - self._base
        return [(self._base + offset, self._entries[offset])
                for offset in range(max(0, stop))]

    # -------------------------------------------------------------- mutation
    def append(self, record: ConfigRecord) -> int:
        """Append a record; returns its (absolute) index.

        Appending a configuration whose identifier already appears in the
        retained window is rejected: the paper assumes each configuration is
        installed at most once (Section 4.1).
        """
        if any(entry.config.cfg_id == record.config.cfg_id for entry in self._entries):
            raise ConfigurationError(
                f"configuration {record.config.cfg_id} already present in the sequence"
            )
        self._entries.append(record)
        index = self._base + len(self._entries) - 1
        if record.status is Status.FINALIZED and index > self._mu:
            self._mu = index
        return index

    def set_record(self, index: int, record: ConfigRecord) -> None:
        """Install ``record`` at ``index`` (extending the sequence by one if needed).

        Used by the sequence-traversal code when it learns entry ``index``
        from a server.  Installing a *different* configuration at an existing
        index violates Configuration Uniqueness (Lemma 13) and raises.
        """
        offset = index - self._base
        if offset < 0:
            raise ConfigurationError(
                f"cannot install index {index}: it was pruned (retained base "
                f"is {self._base})")
        if offset < len(self._entries):
            existing = self._entries[offset]
            if existing.config.cfg_id != record.config.cfg_id:
                raise ConfigurationError(
                    f"configuration uniqueness violated at index {index}: "
                    f"{existing.config.cfg_id} vs {record.config.cfg_id}"
                )
            # Never downgrade F to P.
            if existing.status is Status.FINALIZED:
                return
            self._entries[offset] = record
            if record.status is Status.FINALIZED and index > self._mu:
                self._mu = index
        elif offset == len(self._entries):
            self.append(record)
        else:
            raise ConfigurationError(
                f"cannot install index {index} in a sequence ending at {self.nu}"
            )

    def finalize(self, index: int) -> None:
        """Mark the record at ``index`` as finalized."""
        offset = index - self._base
        if not 0 <= offset < len(self._entries):
            raise ConfigurationError(
                f"cannot finalize index {index}: retained window is "
                f"[{self._base}, {self.nu}]")
        self._entries[offset] = self._entries[offset].finalized()
        if index > self._mu:
            self._mu = index

    def prune(self, upto: int) -> int:
        """Drop every entry strictly before ``upto``; returns how many dropped.

        ``upto`` must not exceed ``µ``: the suffix ``[µ, ν]`` is what live
        operations gather over, so the last finalized entry (and everything
        after it) is always retained.  Indices keep their absolute meaning --
        the drop is recorded in :attr:`base`.
        """
        if upto > self._mu:
            raise ConfigurationError(
                f"cannot prune up to {upto}: last finalized index is {self._mu}")
        drop = upto - self._base
        if drop <= 0:
            return 0
        del self._entries[:drop]
        self._base = upto
        return drop

    def jump_to(self, index: int, record: ConfigRecord) -> None:
        """Re-base the sequence onto a finalized successor at ``index``.

        The client-side half of a retirement tombstone: when every retained
        entry of this sequence lies before a finalized configuration at
        ``index`` (learned from a retired configuration's servers), the
        intermediate entries are unlearnable -- their servers reclaimed them
        -- and unneeded (state was transferred forward before finalization,
        so gathering over ``[µ, ν]`` with ``µ = index`` is safe).  The
        sequence becomes the single retained record at ``index``.

        A jump to an index inside the retained window degrades to
        :meth:`set_record` (uniqueness still enforced); jumping *backwards*
        past the base is rejected.
        """
        if record.status is not Status.FINALIZED:
            raise ConfigurationError(
                f"tombstone jump target at index {index} must be finalized")
        if index <= self.nu:
            self.set_record(index, record)
            return
        self._entries = [record]
        self._base = index
        self._mu = index

    # ----------------------------------------------------------- comparisons
    def is_prefix_of(self, other: "ConfigSequence") -> bool:
        """Prefix order ``x ⪯_p y`` on the configuration members (Definition 12).

        Compared over the indices both sequences retain; entries either side
        pruned are covered by Configuration Uniqueness (a retired entry was
        finalized at its index, which never changes).
        """
        if len(self) > len(other):
            return False
        start = max(self._base, other._base)
        return all(
            self[i].config.cfg_id == other[i].config.cfg_id
            for i in range(start, len(self))
        )

    def copy(self) -> "ConfigSequence":
        """An independent copy (records are shared; they are immutable)."""
        clone = ConfigSequence(self._entries[0].config)
        clone._entries = list(self._entries)
        clone._base = self._base
        clone._mu = self._mu
        return clone

    def describe(self) -> str:
        """Compact rendering like ``[<c0,F>, <c1,P>]`` (with the base offset)."""
        inner = ", ".join(str(entry) for entry in self._entries)
        if self._base:
            return f"[...{self._base} pruned..., {inner}]"
        return "[" + inner + "]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
