"""Configuration sequences (the local view ``cseq`` of the global list GL).

Every client process keeps a local approximation of the global configuration
sequence: an array of ``<cfg, status>`` pairs where ``status`` is ``P``
(pending) or ``F`` (finalized).  The key quantities used by the protocol and
by its analysis are:

* ``µ(cseq)`` -- the index of the *last finalized* configuration;
* ``ν(cseq)`` -- the index of the *last* (non-⊥) configuration.

The sequence operations here mirror the paper's notation and additionally
provide the prefix checks used by the tests for Lemmas 13-16 (Configuration
Uniqueness / Prefix / Progress).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.errors import ConfigurationError
from repro.config.configuration import Configuration


class Status(enum.Enum):
    """Configuration status within a sequence."""

    PENDING = "P"
    FINALIZED = "F"


@dataclass(frozen=True)
class ConfigRecord:
    """One ``<cfg, status>`` entry of a configuration sequence."""

    config: Configuration
    status: Status

    def finalized(self) -> "ConfigRecord":
        """The same entry with status ``F``."""
        return ConfigRecord(config=self.config, status=Status.FINALIZED)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.config.cfg_id}, {self.status.value}>"


class ConfigSequence:
    """A growable sequence of :class:`ConfigRecord` entries.

    Index 0 always holds the initial configuration ``c0`` with status ``F``.
    """

    def __init__(self, initial: Configuration) -> None:
        self._entries: List[ConfigRecord] = [ConfigRecord(initial, Status.FINALIZED)]

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ConfigRecord]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ConfigRecord:
        return self._entries[index]

    def entries(self) -> List[ConfigRecord]:
        """A copy of the underlying list (records are immutable)."""
        return list(self._entries)

    @property
    def nu(self) -> int:
        """``ν``: index of the last configuration in the sequence."""
        return len(self._entries) - 1

    @property
    def mu(self) -> int:
        """``µ``: index of the last configuration whose status is ``F``."""
        for index in range(len(self._entries) - 1, -1, -1):
            if self._entries[index].status is Status.FINALIZED:
                return index
        raise ConfigurationError("configuration sequence has no finalized entry")

    @property
    def last(self) -> ConfigRecord:
        """The record at index ``ν``."""
        return self._entries[-1]

    def config_at(self, index: int) -> Configuration:
        """The configuration object at ``index``."""
        return self._entries[index].config

    def last_finalized(self) -> Configuration:
        """The configuration at index ``µ``."""
        return self._entries[self.mu].config

    def pending_suffix(self) -> List[ConfigRecord]:
        """Records from index ``µ`` to ``ν`` inclusive (those an operation must visit)."""
        return self._entries[self.mu:]

    # -------------------------------------------------------------- mutation
    def append(self, record: ConfigRecord) -> int:
        """Append a record; returns its index.

        Appending a configuration whose identifier already appears in the
        sequence is rejected: the paper assumes each configuration is
        installed at most once (Section 4.1).
        """
        if any(entry.config.cfg_id == record.config.cfg_id for entry in self._entries):
            raise ConfigurationError(
                f"configuration {record.config.cfg_id} already present in the sequence"
            )
        self._entries.append(record)
        return len(self._entries) - 1

    def set_record(self, index: int, record: ConfigRecord) -> None:
        """Install ``record`` at ``index`` (extending the sequence by one if needed).

        Used by the sequence-traversal code when it learns entry ``index``
        from a server.  Installing a *different* configuration at an existing
        index violates Configuration Uniqueness (Lemma 13) and raises.
        """
        if index < len(self._entries):
            existing = self._entries[index]
            if existing.config.cfg_id != record.config.cfg_id:
                raise ConfigurationError(
                    f"configuration uniqueness violated at index {index}: "
                    f"{existing.config.cfg_id} vs {record.config.cfg_id}"
                )
            # Never downgrade F to P.
            if existing.status is Status.FINALIZED:
                return
            self._entries[index] = record
        elif index == len(self._entries):
            self.append(record)
        else:
            raise ConfigurationError(
                f"cannot install index {index} in a sequence of length {len(self._entries)}"
            )

    def finalize(self, index: int) -> None:
        """Mark the record at ``index`` as finalized."""
        self._entries[index] = self._entries[index].finalized()

    # ----------------------------------------------------------- comparisons
    def is_prefix_of(self, other: "ConfigSequence") -> bool:
        """Prefix order ``x ⪯_p y`` on the configuration members (Definition 12)."""
        if len(self) > len(other):
            return False
        return all(
            self[i].config.cfg_id == other[i].config.cfg_id for i in range(len(self))
        )

    def copy(self) -> "ConfigSequence":
        """An independent copy (records are shared; they are immutable)."""
        clone = ConfigSequence(self._entries[0].config)
        clone._entries = list(self._entries)
        return clone

    def describe(self) -> str:
        """Compact rendering like ``[<c0,F>, <c1,P>]``."""
        return "[" + ", ".join(str(entry) for entry in self._entries) + "]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
