"""The configuration data type.

A configuration ``c`` (Section 2) describes:

(i)   the servers ``c.Servers`` that host the object in this epoch;
(ii)  the quorum system defined on ``c.Servers``;
(iii) the atomic-memory algorithm used inside the configuration (which DAP
      implementation, with which erasure-code parameters and garbage
      collection bound δ); and
(iv)  the consensus instance ``c.Con`` run on the servers of ``c`` to agree
      on the configuration that succeeds ``c``.

Configurations are immutable; reconfiguration installs *new* configuration
objects rather than mutating existing ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import ConfigId, ProcessId
from repro.config.quorums import MajorityQuorums, QuorumSystem, ThresholdQuorums
from repro.erasure.interface import ErasureCode
from repro.erasure.replication import ReplicationCode
from repro.erasure.rs import ReedSolomonCode


class DapKind(enum.Enum):
    """Which DAP implementation a configuration runs internally."""

    ABD = "abd"
    TREAS = "treas"
    LDR = "ldr"


@dataclass(frozen=True)
class Configuration:
    """An immutable configuration.

    Use the :meth:`abd`, :meth:`treas` or :meth:`ldr` factories rather than
    the constructor; they pick the matching quorum system and erasure code
    and validate the parameter constraints the paper imposes.

    Attributes
    ----------
    cfg_id:
        The unique configuration identifier (an element of ``C``).
    servers:
        Ordered tuple of server process ids (``c.Servers``).  The order
        defines which coded element index each server stores.
    dap:
        The :class:`DapKind` used for ``get-tag`` / ``get-data`` / ``put-data``
        inside this configuration.
    code:
        The erasure code; ``code.n == len(servers)``.
    quorums:
        The quorum system used by the DAP.
    delta:
        TREAS garbage-collection parameter δ: the maximum number of writes
        concurrent with a read for which liveness is guaranteed; servers keep
        coded elements for the δ+1 highest tags.
    consensus_quorums:
        Quorum system used by the configuration's consensus instance and by
        the configuration-sequence service (always majorities over
        ``servers``).
    ldr_directories / ldr_replicas:
        For LDR configurations only: the split of ``servers`` into directory
        servers and replica servers.
    """

    cfg_id: ConfigId
    servers: Tuple[ProcessId, ...]
    dap: DapKind
    code: ErasureCode
    quorums: QuorumSystem
    delta: int = 2
    consensus_quorums: QuorumSystem = field(default=None)  # type: ignore[assignment]
    ldr_directories: Tuple[ProcessId, ...] = ()
    ldr_replicas: Tuple[ProcessId, ...] = ()

    def __post_init__(self) -> None:
        if len(self.servers) == 0:
            raise ConfigurationError(f"configuration {self.cfg_id} has no servers")
        if len(set(self.servers)) != len(self.servers):
            raise ConfigurationError(f"configuration {self.cfg_id} has duplicate servers")
        if self.code.n != len(self.servers):
            raise ConfigurationError(
                f"configuration {self.cfg_id}: code n={self.code.n} but "
                f"{len(self.servers)} servers"
            )
        if self.delta < 0:
            raise ConfigurationError("delta must be non-negative")
        if self.consensus_quorums is None:
            object.__setattr__(self, "consensus_quorums", MajorityQuorums(list(self.servers)))

    # -------------------------------------------------------------- factories
    @classmethod
    def abd(
        cls,
        cfg_id: ConfigId,
        servers: Sequence[ProcessId],
    ) -> "Configuration":
        """A replication-based configuration running the ABD DAP."""
        servers = tuple(servers)
        if not servers:
            raise ConfigurationError(f"configuration {cfg_id} has no servers")
        return cls(
            cfg_id=cfg_id,
            servers=servers,
            dap=DapKind.ABD,
            code=ReplicationCode(len(servers)),
            quorums=MajorityQuorums(list(servers)),
        )

    @classmethod
    def treas(
        cls,
        cfg_id: ConfigId,
        servers: Sequence[ProcessId],
        k: Optional[int] = None,
        delta: int = 2,
    ) -> "Configuration":
        """An erasure-coded configuration running the TREAS DAP.

        Parameters
        ----------
        k:
            The MDS code dimension; defaults to ``⌈2n/3⌉`` (the value used in
            the paper's description).  Liveness requires ``k > n/3``.
        delta:
            Concurrency bound δ for garbage collection.
        """
        servers = tuple(servers)
        n = len(servers)
        if k is None:
            k = -(-2 * n // 3)  # ceil(2n/3)
        if not 1 <= k <= n:
            raise ConfigurationError(f"invalid TREAS parameters n={n}, k={k}")
        if 3 * k <= n:
            raise ConfigurationError(
                f"TREAS liveness requires k > n/3 (got n={n}, k={k})"
            )
        return cls(
            cfg_id=cfg_id,
            servers=servers,
            dap=DapKind.TREAS,
            code=ReedSolomonCode(n, k),
            quorums=ThresholdQuorums.for_treas(servers, k),
            delta=delta,
        )

    @classmethod
    def ldr(
        cls,
        cfg_id: ConfigId,
        directories: Sequence[ProcessId],
        replicas: Sequence[ProcessId],
        f: Optional[int] = None,
    ) -> "Configuration":
        """A replication-based configuration running the LDR DAP.

        ``directories`` hold metadata (tag and replica locations); ``replicas``
        hold the values.  ``f`` is the replica crash tolerance: writes go to
        ``2f+1`` replicas and await ``f+1`` acks.  Defaults to the largest
        ``f`` with ``2f + 1 <= len(replicas)``.
        """
        directories = tuple(directories)
        replicas = tuple(replicas)
        if set(directories) & set(replicas):
            raise ConfigurationError("LDR directories and replicas must be disjoint")
        servers = directories + replicas
        if f is None:
            f = (len(replicas) - 1) // 2
        if 2 * f + 1 > len(replicas):
            raise ConfigurationError(
                f"LDR needs 2f+1 <= |replicas| (f={f}, replicas={len(replicas)})"
            )
        return cls(
            cfg_id=cfg_id,
            servers=servers,
            dap=DapKind.LDR,
            code=ReplicationCode(len(servers)),
            quorums=MajorityQuorums(list(directories)),
            ldr_directories=directories,
            ldr_replicas=replicas,
            delta=f,
        )

    # --------------------------------------------------------------- helpers
    @property
    def n(self) -> int:
        """Number of servers in the configuration."""
        return len(self.servers)

    @property
    def k(self) -> int:
        """Erasure-code dimension (1 for replication)."""
        return self.code.k

    @property
    def quorum_size(self) -> int:
        """The DAP's reply threshold for this configuration."""
        return self.quorums.quorum_size

    @property
    def ldr_f(self) -> int:
        """LDR's replica crash tolerance parameter ``f``."""
        return self.delta

    def server_index(self, pid: ProcessId) -> int:
        """Index of a server within the configuration (its coded-element index)."""
        try:
            return self.servers.index(pid)
        except ValueError:
            raise ConfigurationError(f"{pid} is not a member of {self.cfg_id}") from None

    def max_crash_failures(self) -> int:
        """Crash tolerance: ``⌊(n-k)/2⌋`` for TREAS, minority for ABD/LDR."""
        if self.dap is DapKind.TREAS:
            return (self.n - self.k) // 2
        return self.quorums.max_crash_failures()

    def describe(self) -> str:
        """One-line description used in reports and examples."""
        return (
            f"{self.cfg_id}: {self.dap.value} n={self.n} k={self.k} "
            f"delta={self.delta} quorum={self.quorum_size}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def __hash__(self) -> int:
        return hash(self.cfg_id)
