"""Configurations, quorum systems and configuration sequences.

A *configuration* (Section 2) identifies a set of servers, a quorum system
over them, the atomic-memory algorithm (DAP implementation) and erasure code
used within them, and names the consensus instance used to agree on its
successor.  ARES maintains a *configuration sequence*: an array of
``<cfg, status>`` pairs where ``status ∈ {P, F}``.
"""

from repro.config.quorums import QuorumSystem, MajorityQuorums, ThresholdQuorums
from repro.config.configuration import Configuration, DapKind
from repro.config.sequence import ConfigRecord, ConfigSequence, Status

__all__ = [
    "QuorumSystem",
    "MajorityQuorums",
    "ThresholdQuorums",
    "Configuration",
    "DapKind",
    "ConfigRecord",
    "ConfigSequence",
    "Status",
]
