"""Quorum systems.

Two quorum systems are used by the protocols:

* **Majority quorums** -- any subset of strictly more than half the servers.
  Used by ABD-backed configurations and by the configuration-sequence
  service (``read-config`` / ``put-config`` wait for a majority).
* **Threshold quorums of size ⌈(n+k)/2⌉** -- used by TREAS.  Any two such
  quorums intersect in at least ``k`` servers, which is what makes a tag
  written to one quorum decodable by any later reader quorum.

Quorum systems are represented intensionally (by their threshold) rather
than by enumerating the quorum sets, which would be exponential in ``n``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import ProcessId


class QuorumSystem:
    """Abstract quorum system over a fixed server set."""

    def __init__(self, servers: Sequence[ProcessId]) -> None:
        self.servers = list(servers)
        if len(set(self.servers)) != len(self.servers):
            raise ConfigurationError("quorum system has duplicate servers")

    @property
    def n(self) -> int:
        """Number of servers."""
        return len(self.servers)

    @property
    def quorum_size(self) -> int:
        """Number of replies a client must gather to have heard a quorum."""
        raise NotImplementedError

    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        """Whether ``subset`` contains a quorum."""
        members: Set[ProcessId] = set(subset) & set(self.servers)
        return len(members) >= self.quorum_size

    def intersection_lower_bound(self) -> int:
        """Minimum size of the intersection of any two quorums."""
        return max(0, 2 * self.quorum_size - self.n)

    def max_crash_failures(self) -> int:
        """Largest number of server crashes that still leaves a quorum alive."""
        return self.n - self.quorum_size

    def validate(self) -> None:
        """Sanity-check the system (non-empty quorums that fit in the server set)."""
        if not 0 < self.quorum_size <= self.n:
            raise ConfigurationError(
                f"quorum size {self.quorum_size} invalid for {self.n} servers"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, quorum={self.quorum_size})"


class MajorityQuorums(QuorumSystem):
    """All subsets of size ``⌊n/2⌋ + 1`` (strict majorities)."""

    @property
    def quorum_size(self) -> int:
        return self.n // 2 + 1


class ThresholdQuorums(QuorumSystem):
    """All subsets of a given fixed size.

    TREAS uses threshold ``⌈(n + k) / 2⌉``; the class is generic so tests can
    exercise other thresholds.
    """

    def __init__(self, servers: Sequence[ProcessId], threshold: int) -> None:
        super().__init__(servers)
        self._threshold = threshold
        self.validate()

    @property
    def quorum_size(self) -> int:
        return self._threshold

    @classmethod
    def for_treas(cls, servers: Sequence[ProcessId], k: int) -> "ThresholdQuorums":
        """The TREAS quorum system ``⌈(n+k)/2⌉`` for an ``[n, k]`` code."""
        n = len(servers)
        threshold = -(-(n + k) // 2)  # ceil((n + k) / 2)
        return cls(servers, threshold)
