"""The multi-writer ABD DAP (Appendix A.1, Algorithm 12).

Replication based: every server stores the whole value together with its
tag.  The primitives are:

* ``get-tag``  -- query all servers, await a majority, return the maximum tag.
* ``get-data`` -- query all servers, await a majority, return the pair with
  the maximum tag.
* ``put-data(⟨τ, v⟩)`` -- send the full pair to all servers, await a majority
  of acks; a server overwrites its local pair iff the incoming tag is larger.

Communication cost (normalised by the value size): 1·n for ``put-data``,
up to 1·n for ``get-data`` replies, which is what makes ABD's read/write
costs ``2n`` / ``n`` in the paper's comparison, against TREAS's ``(δ+2)n/k``
and ``n/k``.
"""

from __future__ import annotations

from typing import Optional

from repro.common.ids import ProcessId
from repro.common.tags import BOTTOM_TAG, Tag, TagValue, max_tag
from repro.common.values import BOTTOM_VALUE
from repro.config.configuration import Configuration
from repro.dap.interface import DapClient, DapServerState
from repro.net.message import Message, reply, request

QUERY_TAG = "ABD-QUERY-TAG"
QUERY_DATA = "ABD-QUERY"
WRITE = "ABD-WRITE"


class AbdDapClient(DapClient):
    """Client-side ABD primitives."""

    def get_tag(self):
        """Return the maximum tag held by some majority of servers."""
        token = self._record_start("get-tag")
        cfg = self.configuration
        replies = yield self.process.broadcast_and_gather(
            cfg.servers,
            lambda rid: request(QUERY_TAG, rid, config_id=cfg.cfg_id),
            threshold=cfg.quorums.quorum_size,
            label="abd-get-tag",
        )
        tag = max_tag([msg["tag"] for _, msg in replies])
        self._record_end(token, tag)
        return tag

    def get_data(self):
        """Return the ``(tag, value)`` pair with the maximum tag from a majority."""
        token = self._record_start("get-data")
        cfg = self.configuration
        replies = yield self.process.broadcast_and_gather(
            cfg.servers,
            lambda rid: request(QUERY_DATA, rid, config_id=cfg.cfg_id),
            threshold=cfg.quorums.quorum_size,
            label="abd-get-data",
        )
        best: Optional[TagValue] = None
        for _, msg in replies:
            pair = TagValue(tag=msg["tag"], value=msg["value"])
            if best is None or pair.tag > best.tag:
                best = pair
        assert best is not None  # threshold >= 1
        self._record_end(token, best)
        return best

    def put_data(self, tag_value: TagValue):
        """Propagate ``tag_value`` to a majority of servers."""
        token = self._record_start("put-data", tag_value)
        cfg = self.configuration
        value = tag_value.value
        yield self.process.broadcast_and_gather(
            cfg.servers,
            lambda rid: request(
                WRITE, rid, config_id=cfg.cfg_id, data_bytes=value.size,
                metadata_fields=2, tag=tag_value.tag, value=value,
            ),
            threshold=cfg.quorums.quorum_size,
            label="abd-put-data",
        )
        self._record_end(token, None)
        return None


class AbdServerState(DapServerState):
    """Per-configuration server state: one ``(tag, value)`` pair."""

    HANDLED_KINDS = (QUERY_TAG, QUERY_DATA, WRITE)

    def __init__(self, configuration: Configuration, server_pid: ProcessId) -> None:
        super().__init__(configuration, server_pid)
        self.tag: Tag = BOTTOM_TAG
        self.value = BOTTOM_VALUE

    def handle(self, src: ProcessId, message: Message) -> Optional[Message]:
        kind = message.kind
        if kind == QUERY_TAG:
            return reply(message, kind="ABD-TAG", tag=self.tag)
        if kind == QUERY_DATA:
            return reply(message, kind="ABD-DATA", data_bytes=self.value.size,
                         metadata_fields=2, tag=self.tag, value=self.value)
        if kind == WRITE:
            incoming_tag: Tag = message["tag"]
            if incoming_tag > self.tag:
                self.tag = incoming_tag
                self.value = message["value"]
            return reply(message, kind="ABD-ACK")
        return None

    def storage_data_bytes(self) -> int:
        return self.value.size

    def max_known_tag(self) -> Tag:
        return self.tag
