"""The TREAS DAP (Section 3, Algorithms 2 and 3).

TREAS is the paper's two-round erasure-coded implementation of the data
access primitives.  Values are stored as ``[n, k]`` MDS coded elements, one
per server; every quorum phase awaits ``⌈(n+k)/2⌉`` replies so that any two
phases intersect in at least ``k`` servers.

Server state: ``List``, a set of ``(tag, coded-element)`` pairs.  Only the
coded elements of the ``δ+1`` highest tags are retained; older tags keep a
``⊥`` placeholder (Algorithm 3, line 15).  δ bounds the number of writes
concurrent with a read for which reads remain live (Theorem 9).

Client primitives:

* ``get-tag``  -- query all servers, await ``⌈(n+k)/2⌉`` maximum tags, return
  the overall maximum.
* ``get-data`` -- query all ``List`` variables, await ``⌈(n+k)/2⌉``; let
  ``t*_max`` be the maximum tag present in at least ``k`` lists and
  ``t^dec_max`` the maximum tag whose coded elements are present in at least
  ``k`` lists; if they coincide, decode and return, otherwise the attempt is
  inconclusive and the primitive retries (the paper's reader simply does not
  complete; retrying preserves safety and gives the same liveness guarantee
  under the δ bound).
* ``put-data(⟨τ, v⟩)`` -- send ``(τ, Φ_i(v))`` to each server ``s_i``, await
  ``⌈(n+k)/2⌉`` acks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import QuorumUnavailableError
from repro.common.ids import ProcessId
from repro.common.tags import BOTTOM_TAG, Tag, TagValue, max_tag
from repro.common.values import BOTTOM_VALUE
from repro.config.configuration import Configuration
from repro.dap.interface import DapClient, DapServerState
from repro.erasure.interface import CodedElement
from repro.net.message import Message, reply, request

QUERY_TAG = "TREAS-QUERY-TAG"
QUERY_LIST = "TREAS-QUERY-LIST"
PUT_DATA = "TREAS-PUT-DATA"


class TreasDapClient(DapClient):
    """Client-side TREAS primitives."""

    #: How many times ``get-data`` re-queries when the decodability conditions
    #: fail.  Under the paper's assumption (at most δ writes concurrent with a
    #: valid read) the first attempt succeeds; retries only matter when the
    #: assumption is deliberately violated by stress tests.
    max_get_data_attempts: int = 64

    # ------------------------------------------------------------ primitives
    def get_tag(self):
        """Return the maximum tag reported by ``⌈(n+k)/2⌉`` servers."""
        token = self._record_start("get-tag")
        cfg = self.configuration
        replies = yield self.process.broadcast_and_gather(
            cfg.servers,
            lambda rid: request(QUERY_TAG, rid, config_id=cfg.cfg_id),
            threshold=cfg.quorum_size,
            label="treas-get-tag",
        )
        tag = max_tag([msg["tag"] for _, msg in replies])
        self._record_end(token, tag)
        return tag

    def get_data(self):
        """Return the maximal decodable tag-value pair from ``⌈(n+k)/2⌉`` lists."""
        token = self._record_start("get-data")
        cfg = self.configuration
        attempts = 0
        while True:
            attempts += 1
            replies = yield self.process.broadcast_and_gather(
                cfg.servers,
                lambda rid: request(QUERY_LIST, rid, config_id=cfg.cfg_id),
                threshold=cfg.quorum_size,
                label="treas-get-data",
            )
            result = self._select_decodable(replies)
            if result is not None:
                self._record_end(token, result)
                return result
            if attempts >= self.max_get_data_attempts:
                raise QuorumUnavailableError(
                    f"TREAS get-data did not find a decodable tag after {attempts} "
                    f"attempts in {cfg.cfg_id}; more than delta={cfg.delta} writes "
                    "are concurrent with this read"
                )
            # Back off for a short, seeded delay before re-querying.
            yield self.process.sleep(self.process.sim.uniform(0.1, 0.5))

    def put_data(self, tag_value: TagValue):
        """Send one coded element per server and await ``⌈(n+k)/2⌉`` acks."""
        token = self._record_start("put-data", tag_value)
        cfg = self.configuration
        elements = cfg.code.encode(tag_value.value)
        def make_factory(element: CodedElement):
            return lambda rid: request(
                PUT_DATA, rid, config_id=cfg.cfg_id,
                data_bytes=element.size, metadata_fields=2,
                tag=tag_value.tag, element=element,
            )

        messages = {cfg.servers[i]: make_factory(elements[i]) for i in range(cfg.n)}
        yield self.process.scatter_and_gather(
            messages, threshold=cfg.quorum_size, label="treas-put-data",
        )
        self._record_end(token, None)
        return None

    # --------------------------------------------------------------- helpers
    def _select_decodable(self, replies) -> Optional[TagValue]:
        """Apply Algorithm 2 lines 11-17 to the gathered lists."""
        cfg = self.configuration
        k = cfg.k
        # tag -> number of lists in which the tag appears (with or without data)
        tag_counts: Dict[Tag, int] = {}
        # tag -> number of lists holding a coded element, and the elements themselves
        element_counts: Dict[Tag, int] = {}
        elements: Dict[Tag, Dict[int, CodedElement]] = {}
        for _, msg in replies:
            server_list: List[Tuple[Tag, Optional[CodedElement]]] = msg["list"]
            for tag, element in server_list:
                tag_counts[tag] = tag_counts.get(tag, 0) + 1
                if element is not None:
                    element_counts[tag] = element_counts.get(tag, 0) + 1
                    elements.setdefault(tag, {})[element.index] = element
        tags_star = [tag for tag, count in tag_counts.items() if count >= k]
        tags_dec = [tag for tag, count in element_counts.items() if count >= k]
        if not tags_star or not tags_dec:
            return None
        t_star_max = max_tag(tags_star)
        t_dec_max = max_tag(tags_dec)
        if t_star_max != t_dec_max:
            return None
        if t_dec_max == BOTTOM_TAG:
            return TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
        value = cfg.code.decode(elements[t_dec_max].values())
        return TagValue(tag=t_dec_max, value=value)


class TreasServerState(DapServerState):
    """Per-configuration server state: the bounded ``List`` variable."""

    HANDLED_KINDS = (QUERY_TAG, QUERY_LIST, PUT_DATA)

    def __init__(self, configuration: Configuration, server_pid: ProcessId) -> None:
        super().__init__(configuration, server_pid)
        index = configuration.server_index(server_pid)
        initial_element = configuration.code.encode(BOTTOM_VALUE)[index]
        #: ``List``: tag -> coded element (``None`` encodes the paper's ⊥).
        self.list: Dict[Tag, Optional[CodedElement]] = {BOTTOM_TAG: initial_element}
        self.my_index = index

    # ---------------------------------------------------------------- handle
    def handle(self, src: ProcessId, message: Message) -> Optional[Message]:
        kind = message.kind
        if kind == QUERY_TAG:
            return reply(message, kind="TREAS-TAG", tag=self.max_known_tag())
        if kind == QUERY_LIST:
            entries = [(tag, element) for tag, element in self.list.items()]
            data_bytes = sum(element.size for _, element in entries if element is not None)
            return reply(message, kind="TREAS-LIST", data_bytes=data_bytes,
                         metadata_fields=len(entries) or 1, list=entries)
        if kind == PUT_DATA:
            self.insert(message["tag"], message["element"])
            return reply(message, kind="TREAS-ACK")
        return None

    # --------------------------------------------------------------- storage
    def insert(self, tag: Tag, element: Optional[CodedElement]) -> None:
        """Add ``(tag, element)`` to ``List`` and garbage-collect old elements.

        Coded elements are kept only for the ``δ+1`` highest tags; older tags
        retain a ``⊥`` placeholder so that ``get-tag`` still sees them
        (Algorithm 3, lines 12-15).
        """
        existing = self.list.get(tag)
        if existing is None:
            self.list[tag] = element
        self._garbage_collect()

    def _garbage_collect(self) -> None:
        limit = self.configuration.delta + 1
        with_elements = [tag for tag, element in self.list.items() if element is not None]
        if len(with_elements) <= limit:
            return
        with_elements.sort()
        excess = len(with_elements) - limit
        for tag in with_elements[:excess]:
            self.list[tag] = None

    def storage_data_bytes(self) -> int:
        return sum(element.size for element in self.list.values() if element is not None)

    def max_known_tag(self) -> Tag:
        return max_tag(list(self.list.keys()))

    def coded_element_for(self, tag: Tag) -> Optional[CodedElement]:
        """The coded element stored for ``tag``, if it has not been trimmed."""
        return self.list.get(tag)

    def tags(self) -> List[Tag]:
        """All tags currently present in ``List`` (including trimmed ones)."""
        return list(self.list.keys())
