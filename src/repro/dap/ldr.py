"""The LDR DAP (Appendix A.1, Algorithm 13).

LDR (Fan & Lynch's "Layered Data Replication") separates metadata from data:
*directory* servers store, for the object, the latest tag together with the
set of replica servers known to hold the corresponding value (its
*location*); *replica* servers store full values indexed by tag.

Primitives (f is the replica crash tolerance; writes touch ``2f+1`` replicas
and await ``f+1`` acks):

* ``get-tag``  -- query the directories, await a majority, return the
  maximum tag.
* ``put-data(⟨τ, v⟩)`` -- store ``(τ, v)`` on ``2f+1`` replicas (await
  ``f+1`` acks, yielding the location set ``U``), then write the metadata
  ``(τ, U)`` to a majority of directories.
* ``get-data`` -- read ``(τ_max, U_max)`` from a majority of directories,
  write that metadata back to a majority (the helping step that makes reads
  atomic), then fetch the value for ``τ_max`` from ``f+1`` replicas in
  ``U_max`` and return the first reply.

LDR is replication-based and is included both for completeness of the DAP
framework (the paper presents it as the second transformation example) and
because its read path transfers the full value only once, a useful baseline
in the communication-cost experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.ids import ProcessId
from repro.common.tags import BOTTOM_TAG, Tag, TagValue
from repro.common.values import BOTTOM_VALUE, Value
from repro.config.configuration import Configuration
from repro.dap.interface import DapClient, DapServerState
from repro.net.message import Message, reply, request

QUERY_TAG_LOCATION = "LDR-QUERY-TAG-LOCATION"
PUT_METADATA = "LDR-PUT-METADATA"
PUT_DATA = "LDR-PUT-DATA"
GET_DATA = "LDR-GET-DATA"


class LdrDapClient(DapClient):
    """Client-side LDR primitives."""

    # ------------------------------------------------------------ primitives
    def get_tag(self):
        """Return the maximum tag known to a majority of directory servers."""
        token = self._record_start("get-tag")
        tag, _location = yield from self._query_directories()
        self._record_end(token, tag)
        return tag

    def put_data(self, tag_value: TagValue):
        """Store the value on replicas, then its location on the directories."""
        token = self._record_start("put-data", tag_value)
        cfg = self.configuration
        f = cfg.ldr_f
        replicas = list(cfg.ldr_replicas)[: 2 * f + 1]
        value = tag_value.value
        acks = yield self.process.broadcast_and_gather(
            replicas,
            lambda rid: request(PUT_DATA, rid, config_id=cfg.cfg_id,
                                data_bytes=value.size, metadata_fields=2,
                                tag=tag_value.tag, value=value),
            threshold=f + 1,
            label="ldr-put-data",
        )
        location = tuple(sorted(server for server, _ in acks))
        yield self.process.broadcast_and_gather(
            cfg.ldr_directories,
            lambda rid: request(PUT_METADATA, rid, config_id=cfg.cfg_id,
                                metadata_fields=3, tag=tag_value.tag,
                                location=location),
            threshold=self._directory_majority(),
            label="ldr-put-metadata",
        )
        self._record_end(token, None)
        return None

    def get_data(self):
        """Read the latest tag/location, help propagate it, fetch the value."""
        token = self._record_start("get-data")
        cfg = self.configuration
        tag, location = yield from self._query_directories()
        # Help: write the discovered metadata back to a directory majority.
        yield self.process.broadcast_and_gather(
            cfg.ldr_directories,
            lambda rid: request(PUT_METADATA, rid, config_id=cfg.cfg_id,
                                metadata_fields=3, tag=tag, location=location),
            threshold=self._directory_majority(),
            label="ldr-help-metadata",
        )
        if tag == BOTTOM_TAG or not location:
            result = TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
            self._record_end(token, result)
            return result
        targets = [pid for pid in location if pid in cfg.ldr_replicas][: cfg.ldr_f + 1]
        replies = yield self.process.broadcast_and_gather(
            targets,
            lambda rid: request(GET_DATA, rid, config_id=cfg.cfg_id,
                                metadata_fields=2, tag=tag),
            threshold=1,
            label="ldr-get-data",
        )
        _, msg = replies[0]
        result = TagValue(tag=msg["tag"], value=msg["value"])
        self._record_end(token, result)
        return result

    # --------------------------------------------------------------- helpers
    def _directory_majority(self) -> int:
        return len(self.configuration.ldr_directories) // 2 + 1

    def _query_directories(self):
        """Return the maximum ``(tag, location)`` pair from a directory majority."""
        cfg = self.configuration
        replies = yield self.process.broadcast_and_gather(
            cfg.ldr_directories,
            lambda rid: request(QUERY_TAG_LOCATION, rid, config_id=cfg.cfg_id),
            threshold=self._directory_majority(),
            label="ldr-query-directories",
        )
        best_tag: Tag = BOTTOM_TAG
        best_location: Tuple[ProcessId, ...] = ()
        for _, msg in replies:
            if msg["tag"] > best_tag or (msg["tag"] == best_tag and not best_location):
                best_tag = msg["tag"]
                best_location = msg["location"]
        return best_tag, best_location


class LdrDirectoryEntry:
    """The ``(tag, location)`` metadata pair stored by a directory server."""

    def __init__(self) -> None:
        self.tag: Tag = BOTTOM_TAG
        self.location: Tuple[ProcessId, ...] = ()


class LdrServerState(DapServerState):
    """Per-configuration LDR server state.

    A single physical server may act as a directory, a replica, or both
    (the configuration factory keeps them disjoint, but the state supports
    either role so tests can exercise overlapping layouts too).
    """

    HANDLED_KINDS = (QUERY_TAG_LOCATION, PUT_METADATA, PUT_DATA, GET_DATA)

    def __init__(self, configuration: Configuration, server_pid: ProcessId) -> None:
        super().__init__(configuration, server_pid)
        self.is_directory = server_pid in configuration.ldr_directories
        self.is_replica = server_pid in configuration.ldr_replicas
        self.directory = LdrDirectoryEntry()
        #: Replica store: tag -> value.  A garbage-collected variant would
        #: keep only the latest few tags; LDR as specified keeps what it saw.
        self.replica_store: Dict[Tag, Value] = {BOTTOM_TAG: BOTTOM_VALUE}

    # ---------------------------------------------------------------- handle
    def handle(self, src: ProcessId, message: Message) -> Optional[Message]:
        kind = message.kind
        if kind == QUERY_TAG_LOCATION:
            return reply(message, kind="LDR-TAG-LOCATION", metadata_fields=3,
                         tag=self.directory.tag, location=self.directory.location)
        if kind == PUT_METADATA:
            incoming: Tag = message["tag"]
            if incoming > self.directory.tag:
                self.directory.tag = incoming
                self.directory.location = tuple(message["location"])
            return reply(message, kind="LDR-META-ACK")
        if kind == PUT_DATA:
            tag: Tag = message["tag"]
            self.replica_store[tag] = message["value"]
            return reply(message, kind="LDR-DATA-ACK")
        if kind == GET_DATA:
            tag = message["tag"]
            value = self.replica_store.get(tag)
            if value is None:
                # The replica has not (yet) received this tag; reply with the
                # newest value it has so the reader can fall back safely.
                newest = max(self.replica_store)
                tag, value = newest, self.replica_store[newest]
            return reply(message, kind="LDR-DATA", data_bytes=value.size,
                         metadata_fields=2, tag=tag, value=value)
        return None

    # ------------------------------------------------------------ accounting
    def storage_data_bytes(self) -> int:
        if not self.is_replica:
            return 0
        return sum(value.size for value in self.replica_store.values())

    def max_known_tag(self) -> Tag:
        tags = [self.directory.tag] if self.is_directory else []
        if self.is_replica:
            tags.extend(self.replica_store.keys())
        if not tags:
            return BOTTOM_TAG
        return max(tags)
