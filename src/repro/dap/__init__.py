"""Data-Access Primitives (DAPs).

The paper expresses every atomic register algorithm through three primitives
defined per configuration ``c`` (Definition 1):

* ``c.get-tag()``   -- returns a tag ``τ``;
* ``c.get-data()``  -- returns a tag-value pair ``(τ, v)``;
* ``c.put-data(⟨τ, v⟩)`` -- stores the pair.

Three implementations are provided, matching the paper's Appendix A and
Section 3:

* :mod:`repro.dap.abd`   -- the multi-writer ABD algorithm (replication).
* :mod:`repro.dap.treas` -- the TREAS two-round erasure-coded algorithm.
* :mod:`repro.dap.ldr`   -- the LDR directory/replica algorithm.

Use :func:`make_dap_client` / :func:`make_dap_server_state` to obtain the
implementation matching a configuration's :class:`~repro.config.configuration.DapKind`.

DAPs are instantiated *per configuration*, and nothing above this layer
assumes one configuration per deployment: the sharded store
(:mod:`repro.store`) creates one configuration per object key
(``st<shard>/<key>``) over its shard's servers, so a single server process
hosts many independent DAP server states and shards of different kinds
(ABD, LDR, TREAS) coexist in one system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.configuration import Configuration, DapKind
from repro.dap.interface import DapClient, DapServerState
from repro.dap.abd import AbdDapClient, AbdServerState
from repro.dap.treas import TreasDapClient, TreasServerState
from repro.dap.ldr import LdrDapClient, LdrServerState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process


def make_dap_client(process: "Process", configuration: Configuration) -> DapClient:
    """Return the DAP client implementation matching the configuration's kind."""
    if configuration.dap is DapKind.ABD:
        return AbdDapClient(process, configuration)
    if configuration.dap is DapKind.TREAS:
        return TreasDapClient(process, configuration)
    if configuration.dap is DapKind.LDR:
        return LdrDapClient(process, configuration)
    raise ValueError(f"unknown DAP kind {configuration.dap}")


def make_dap_server_state(configuration: Configuration, server_pid) -> DapServerState:
    """Return fresh per-configuration server state for the configuration's DAP."""
    if configuration.dap is DapKind.ABD:
        return AbdServerState(configuration, server_pid)
    if configuration.dap is DapKind.TREAS:
        return TreasServerState(configuration, server_pid)
    if configuration.dap is DapKind.LDR:
        return LdrServerState(configuration, server_pid)
    raise ValueError(f"unknown DAP kind {configuration.dap}")


__all__ = [
    "DapClient",
    "DapServerState",
    "AbdDapClient",
    "AbdServerState",
    "TreasDapClient",
    "TreasServerState",
    "LdrDapClient",
    "LdrServerState",
    "make_dap_client",
    "make_dap_server_state",
]
