"""Abstract DAP client and server-state interfaces.

A :class:`DapClient` is bound to one client process and one configuration and
exposes the three primitives as *generator coroutines* (to be driven by the
simulator's coroutine runner).  A :class:`DapServerState` is the
per-configuration state a server keeps for the DAP, together with the message
handler producing replies.

The optional recorder hook lets the test-suite capture every DAP invocation
and response, so the consistency properties C1/C2/C3 of Definition 2 can be
checked mechanically over whole executions.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.common.ids import ProcessId
from repro.common.tags import Tag, TagValue
from repro.config.configuration import Configuration
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process
    from repro.spec.properties import DapRecorder


class DapClient:
    """Client-side DAP bound to ``(process, configuration)``."""

    def __init__(self, process: "Process", configuration: Configuration) -> None:
        self.process = process
        self.configuration = configuration

    # ------------------------------------------------------------ primitives
    def get_tag(self):
        """Coroutine returning a :class:`~repro.common.tags.Tag` (primitive D1)."""
        raise NotImplementedError

    def get_data(self):
        """Coroutine returning a :class:`~repro.common.tags.TagValue` (primitive D2)."""
        raise NotImplementedError

    def put_data(self, tag_value: TagValue):
        """Coroutine storing ``tag_value`` (primitive D3)."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    @property
    def recorder(self) -> Optional["DapRecorder"]:
        """The DAP recorder installed on the owning process, if any."""
        return getattr(self.process, "dap_recorder", None)

    def _record_start(self, primitive: str, argument=None):
        recorder = self.recorder
        if recorder is None:
            return None
        return recorder.start(self.configuration.cfg_id, self.process.pid, primitive, argument)

    def _record_end(self, token, result=None) -> None:
        if token is not None:
            token.finish(result)


class DapServerState:
    """Per-configuration DAP state held by one server."""

    def __init__(self, configuration: Configuration, server_pid: ProcessId) -> None:
        self.configuration = configuration
        self.server_pid = server_pid
        #: The owning server process, set by :meth:`bind`.  Needed by server
        #: states that send unsolicited messages (e.g. the direct state
        #: transfer of Section 5); plain request/reply states never use it.
        self.server: Optional["Process"] = None

    def bind(self, server: "Process") -> None:
        """Attach the owning server process (called at state creation time)."""
        self.server = server

    #: Message kinds this state component consumes.
    HANDLED_KINDS: tuple = ()

    def handles(self, kind: str) -> bool:
        """Whether ``kind`` belongs to this DAP's protocol."""
        return kind in self.HANDLED_KINDS

    def handle(self, src: ProcessId, message: Message) -> Optional[Message]:
        """Process a request and return the reply to send (or ``None``)."""
        raise NotImplementedError

    # ------------------------------------------------------------ accounting
    def storage_data_bytes(self) -> int:
        """Bytes of object data (value or coded elements) currently stored.

        Used by the storage-cost experiments; metadata (tags, ids) is not
        counted, mirroring the paper's storage-cost definition.
        """
        raise NotImplementedError

    def max_known_tag(self) -> Tag:
        """The highest tag this server has stored (diagnostics / config tag)."""
        raise NotImplementedError
