"""Online (streaming) verification of operation histories.

This module is the engine behind :meth:`History.enable_streaming
<repro.spec.history.History.enable_streaming>`: a :class:`HistoryStream`
watches every invocation/response/failure a streaming history records,
folds completed operations out of the history as their concurrency windows
close, and keeps memory O(open window) instead of O(run).  Three things
happen to each folded record:

* its signature entry is fed into a running SHA-256 accumulator that is
  **byte-identical** to ``sha256(repr(history.signature()))`` of the batch
  path (the golden determinism hashes must not move);
* it is checked by an :class:`OnlineRegisterChecker` -- the incremental
  variant of the *fast* value-partition linearizability checker in
  :mod:`repro.spec.linearizability`, per object key for keyed histories;
* its tag is checked by an :class:`OnlineTagChecker`, the incremental
  variant of :func:`~repro.spec.linearizability.check_tag_monotonicity`.

The online register checker mirrors the fast checker's necessary
conditions exactly; histories the fast checker would hand to the Wing-Gong
reference search (duplicate value labels, no greedy witness) raise
:class:`~repro.common.errors.StreamingAmbiguityError` instead, because the
reference search needs the full record set streaming mode has discarded.
Such histories must be re-run in batch mode.

Fold rules (why this is sound)
------------------------------
Invocations and responses arrive in non-decreasing simulated time (the
stream enforces this), so the *frontier* ``F`` -- the invocation time of
the earliest still-open operation -- only moves forward.  A value cluster
(one write plus the reads returning its label) may be folded once its
write completed and both its earliest response and latest invocation lie
before ``F``: no future operation can be invoked before ``F``, so the
cluster's precedence relations against all future operations are fully
determined by two scalars kept after the fold.  Folded clusters that are
still legally readable (their earliest response does not precede another
folded cluster's latest invocation) stay in a small *readable* set;
everything else collapses into two scalars (``retired_max_inv`` and a
per-live-cluster ``fold_floor``) that preserve exactly the pair-violation
checks of the batch checker.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Dict, List, Optional

from repro.common.errors import (StreamingAmbiguityError, StreamingHistoryError,
                                 StreamingWindowError)
from repro.spec.history import (History, OperationRecord, OperationType,
                                signature_entry)
from repro.spec.linearizability import INITIAL_LABEL
from repro.spec.signature import SignatureAccumulator

_INFINITY = float("inf")

#: Default bound on the number of unfolded records; exceeding it raises
#: :class:`~repro.common.errors.StreamingWindowError` (an operation that
#: never responds pins the fold frontier, so the window would grow without
#: bound -- the exact O(run) memory streaming mode exists to rule out).
DEFAULT_WINDOW_LIMIT = 100_000

#: Cap on mutually-concurrent folded-but-still-readable values per key.
#: Real workloads keep this at 1-2; hitting the cap means the history is
#: too ambiguous to decide online.
READABLE_CAP = 64

#: Default reservoir size for streaming latency percentiles.
DEFAULT_LATENCY_RESERVOIR = 4096


class StreamingStats:
    """Exact count/mean/max plus a bounded reservoir sample for percentiles.

    A 10^6-operation run cannot afford the batch path's list of one boxed
    float per operation, so percentiles come from a fixed-size uniform
    reservoir (Vitter's algorithm R) driven by a dedicated seeded RNG --
    deterministic for a given arrival sequence, independent of everything
    else in the run.
    """

    __slots__ = ("count", "total", "max", "capacity", "_sample", "_rng")

    def __init__(self, capacity: int = DEFAULT_LATENCY_RESERVOIR,
                 seed: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.capacity = capacity
        self._sample: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._sample[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def sample(self) -> List[float]:
        """A uniform sample of the observed values (at most ``capacity``)."""
        return list(self._sample)


class _LiveCluster:
    """One unfolded written value: scalar bounds plus its reads' intervals."""

    __slots__ = ("label", "write_inv", "write_resp", "write_op", "tag_key",
                 "min_res", "max_inv", "fold_floor", "reads")

    def __init__(self, label: str, write_inv: float, write_op: int) -> None:
        self.label = label
        self.write_inv = write_inv
        self.write_resp: Optional[float] = None
        self.write_op = write_op
        #: ``tag.sort_key`` of the write, captured when it completes (None
        #: until then, and for protocols whose writes carry no tag).
        self.tag_key = None
        #: Earliest response of any cluster operation (None until one responds).
        self.min_res: Optional[float] = None
        #: Latest invocation of any cluster operation.
        self.max_inv = write_inv
        #: Growing past this point forms a pair cycle with a retired value.
        self.fold_floor = _INFINITY
        #: ``(invoked_at, op_id, responded_at)`` of the label's reads, kept
        #: only until the cluster's segment is swept (they feed the witness
        #: sweeps).
        self.reads: List[tuple] = []


class _WitnessBuilder:
    """One incremental candidate witness (a greedy linear sweep).

    Mirrors one entry of the batch checker's ``candidates`` list: clusters
    are appended as contiguous segments in a fixed global order, and the
    sweep carries the max invocation seen so far -- a segment whose
    operation responds *before* that point cannot extend the witness, which
    kills this candidate (but not the others).  ``pending`` buffers closed
    clusters until they are provably next in this builder's order.
    """

    __slots__ = ("max_inv", "failed", "pending")

    def __init__(self) -> None:
        self.max_inv = -_INFINITY
        self.failed = False
        self.pending: Dict[str, _LiveCluster] = {}

    def note_inv(self, invoked_at: float) -> None:
        if invoked_at > self.max_inv:
            self.max_inv = invoked_at

    def sweep(self, cluster: _LiveCluster) -> bool:
        """Append ``cluster``'s segment; False if the candidate dies here."""
        ops = [(cluster.write_inv, cluster.write_resp)]
        for invoked, _op_id, responded in sorted(cluster.reads):
            ops.append((invoked, responded))
        for invoked, responded in ops:
            if responded is not None and responded < self.max_inv:
                self.failed = True
                self.pending.clear()
                return False
            if invoked > self.max_inv:
                self.max_inv = invoked
        return True


class OnlineRegisterChecker:
    """Streaming register linearizability for one object key.

    Maintains exactly the fast checker's necessary conditions over a
    bounded state: live clusters (unfolded values), a small readable set of
    folded values, two scalars for everything retired, the initial-value
    read bounds, and the running witness sweep.  ``failure`` holds the
    first proven violation; ``ambiguous`` marks histories only the batch
    reference search could decide.
    """

    __slots__ = ("key", "initial_label", "clusters", "readable",
                 "retired_max_inv", "first_cluster_res", "first_cluster_label",
                 "latest_initial_inv", "by_res", "by_tag", "_last_unswept",
                 "failure", "ambiguous")

    def __init__(self, key: Optional[str],
                 initial_label: str = INITIAL_LABEL) -> None:
        self.key = key
        self.initial_label = initial_label
        self.clusters: Dict[str, _LiveCluster] = {}
        #: label -> [min_res, max_inv] of folded, still-readable values.
        self.readable: Dict[str, List[float]] = {}
        self.retired_max_inv = -_INFINITY
        self.first_cluster_res = _INFINITY
        self.first_cluster_label: Optional[str] = None
        self.latest_initial_inv = -_INFINITY
        #: The two candidate witnesses of the batch checker, incrementally:
        #: clusters by earliest response, and clusters by protocol tag.
        self.by_res = _WitnessBuilder()
        self.by_tag = _WitnessBuilder()
        self._last_unswept: Optional[str] = None
        self.failure: Optional[str] = None
        self.ambiguous: Optional[str] = None

    # ----------------------------------------------------------- terminal
    def _fail(self, reason: str) -> None:
        if self.failure is None and self.ambiguous is None:
            self.failure = reason
        self.clusters.clear()
        self.readable.clear()
        self.by_res.pending.clear()
        self.by_tag.pending.clear()

    def _ambiguate(self, reason: str) -> None:
        if self.failure is None and self.ambiguous is None:
            self.ambiguous = reason
        self.clusters.clear()
        self.readable.clear()
        self.by_res.pending.clear()
        self.by_tag.pending.clear()

    @property
    def decided(self) -> bool:
        return self.failure is not None or self.ambiguous is not None

    def _inversion(self, label: str) -> None:
        self._fail("two written values each contain an operation that "
                   "really precedes an operation of the other (stale read "
                   f"or new/old inversion around {label!r})")

    # ------------------------------------------------------------- events
    def invoke(self, record: OperationRecord) -> None:
        if self.decided or record.op_type is not OperationType.WRITE:
            return
        label = record.value_label
        if label is None or label == self.initial_label \
                or label in self.clusters or label in self.readable:
            self._ambiguate(
                f"write {record} reuses value label {label!r}; duplicate or "
                "initial-value labels need the batch reference checker")
            return
        self.clusters[label] = _LiveCluster(label, record.invoked_at,
                                            record.op_id)

    def complete(self, record: OperationRecord) -> None:
        if self.decided:
            return
        if record.op_type is OperationType.WRITE:
            self._complete_write(record)
        else:
            self._complete_read(record)

    def fail(self, record: OperationRecord) -> None:
        """A write whose client crashed takes no effect; its reads are stale."""
        if self.decided or record.op_type is not OperationType.WRITE:
            return
        cluster = self.clusters.pop(record.value_label, None)
        if cluster is not None and cluster.reads:
            self._fail(f"read(s) returned label {record.value_label!r} of a "
                       "write that failed (no write in the effective history "
                       "produced it)")

    # ------------------------------------------------------ event helpers
    def _note_first_response(self, cluster: _LiveCluster, at: float) -> None:
        cluster.min_res = at
        if at < self.first_cluster_res:
            self.first_cluster_res = at
            self.first_cluster_label = cluster.label
        if at < self.latest_initial_inv:
            self._fail("a read of the initial value was invoked after an "
                       f"operation on {cluster.label!r} completed")

    def _complete_write(self, record: OperationRecord) -> None:
        cluster = self.clusters.get(record.value_label)
        if cluster is None:
            return
        cluster.write_resp = record.responded_at
        if record.tag is not None:
            cluster.tag_key = record.tag.sort_key
        else:
            # Batch builds the tag-order candidate only when *every*
            # effective write carries a tag; one untagged write kills it.
            self._kill_tag_candidate()
        if cluster.min_res is None:
            self._note_first_response(cluster, record.responded_at)
        if not self.decided:
            self._pair_check(cluster)

    def _complete_read(self, record: OperationRecord) -> None:
        label = record.value_label
        if label == self.initial_label:
            if record.invoked_at > self.latest_initial_inv:
                self.latest_initial_inv = record.invoked_at
            if self.first_cluster_res < record.invoked_at:
                self._fail("a read of the initial value was invoked after an "
                           f"operation on {self.first_cluster_label!r} "
                           "completed")
                return
            self.by_res.note_inv(record.invoked_at)
            self.by_tag.note_inv(record.invoked_at)
            return
        cluster = self.clusters.get(label)
        if cluster is not None:
            cluster.reads.append((record.invoked_at, record.op_id,
                                  record.responded_at))
            if cluster.min_res is None:
                self._note_first_response(cluster, record.responded_at)
            if record.invoked_at > cluster.max_inv:
                cluster.max_inv = record.invoked_at
            if not self.decided:
                self._pair_check(cluster)
            return
        entry = self.readable.get(label)
        if entry is not None:
            # Reading a folded value keeps it last-placeable only if no
            # other value's segment must both follow it and precede this
            # read (i.e. has a response before the read's invocation).
            for live in self.clusters.values():
                if live.min_res is not None \
                        and live.min_res < record.invoked_at \
                        and entry[0] < live.max_inv:
                    self._inversion(label)
                    return
            if record.invoked_at > entry[1]:
                entry[1] = record.invoked_at
            # A builder that has not swept this value's segment yet takes
            # the read *inside* the segment (the batch witness shape); one
            # that already has only needs the invocation bound.
            read = (record.invoked_at, record.op_id, record.responded_at)
            appended = False
            for builder in (self.by_res, self.by_tag):
                pending = builder.pending.get(label)
                if pending is not None:
                    if not appended:
                        pending.reads.append(read)
                        appended = True
                elif not builder.failed:
                    builder.note_inv(record.invoked_at)
            self._prune_readable()
            return
        self._fail(f"read {record} returned label {label!r} which no write "
                   "in the history produced (or a stale label whose "
                   "concurrency window was already folded)")

    def _pair_check(self, cluster: _LiveCluster) -> None:
        """Cluster-level real-time cycle detection after ``cluster`` grew."""
        if cluster.min_res is None:
            return
        if cluster.max_inv > cluster.fold_floor:
            self._inversion(cluster.label)
            return
        for other in self.clusters.values():
            if other is cluster or other.min_res is None:
                continue
            if other.min_res < cluster.max_inv \
                    and cluster.min_res < other.max_inv:
                self._inversion(cluster.label)
                return
        for label, (min_res, max_inv) in self.readable.items():
            if min_res < cluster.max_inv and cluster.min_res < max_inv:
                self._inversion(label)
                return

    # ------------------------------------------------------------ folding
    def advance(self, frontier: float) -> None:
        """Fold clusters whose concurrency window closed before ``frontier``.

        A closed cluster immediately joins the ``readable`` set (its pair
        checks collapse to the two kept scalars) and is queued on both
        witness builders; each builder sweeps its queue as soon as the head
        is provably next in *that builder's* global order -- which may mean
        waiting on a still-live cluster, bounded by the open window.
        """
        if self.decided:
            return
        closed = [cluster for cluster in self.clusters.values()
                  if cluster.write_resp is not None
                  and cluster.min_res < frontier
                  and cluster.max_inv < frontier]
        for cluster in closed:
            self._close(cluster)
            if self.decided:
                return
        self._drain(final=False)

    def finalize(self) -> None:
        """Fold what remains (including pending writes that have readers);
        pending writes nobody read are dropped, as the batch checker does."""
        for cluster in list(self.clusters.values()):
            if self.decided:
                return
            if cluster.min_res is None:
                del self.clusters[cluster.label]
                continue
            self._close(cluster)
        self._drain(final=True)

    def _close(self, cluster: _LiveCluster) -> None:
        del self.clusters[cluster.label]
        if cluster.tag_key is None:
            self._kill_tag_candidate()
        for builder in (self.by_res, self.by_tag):
            if not builder.failed:
                builder.pending[cluster.label] = cluster
        self.readable[cluster.label] = [cluster.min_res, cluster.max_inv]
        if len(self.readable) > READABLE_CAP:
            self._ambiguate(f"more than {READABLE_CAP} mutually-concurrent "
                            "folded values remain readable; deciding this "
                            "history needs the batch reference checker")
            return
        self._prune_readable()

    # ----------------------------------------------------- witness sweeps
    def _drain(self, final: bool) -> None:
        """Let each candidate witness absorb every queued cluster that is
        provably next in its order (all of them once the run is final)."""
        self._drain_res(final)
        self._drain_tag(final)

    def _drain_res(self, final: bool) -> None:
        """Batch candidate 1: clusters by ``(min_res, write_inv, write_op)``.

        A queued cluster is provably next once no live cluster sorts below
        it -- live clusters without a response yet cannot, because their
        eventual ``min_res`` is a future response time.
        """
        builder = self.by_res
        while builder.pending and not self.decided:
            best = min(builder.pending.values(),
                       key=lambda c: (c.min_res, c.write_inv, c.write_op))
            if not final:
                key = (best.min_res, best.write_inv, best.write_op)
                if any(live.min_res is not None
                       and (live.min_res, live.write_inv, live.write_op) < key
                       for live in self.clusters.values()):
                    return
            del builder.pending[best.label]
            if not builder.sweep(best):
                self._candidate_died(best.label)
                return

    def _drain_tag(self, final: bool) -> None:
        """Batch candidate 2: clusters by ``(tag sort key, write_op)``.

        A queued cluster ``c`` is provably next once every live cluster
        either carries a larger tag or was invoked after ``c``'s write
        responded (tag monotonicity then forces its tag above ``c``'s; if
        monotonicity is broken the tag checker reports that separately and
        this candidate merely risks dying, never passing wrongly -- a sweep
        that succeeds is a valid witness no matter how its order was
        chosen).
        """
        builder = self.by_tag
        while builder.pending and not self.decided:
            best = min(builder.pending.values(),
                       key=lambda c: (c.tag_key, c.write_op))
            if not final:
                key = (best.tag_key, best.write_op)
                for live in self.clusters.values():
                    if live.tag_key is not None:
                        if (live.tag_key, live.write_op) < key:
                            return
                    elif live.write_inv <= best.write_resp:
                        return
            del builder.pending[best.label]
            if not builder.sweep(best):
                self._candidate_died(best.label)
                return

    def _kill_tag_candidate(self) -> None:
        """An effective write without a tag: the tag-order candidate is off
        the table, exactly as in the batch checker."""
        if not self.by_tag.failed:
            self.by_tag.failed = True
            self.by_tag.pending.clear()
            if self.by_res.failed:
                self._no_witness()

    def _candidate_died(self, label: str) -> None:
        self._last_unswept = label
        if self.by_res.failed and self.by_tag.failed:
            self._no_witness()

    def _no_witness(self) -> None:
        self._ambiguate(f"no greedy witness order covers value "
                        f"{self._last_unswept!r}; deciding this history "
                        "needs the batch reference checker")

    def _retire(self, label: str) -> None:
        min_res, max_inv = self.readable.pop(label)
        if max_inv > self.retired_max_inv:
            self.retired_max_inv = max_inv
        for live in self.clusters.values():
            if live.min_res is None or live.min_res >= max_inv:
                continue
            if min_res < live.max_inv:
                self._inversion(label)
                return
            if min_res < live.fold_floor:
                live.fold_floor = min_res

    def _prune_readable(self) -> None:
        """Drop readable values that can no longer be linearized last."""
        changed = True
        while changed and not self.decided:
            changed = False
            for label, (min_res, _max_inv) in list(self.readable.items()):
                others = self.retired_max_inv
                for other_label, other in self.readable.items():
                    if other_label != label and other[1] > others:
                        others = other[1]
                if min_res < others:
                    self._retire(label)
                    changed = True
                    break


class OnlineTagChecker:
    """Streaming tag monotonicity (Lemma 20) for one object key.

    Keeps the monotone envelope of prefix-maximum tags over operations in
    response order; because responses arrive in time order, each completed
    operation only needs one binary search against the envelope, and the
    envelope is pruned below the fold frontier.
    """

    __slots__ = ("_resp_times", "_tags", "_descs", "failure")

    def __init__(self) -> None:
        self._resp_times: List[float] = []
        self._tags: list = []
        self._descs: List[str] = []
        self.failure: Optional[str] = None

    def observe(self, record: OperationRecord) -> None:
        if self.failure is not None or record.tag is None:
            return
        tag = record.tag
        index = bisect_left(self._resp_times, record.invoked_at)
        if index > 0:
            best_tag = self._tags[index - 1]
            if tag < best_tag:
                self.failure = (f"tag of {record} is smaller than the tag of "
                                f"the preceding {self._descs[index - 1]}")
            elif record.op_type is OperationType.WRITE and not tag > best_tag:
                self.failure = (f"write {record} does not have a strictly "
                                "larger tag than the preceding "
                                f"{self._descs[index - 1]}")
            if self.failure is not None:
                self._resp_times = []
                self._tags = []
                self._descs = []
                return
        if not self._tags or tag > self._tags[-1]:
            self._resp_times.append(record.responded_at)
            self._tags.append(tag)
            self._descs.append(str(record))

    def prune(self, frontier: float) -> None:
        """Forget envelope points no future operation can be compared to."""
        if self.failure is not None or not self._resp_times:
            return
        index = bisect_left(self._resp_times, frontier)
        if index > 1:
            del self._resp_times[:index - 1]
            del self._tags[:index - 1]
            del self._descs[:index - 1]


class HistoryStream:
    """Coordinates folding, checking and signature accumulation.

    Created by :meth:`History.enable_streaming`; the history calls
    :meth:`on_invoke` / :meth:`on_respond` / :meth:`on_fail` for every
    record event, in non-decreasing event time (enforced here).
    """

    def __init__(self, history: History,
                 window_limit: int = DEFAULT_WINDOW_LIMIT,
                 initial_label: str = INITIAL_LABEL,
                 latency_reservoir: int = DEFAULT_LATENCY_RESERVOIR) -> None:
        if window_limit < 1:
            raise StreamingHistoryError("window_limit must be >= 1")
        self._history = history
        self.window_limit = window_limit
        self.initial_label = initial_label
        self._accumulator = SignatureAccumulator()
        self._registers: Dict[Optional[str], OnlineRegisterChecker] = {}
        self._tags: Dict[Optional[str], OnlineTagChecker] = {}
        self._keyed = False
        self._finalized = False
        self._last_event_at = -_INFINITY
        self.total_records = 0
        self.completed_operations = 0
        self.failed_operations = 0
        self.folded_records = 0
        self.open_window_peak = 0
        self.read_latencies = StreamingStats(latency_reservoir, seed=0)
        self.write_latencies = StreamingStats(latency_reservoir, seed=1)
        #: Observability registry; None (the default) keeps the per-record
        #: path at a single attribute test (same idiom as the network's
        #: quiet path).  When installed, every invocation samples the open
        #: concurrency window into the ``open_window`` gauge.
        self.metrics = None

    # ---------------------------------------------------------- properties
    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def open_window(self) -> int:
        """Number of records currently held (invoked or fold-pinned)."""
        return len(self._history._records)

    def is_keyed(self) -> bool:
        """Mirror of :meth:`History.is_keyed` over the streamed records."""
        return self._keyed

    # -------------------------------------------------------------- events
    def _admit(self, what: str, at: float) -> None:
        if self._finalized:
            raise StreamingHistoryError(
                f"cannot {what}: the stream is finalized")
        if at < self._last_event_at:
            raise StreamingHistoryError(
                f"cannot {what} at time {at}: streaming histories must be "
                f"recorded in event-time order (last event at "
                f"{self._last_event_at})")
        self._last_event_at = at

    def _register_for(self, key: Optional[str]) -> OnlineRegisterChecker:
        register = self._registers.get(key)
        if register is None:
            register = OnlineRegisterChecker(key, self.initial_label)
            self._registers[key] = register
            self._tags[key] = OnlineTagChecker()
        return register

    def on_invoke(self, record: OperationRecord) -> None:
        self._admit("record an invocation", record.invoked_at)
        self.total_records += 1
        open_window = len(self._history._records)
        if open_window > self.open_window_peak:
            self.open_window_peak = open_window
        if self.metrics is not None:
            self.metrics.set_gauge("open_window", open_window)
        if open_window > self.window_limit:
            raise StreamingWindowError(
                f"open concurrency window ({open_window} unfolded records) "
                f"exceeded window_limit={self.window_limit}; an operation "
                "that never responds is pinning the fold frontier")
        register = self._register_for(record.key)
        if record.op_type is not OperationType.RECONFIG:
            if record.key is not None:
                self._keyed = True
            register.invoke(record)

    def on_respond(self, record: OperationRecord) -> None:
        self._admit("record a response", record.responded_at)
        self.completed_operations += 1
        latency = record.responded_at - record.invoked_at
        if record.op_type is OperationType.READ:
            self.read_latencies.add(latency)
        elif record.op_type is OperationType.WRITE:
            self.write_latencies.add(latency)
        if record.op_type is not OperationType.RECONFIG:
            self._registers[record.key].complete(record)
            self._tags[record.key].observe(record)
        self._advance(record)

    def on_fail(self, record: OperationRecord) -> None:
        self._admit("record a failure", record.responded_at)
        self.failed_operations += 1
        if record.op_type is not OperationType.RECONFIG:
            self._registers[record.key].fail(record)
        self._advance(record)

    def _advance(self, record: OperationRecord) -> None:
        """Fold the closed prefix, then let the touched key catch up."""
        records = self._history._records
        fold = self._accumulator.fold
        while records:
            first_id = next(iter(records))
            first = records[first_id]
            if first.responded_at is None:
                frontier = first.invoked_at
                break
            fold(signature_entry(first))
            del records[first_id]
            self.folded_records += 1
        else:
            frontier = _INFINITY
        if record.op_type is not OperationType.RECONFIG:
            self._registers[record.key].advance(frontier)
            self._tags[record.key].prune(frontier)

    # ------------------------------------------------------------ finishing
    def finalize(self) -> None:
        """Fold everything left (pending records included) and settle verdicts.

        Idempotent; called automatically by the signature accessors and by
        :meth:`ChaosRunResult.check <repro.workloads.scenarios.ChaosRunResult.check>`
        in streaming mode.  After finalize the history accepts no records.
        """
        if self._finalized:
            return
        self._finalized = True
        records = self._history._records
        fold = self._accumulator.fold
        for record in records.values():
            fold(signature_entry(record))
            self.folded_records += 1
        records.clear()
        for register in self._registers.values():
            register.finalize()

    def signature_hash(self) -> str:
        """Digest equal to batch ``sha256(repr(history.signature()))``."""
        self._require_finalized("signature_hash")
        return self._accumulator.history_digest()

    def result_signature_hash(self, chaos_log) -> str:
        """Digest equal to batch ``sha256(repr((signature(), tuple(log))))``."""
        self._require_finalized("result_signature_hash")
        return self._accumulator.result_digest(chaos_log)

    def _require_finalized(self, what: str) -> None:
        if not self._finalized:
            raise StreamingHistoryError(
                f"{what} needs a finalized stream; call finalize() once the "
                "run is over")

    # ------------------------------------------------------------- verdicts
    def method(self) -> str:
        """Checker-method label, mirroring the batch ``fast`` labels."""
        return "per-key(streaming)" if self._keyed else "streaming"

    def linearizability_failure(self) -> Optional[str]:
        """First proven atomicity violation, in key first-invocation order.

        Raises :class:`~repro.common.errors.StreamingAmbiguityError` when
        some key could only be decided by the batch reference checker and
        no other key has a proven violation.
        """
        ambiguous: Optional[str] = None
        for key, register in self._registers.items():
            if register.failure is not None:
                if self._keyed:
                    return f"key {key!r}: {register.failure}"
                return register.failure
            if register.ambiguous is not None and ambiguous is None:
                prefix = f"key {key!r}: " if self._keyed else ""
                ambiguous = prefix + register.ambiguous
        if ambiguous is not None:
            raise StreamingAmbiguityError(ambiguous)
        return None

    def tag_failure(self) -> Optional[str]:
        """First tag-monotonicity violation, in key first-invocation order."""
        for key, checker in self._tags.items():
            if checker.failure is not None:
                if self._keyed:
                    return f"key {key!r}: {checker.failure}"
                return checker.failure
        return None
