"""DAP invocation recording and the C1/C2/C3 consistency properties.

Definition 2 of the paper states two properties a DAP implementation must
satisfy for the generic templates to be atomic (plus a third for template
A2):

C1  If ``put-data(⟨τ_φ, v_φ⟩)`` completes before a ``get-tag()`` /
    ``get-data()`` starts, the latter returns a tag ``≥ τ_φ``.
C2  Every ``get-data()`` returns a pair that some ``put-data`` put (and that
    ``put-data`` was invoked before the ``get-data`` completed), or the
    initial pair ``(t0, v0)``.
C3  (for A2) ``get-data()`` results are monotone across non-overlapping calls.

:class:`DapRecorder` captures every primitive invocation per configuration;
:func:`check_dap_properties` verifies the three properties over the record.
The properties are per configuration, matching the definition ("the three
primitives defined over a configuration c").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, Tag, TagValue


@dataclass
class DapCall:
    """One recorded DAP primitive invocation."""

    call_id: int
    config_id: ConfigId
    process: ProcessId
    primitive: str  # "get-tag" | "get-data" | "put-data"
    invoked_at: float
    argument: Optional[TagValue] = None
    responded_at: Optional[float] = None
    result: Optional[object] = None

    @property
    def complete(self) -> bool:
        """Whether the call has a recorded response."""
        return self.responded_at is not None

    def precedes(self, other: "DapCall") -> bool:
        """Real-time precedence between two calls."""
        return self.responded_at is not None and self.responded_at < other.invoked_at

    # ------------------------------------------------------- result accessors
    def result_tag(self) -> Optional[Tag]:
        """The tag carried by the call's result (or argument for put-data)."""
        if self.primitive == "put-data":
            return self.argument.tag if self.argument is not None else None
        if isinstance(self.result, Tag):
            return self.result
        if isinstance(self.result, TagValue):
            return self.result.tag
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.primitive}@{self.config_id} by {self.process} "
                f"[{self.invoked_at:.2f}, "
                f"{'...' if self.responded_at is None else f'{self.responded_at:.2f}'}]")


class _CallToken:
    """Returned by :meth:`DapRecorder.start`; finishes the call on completion."""

    def __init__(self, recorder: "DapRecorder", call: DapCall) -> None:
        self._recorder = recorder
        self.call = call

    def finish(self, result: object) -> None:
        """Record the response time and result of the call."""
        self.call.responded_at = self._recorder._now()
        self.call.result = result


class DapRecorder:
    """Records DAP calls; install as ``process.dap_recorder``."""

    def __init__(self, sim) -> None:
        self._sim = sim
        self._counter = itertools.count()
        self.calls: List[DapCall] = []

    def _now(self) -> float:
        return self._sim.now

    def start(self, config_id: ConfigId, process: ProcessId, primitive: str,
              argument: Optional[TagValue] = None) -> _CallToken:
        """Record the invocation of a primitive and return its completion token."""
        call = DapCall(
            call_id=next(self._counter),
            config_id=config_id,
            process=process,
            primitive=primitive,
            invoked_at=self._now(),
            argument=argument,
        )
        self.calls.append(call)
        return _CallToken(self, call)

    # --------------------------------------------------------------- queries
    def calls_for(self, config_id: Optional[ConfigId] = None,
                  primitive: Optional[str] = None,
                  complete_only: bool = True) -> List[DapCall]:
        """Filtered view of the recorded calls."""
        calls = self.calls
        if config_id is not None:
            calls = [c for c in calls if c.config_id == config_id]
        if primitive is not None:
            calls = [c for c in calls if c.primitive == primitive]
        if complete_only:
            calls = [c for c in calls if c.complete]
        return list(calls)

    def configurations(self) -> List[ConfigId]:
        """All configuration ids that appear in the record."""
        seen: Dict[ConfigId, None] = {}
        for call in self.calls:
            seen.setdefault(call.config_id, None)
        return list(seen)


@dataclass
class DapPropertyViolation:
    """A violation of one of the consistency properties."""

    property_name: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.property_name}: {self.description}"


def check_dap_properties(recorder: DapRecorder, check_c3: bool = False
                         ) -> List[DapPropertyViolation]:
    """Check C1, C2 (and optionally C3) for every configuration in the record.

    Returns the list of violations found (empty when all properties hold).
    """
    violations: List[DapPropertyViolation] = []
    for config_id in recorder.configurations():
        puts = recorder.calls_for(config_id, "put-data", complete_only=False)
        complete_puts = [c for c in puts if c.complete]
        gets = recorder.calls_for(config_id, "get-data")
        tags = recorder.calls_for(config_id, "get-tag")

        # ----------------------------------------------------------------- C1
        for put in complete_puts:
            put_tag = put.result_tag()
            for probe in gets + tags:
                if not put.precedes(probe):
                    continue
                probe_tag = probe.result_tag()
                if probe_tag is None or put_tag is None:
                    continue
                if not probe_tag >= put_tag:
                    violations.append(DapPropertyViolation(
                        "C1",
                        f"{probe} returned tag {probe_tag} < {put_tag} put by "
                        f"preceding {put}",
                    ))

        # ----------------------------------------------------------------- C2
        for get in gets:
            result = get.result
            if not isinstance(result, TagValue):
                continue
            if result.tag == BOTTOM_TAG:
                continue  # the initial pair is always allowed
            matching = [
                put for put in puts
                if put.argument is not None and put.argument.tag == result.tag
                and not (get.responded_at is not None
                         and put.invoked_at > get.responded_at)
            ]
            if not matching:
                violations.append(DapPropertyViolation(
                    "C2",
                    f"{get} returned tag {result.tag} but no put-data with that tag "
                    "was invoked before the get-data completed",
                ))

        # ----------------------------------------------------------------- C3
        if check_c3:
            ordered = sorted(gets, key=lambda c: c.invoked_at)
            for first, second in itertools.combinations(ordered, 2):
                if not first.precedes(second):
                    continue
                tag_first = first.result_tag()
                tag_second = second.result_tag()
                if tag_first is None or tag_second is None:
                    continue
                if tag_second < tag_first:
                    violations.append(DapPropertyViolation(
                        "C3",
                        f"{second} returned tag {tag_second} < {tag_first} returned "
                        f"by preceding {first}",
                    ))
    return violations
