"""Specification checking: histories, linearizability, DAP properties.

The paper proves atomicity (Lynch's A1-A3 conditions, equivalent to
linearizability of a read/write register) by hand; this package provides the
machinery the test-suite uses to check it mechanically on recorded
executions:

* :mod:`repro.spec.history` -- records the invocation/response intervals and
  results of high-level read/write operations.
* :mod:`repro.spec.linearizability` -- a Wing-Gong style checker specialised
  for multi-writer multi-reader registers, plus the per-key variant used for
  the sharded store's multi-object histories.
* :mod:`repro.spec.properties` -- records DAP invocations and checks the
  consistency properties C1, C2 and C3 of Definition 2.
"""

from repro.spec.history import History, OperationRecord, OperationType
from repro.spec.linearizability import (
    LinearizabilityResult,
    PerKeyLinearizabilityResult,
    check_linearizability,
    check_linearizability_per_key,
    check_tag_monotonicity,
    check_tag_monotonicity_per_key,
)
from repro.spec.properties import DapRecorder, check_dap_properties, DapPropertyViolation
from repro.spec.signature import SignatureAccumulator
from repro.spec.streaming import (
    HistoryStream,
    OnlineRegisterChecker,
    OnlineTagChecker,
    StreamingStats,
)

__all__ = [
    "History",
    "OperationRecord",
    "OperationType",
    "HistoryStream",
    "OnlineRegisterChecker",
    "OnlineTagChecker",
    "SignatureAccumulator",
    "StreamingStats",
    "check_linearizability",
    "check_linearizability_per_key",
    "check_tag_monotonicity",
    "check_tag_monotonicity_per_key",
    "LinearizabilityResult",
    "PerKeyLinearizabilityResult",
    "DapRecorder",
    "check_dap_properties",
    "DapPropertyViolation",
]
