"""Incremental signature hashing for streaming histories.

The batch fingerprint of a run is ``sha256(repr(signature()))`` where the
history signature is a tuple of per-record entry tuples and the run-level
signature is ``(history_signature, tuple(chaos_log))``.  Streaming mode
discards records as they fold, so this module reproduces those digests
incrementally, byte-for-byte, by feeding each entry's ``repr`` through two
SHA-256 states:

* ``history`` digest -- seeded with ``b"("`` (the history tuple opens);
* ``result`` digest -- seeded with ``b"(("`` (the outer 2-tuple opens,
  then the history tuple opens).

Python's tuple ``repr`` separates elements with ``", "`` and closes with
``")"`` -- except the empty tuple (``()``) and the 1-tuple (trailing
comma: ``(e,)``), which :meth:`SignatureAccumulator._closing` handles.
The byte-identity of both digests against the materialized ``repr`` is
pinned by the differential tests and the golden scenario hashes.
"""

from __future__ import annotations

import hashlib


class SignatureAccumulator:
    """Folds signature entries into running history/result digests."""

    __slots__ = ("_history", "_result", "count")

    def __init__(self) -> None:
        self._history = hashlib.sha256(b"(")
        self._result = hashlib.sha256(b"((")
        self.count = 0

    def fold(self, entry: tuple) -> None:
        """Append one record's signature entry to both digests."""
        chunk = repr(entry)
        data = (", " + chunk).encode() if self.count else chunk.encode()
        self._history.update(data)
        self._result.update(data)
        self.count += 1

    def _closing(self) -> bytes:
        if self.count == 0:
            return b")"
        if self.count == 1:
            return b",)"
        return b")"

    def history_digest(self) -> str:
        """Hex digest equal to ``sha256(repr(history.signature()))``."""
        digest = self._history.copy()
        digest.update(self._closing())
        return digest.hexdigest()

    def result_digest(self, chaos_log) -> str:
        """Hex digest equal to ``sha256(repr((signature(), tuple(log))))``."""
        digest = self._result.copy()
        digest.update(self._closing())
        digest.update((", " + repr(tuple(chaos_log)) + ")").encode())
        return digest.hexdigest()
