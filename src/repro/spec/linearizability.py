"""Linearizability (atomicity) checking for MWMR read/write registers.

The checker decides whether a recorded :class:`~repro.spec.history.History`
of a single register is linearizable with respect to the sequential
read/write register specification, i.e. whether the atomicity conditions
A1-A3 of Section 2 admit a total order.

Algorithm
---------
A Wing-Gong / Lowe-style depth-first search over operation orderings with
memoisation on the *configuration* (set of linearized operation ids plus the
current register value).  Two register-specific optimisations keep the search
fast for the history sizes the tests produce (hundreds of operations):

* operations are only candidates for linearization when no other pending
  operation *must* precede them in real time (minimal-by-precedence rule);
* incomplete writes (invoked but never acknowledged -- e.g. the writer
  crashed) may either take effect or be dropped entirely, which the search
  explores lazily by treating them as optional candidates.

Histories are expected to use unique value labels per write (the workload
generators guarantee this); reads returning the initial value are matched
against the ``"v0"`` label of :data:`repro.common.values.BOTTOM_VALUE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.spec.history import History, OperationRecord, OperationType

#: Label of the register's initial value.
INITIAL_LABEL = "v0"


@dataclass
class LinearizabilityResult:
    """The outcome of a linearizability check."""

    ok: bool
    #: A witness linearization (operation ids in order) when ``ok``.
    order: List[int] = field(default_factory=list)
    #: Human-readable explanation when not ``ok``.
    reason: str = ""
    #: Number of search states explored (for diagnostics / performance tests).
    states_explored: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_linearizability(history: History, initial_label: str = INITIAL_LABEL,
                          max_states: int = 2_000_000) -> LinearizabilityResult:
    """Check that ``history`` is linearizable as a read/write register.

    Parameters
    ----------
    history:
        The recorded history.  Failed operations are ignored; incomplete
        (pending) writes are treated as possibly-effective, incomplete reads
        are ignored (a pending read imposes no constraint).
    initial_label:
        The label reads must return if they are linearized before every write.
    max_states:
        Safety valve for the search; the checker gives up (reporting failure
        with an explanatory reason) if exceeded.
    """
    reads = [r for r in history.reads(complete_only=True)]
    complete_writes = [w for w in history.writes() if w.complete]
    pending_writes = [w for w in history.writes() if not w.complete and not w.failed]
    operations: List[OperationRecord] = reads + complete_writes + pending_writes

    # Quick structural check: every read must return the initial value or the
    # value of some write present in the history.
    known_labels = {w.value_label for w in complete_writes + pending_writes}
    for read in reads:
        if read.value_label != initial_label and read.value_label not in known_labels:
            return LinearizabilityResult(
                ok=False,
                reason=(f"read {read} returned label {read.value_label!r} which no "
                        "write in the history produced"),
            )

    by_id: Dict[int, OperationRecord] = {op.op_id: op for op in operations}
    ids: List[int] = sorted(by_id)
    # Precompute real-time predecessors: op -> set of ops that must precede it.
    predecessors: Dict[int, Set[int]] = {op_id: set() for op_id in ids}
    for a in operations:
        for b in operations:
            if a.op_id != b.op_id and a.precedes(b):
                predecessors[b.op_id].add(a.op_id)

    pending_write_ids = {w.op_id for w in pending_writes}
    total_required = len(reads) + len(complete_writes)

    # Depth-first search with memoisation on (linearized-set, current label).
    seen: Set[Tuple[FrozenSet[int], Optional[str]]] = set()
    states = {"count": 0}

    def search(linearized: FrozenSet[int], current_label: str, done_required: int,
               order: List[int]) -> Optional[List[int]]:
        if done_required == total_required:
            return order
        key = (linearized, current_label)
        if key in seen:
            return None
        seen.add(key)
        states["count"] += 1
        if states["count"] > max_states:
            raise _SearchBudgetExceeded()

        for op_id in ids:
            if op_id in linearized:
                continue
            if predecessors[op_id] - linearized:
                continue  # some real-time predecessor not linearized yet
            op = by_id[op_id]
            if op.op_type is OperationType.READ:
                if op.value_label != current_label:
                    continue
                result = search(linearized | {op_id}, current_label,
                                done_required + 1, order + [op_id])
            else:
                increment = 0 if op_id in pending_write_ids else 1
                result = search(linearized | {op_id}, op.value_label,
                                done_required + increment, order + [op_id])
            if result is not None:
                return result
        return None

    try:
        witness = search(frozenset(), initial_label, 0, [])
    except _SearchBudgetExceeded:
        return LinearizabilityResult(
            ok=False,
            reason=f"search budget of {max_states} states exceeded",
            states_explored=states["count"],
        )
    if witness is None:
        return LinearizabilityResult(
            ok=False,
            reason="no linearization order satisfies the register specification",
            states_explored=states["count"],
        )
    return LinearizabilityResult(ok=True, order=witness, states_explored=states["count"])


class _SearchBudgetExceeded(Exception):
    """Internal signal: the memoised search exceeded its state budget."""


def check_tag_monotonicity(history: History) -> Optional[str]:
    """Cheap necessary condition using protocol tags (Lemma 20).

    For any two complete operations ``π1 → π2`` the tag of ``π2`` must be at
    least the tag of ``π1``; when ``π2`` is a write its tag must be strictly
    larger (a write always increments past every tag it discovered).
    Returns ``None`` if the condition holds, otherwise a description of the
    first violation.  This is a fast sanity check used alongside the full
    linearizability search.
    """
    operations = [op for op in history.operations(complete_only=True)
                  if op.tag is not None and op.op_type is not OperationType.RECONFIG]
    operations.sort(key=lambda op: op.responded_at)
    for i, first in enumerate(operations):
        for second in operations[i + 1:]:
            if not first.precedes(second):
                continue
            if second.tag < first.tag:
                return (f"tag of {second} is smaller than the tag of the preceding {first}")
            if second.op_type is OperationType.WRITE and not second.tag > first.tag:
                return (f"write {second} does not have a strictly larger tag than the "
                        f"preceding {first}")
    return None
