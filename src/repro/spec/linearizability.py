"""Linearizability (atomicity) checking for MWMR read/write registers.

The checker decides whether a recorded :class:`~repro.spec.history.History`
of a single register is linearizable with respect to the sequential
read/write register specification, i.e. whether the atomicity conditions
A1-A3 of Section 2 admit a total order.

Two cooperating algorithms
--------------------------
:func:`check_linearizability` first runs a **register-specialised fast
checker** (:func:`_fast_check`) and only falls back to the exhaustive
Wing-Gong search (:func:`check_linearizability_reference`) when the fast
checker cannot decide.

*Fast path* -- a Gibbons/Korach-style value partition, in the spirit of
Lowe's just-in-time linearization.  When every write carries a distinct
value label (the workload generators guarantee this), operations partition
into per-value **clusters** -- one write plus all reads returning its value.
In any linearization each value occupies one contiguous segment, so a
cluster is ordered entirely before another whenever any of its operations
really precedes one of the other's; that cluster-level precedence reduces to
comparing two scalars (the cluster's earliest response against the other's
latest invocation).  The fast checker

1. rejects outright on *necessary-condition* violations: a read returning a
   value no write produced, a read completing before its write was invoked,
   a read of the initial value invoked after another value's cluster had to
   be over, or two clusters that each must precede the other (a real-time
   cycle -- the classic stale read / new-old inversion);
2. otherwise *constructs* candidate linearizations (clusters ordered by
   earliest response, then by protocol tag when available) and verifies one
   in a single linear sweep.

A verified witness proves linearizability; a failed necessary condition
disproves it; anything else (duplicate value labels, no candidate order
surviving the sweep) is **ambiguous** and is handed to the reference search,
so the combination is exactly as precise as Wing-Gong while the common case
-- by far the dominant cost of chaos-scenario verification -- runs in
near-linear time.

*Reference path* -- the Wing-Gong / Lowe-style depth-first search over
operation orderings with memoisation on the *configuration* (set of
linearized operation ids plus the current register value), with the
minimal-by-precedence candidate rule and lazy treatment of incomplete
writes.

Histories are expected to use unique value labels per write (the workload
generators guarantee this); reads returning the initial value are matched
against the ``"v0"`` label of :data:`repro.common.values.BOTTOM_VALUE`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.spec.history import History, OperationRecord, OperationType

#: Label of the register's initial value.
INITIAL_LABEL = "v0"

_INFINITY = float("inf")


@dataclass
class LinearizabilityResult:
    """The outcome of a linearizability check."""

    ok: bool
    #: A witness linearization (operation ids in order) when ``ok``.
    order: List[int] = field(default_factory=list)
    #: Human-readable explanation when not ``ok``.
    reason: str = ""
    #: Number of search states explored (for diagnostics / performance tests).
    #: The fast checker decides without searching, reporting ``0``.
    states_explored: int = 0
    #: Which algorithm produced the verdict: ``"fast"`` or ``"reference"``.
    method: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_linearizability(history: History, initial_label: str = INITIAL_LABEL,
                          max_states: int = 2_000_000) -> LinearizabilityResult:
    """Check that ``history`` is linearizable as a read/write register.

    Runs the near-linear fast checker first and falls back to the
    Wing-Gong reference search only on histories the fast checker finds
    ambiguous (e.g. duplicate value labels, or no greedy witness passing
    verification).  Both paths agree on every decidable history; the fast
    path only ever returns *proven* verdicts.

    Parameters
    ----------
    history:
        The recorded history.  Failed operations are ignored; incomplete
        (pending) writes are treated as possibly-effective, incomplete reads
        are ignored (a pending read imposes no constraint).
    initial_label:
        The label reads must return if they are linearized before every write.
    max_states:
        Safety valve for the reference search; the checker gives up
        (reporting failure with an explanatory reason) if exceeded.
    """
    fast = _fast_check(history, initial_label)
    if fast is not None:
        return fast
    return check_linearizability_reference(history, initial_label, max_states)


# ======================================================================
# Fast path: value-partition checker
# ======================================================================

class _Cluster:
    """One effective written value: its write plus the reads returning it."""

    __slots__ = ("write", "reads", "min_res", "max_inv")

    def __init__(self, write: OperationRecord, reads: List[OperationRecord]) -> None:
        self.write = write
        self.reads = reads
        min_res = write.responded_at if write.complete else _INFINITY
        max_inv = write.invoked_at
        for read in reads:
            if read.responded_at < min_res:
                min_res = read.responded_at
            if read.invoked_at > max_inv:
                max_inv = read.invoked_at
        #: Earliest response of any cluster operation: if it lies before an
        #: operation of another cluster, this cluster's segment must come
        #: first in every linearization.
        self.min_res = min_res
        #: Latest invocation of any cluster operation (the dual bound).
        self.max_inv = max_inv


def _fast_check(history: History,
                initial_label: str) -> Optional[LinearizabilityResult]:
    """Decide the history directly, or return ``None`` when ambiguous.

    Never guesses: ``ok=True`` only with a sweep-verified witness,
    ``ok=False`` only on violated necessary conditions.
    """
    reads = history.reads(complete_only=True)
    writes = [w for w in history.writes() if not w.failed]

    writes_by_label: Dict[str, OperationRecord] = {}
    for write in writes:
        label = write.value_label
        if label is None or label == initial_label or label in writes_by_label:
            return None  # ambiguous labelling: leave it to the reference search
        writes_by_label[label] = write

    initial_reads: List[OperationRecord] = []
    reads_by_label: Dict[str, List[OperationRecord]] = {}
    for read in reads:
        label = read.value_label
        if label == initial_label:
            initial_reads.append(read)
        elif label in writes_by_label:
            reads_by_label.setdefault(label, []).append(read)
        else:
            return LinearizabilityResult(
                ok=False,
                reason=(f"read {read} returned label {read.value_label!r} which no "
                        "write in the history produced"),
                method="fast",
            )

    # Effective clusters: complete writes always take effect; pending writes
    # only when some read returned their value (dropping a read-free pending
    # write can never hurt, so the witness simply omits them).
    clusters: List[_Cluster] = []
    for label, write in writes_by_label.items():
        cluster_reads = reads_by_label.get(label, [])
        if not write.complete and not cluster_reads:
            continue
        for read in cluster_reads:
            if read.responded_at < write.invoked_at:
                return LinearizabilityResult(
                    ok=False,
                    reason=(f"read {read} completed before the write of "
                            f"{label!r} ({write}) was invoked"),
                    method="fast",
                )
        clusters.append(_Cluster(write, cluster_reads))

    # Reads of the initial value must be linearized before every write.
    if initial_reads:
        latest_initial_inv = max(r.invoked_at for r in initial_reads)
        for cluster in clusters:
            if cluster.min_res < latest_initial_inv:
                return LinearizabilityResult(
                    ok=False,
                    reason=(f"a read of the initial value was invoked after an "
                            f"operation on {cluster.write.value_label!r} completed"),
                    method="fast",
                )

    # Cluster-level real-time cycle: clusters u, v where an operation of u
    # precedes one of v AND vice versa can never both be contiguous segments.
    # u must precede v iff min_res(u) < max_inv(v), so a cycle is a pair with
    # min_res(u) < max_inv(v) and min_res(v) < max_inv(u); detected in
    # O(V log V) with a prefix scan over clusters sorted by min_res.
    by_min_res = sorted(clusters, key=lambda c: c.min_res)
    min_res_list = [c.min_res for c in by_min_res]
    running_max_inv = -_INFINITY
    prefix_max_inv: List[float] = []
    for cluster in by_min_res:
        if cluster.max_inv > running_max_inv:
            running_max_inv = cluster.max_inv
        prefix_max_inv.append(running_max_inv)
    for j, cluster in enumerate(by_min_res):
        k = min(bisect_left(min_res_list, cluster.max_inv), j)
        if k > 0 and prefix_max_inv[k - 1] > cluster.min_res:
            return LinearizabilityResult(
                ok=False,
                reason=("two written values each contain an operation that "
                        "really precedes an operation of the other (stale read "
                        f"or new/old inversion around {cluster.write.value_label!r})"),
                method="fast",
            )

    # Candidate segment orders: earliest-response order is correct for the
    # common case; the protocol's own tags (when every write carries one)
    # give a second, just-in-time-style candidate.
    candidates: List[List[_Cluster]] = [
        sorted(clusters, key=lambda c: (c.min_res, c.write.invoked_at, c.write.op_id)),
    ]
    if clusters and all(c.write.tag is not None for c in clusters):
        candidates.append(sorted(
            clusters, key=lambda c: (c.write.tag.sort_key, c.write.op_id)))

    prologue = sorted(initial_reads, key=lambda r: (r.invoked_at, r.op_id))
    for candidate in candidates:
        witness: List[OperationRecord] = list(prologue)
        for cluster in candidate:
            witness.append(cluster.write)
            witness.extend(sorted(cluster.reads,
                                  key=lambda r: (r.invoked_at, r.op_id)))
        if _verify_witness(witness):
            return LinearizabilityResult(
                ok=True, order=[op.op_id for op in witness], method="fast")

    if not clusters and not initial_reads:
        return LinearizabilityResult(ok=True, method="fast")
    return None  # no candidate verified: ambiguous, defer to the search


def _verify_witness(witness: List[OperationRecord]) -> bool:
    """Check a candidate order against real time in one linear sweep.

    The order is semantically valid by construction (each value is a
    contiguous segment opened by its write), so only real-time precedence
    remains: no operation may respond before an *earlier-placed* operation
    was invoked.
    """
    max_inv_so_far = -_INFINITY
    for op in witness:
        responded = op.responded_at
        if responded is not None and responded < max_inv_so_far:
            return False
        if op.invoked_at > max_inv_so_far:
            max_inv_so_far = op.invoked_at
    return True


# ======================================================================
# Reference path: Wing-Gong depth-first search
# ======================================================================

def check_linearizability_reference(history: History,
                                    initial_label: str = INITIAL_LABEL,
                                    max_states: int = 2_000_000) -> LinearizabilityResult:
    """Exhaustive Wing-Gong search (the pre-existing reference checker).

    Kept both as the fallback for histories the fast checker cannot decide
    and as the oracle for the differential test-suite and the performance
    baseline in ``benchmarks/bench_simcore.py``.
    """
    reads = [r for r in history.reads(complete_only=True)]
    complete_writes = [w for w in history.writes() if w.complete]
    pending_writes = [w for w in history.writes() if not w.complete and not w.failed]
    operations: List[OperationRecord] = reads + complete_writes + pending_writes

    # Quick structural check: every read must return the initial value or the
    # value of some write present in the history.
    known_labels = {w.value_label for w in complete_writes + pending_writes}
    for read in reads:
        if read.value_label != initial_label and read.value_label not in known_labels:
            return LinearizabilityResult(
                ok=False,
                reason=(f"read {read} returned label {read.value_label!r} which no "
                        "write in the history produced"),
                method="reference",
            )

    by_id: Dict[int, OperationRecord] = {op.op_id: op for op in operations}
    ids: List[int] = sorted(by_id)
    # Precompute real-time predecessors: op -> set of ops that must precede it.
    predecessors: Dict[int, Set[int]] = {op_id: set() for op_id in ids}
    for a in operations:
        for b in operations:
            if a.op_id != b.op_id and a.precedes(b):
                predecessors[b.op_id].add(a.op_id)

    pending_write_ids = {w.op_id for w in pending_writes}
    total_required = len(reads) + len(complete_writes)

    # Depth-first search with memoisation on (linearized-set, current label).
    seen: Set[Tuple[FrozenSet[int], Optional[str]]] = set()
    states = {"count": 0}

    def search(linearized: FrozenSet[int], current_label: str, done_required: int,
               order: List[int]) -> Optional[List[int]]:
        if done_required == total_required:
            return order
        key = (linearized, current_label)
        if key in seen:
            return None
        seen.add(key)
        states["count"] += 1
        if states["count"] > max_states:
            raise _SearchBudgetExceeded()

        for op_id in ids:
            if op_id in linearized:
                continue
            if predecessors[op_id] - linearized:
                continue  # some real-time predecessor not linearized yet
            op = by_id[op_id]
            if op.op_type is OperationType.READ:
                if op.value_label != current_label:
                    continue
                result = search(linearized | {op_id}, current_label,
                                done_required + 1, order + [op_id])
            else:
                increment = 0 if op_id in pending_write_ids else 1
                result = search(linearized | {op_id}, op.value_label,
                                done_required + increment, order + [op_id])
            if result is not None:
                return result
        return None

    try:
        witness = search(frozenset(), initial_label, 0, [])
    except _SearchBudgetExceeded:
        return LinearizabilityResult(
            ok=False,
            reason=f"search budget of {max_states} states exceeded",
            states_explored=states["count"],
            method="reference",
        )
    if witness is None:
        return LinearizabilityResult(
            ok=False,
            reason="no linearization order satisfies the register specification",
            states_explored=states["count"],
            method="reference",
        )
    return LinearizabilityResult(ok=True, order=witness,
                                 states_explored=states["count"], method="reference")


class _SearchBudgetExceeded(Exception):
    """Internal signal: the memoised search exceeded its state budget."""


def check_tag_monotonicity(history: History) -> Optional[str]:
    """Cheap necessary condition using protocol tags (Lemma 20).

    For any two complete operations ``π1 → π2`` the tag of ``π2`` must be at
    least the tag of ``π1``; when ``π2`` is a write its tag must be strictly
    larger (a write always increments past every tag it discovered).
    Returns ``None`` if the condition holds, otherwise a description of the
    first violation.  This is a fast sanity check used alongside the full
    linearizability search.

    Runs in ``O(n log n)``: with operations sorted by response time, the
    real-time predecessors of an operation are a prefix (all operations that
    responded before its invocation), so each operation only needs to be
    compared against the maximum tag of that prefix.
    """
    operations = [op for op in history.operations(complete_only=True)
                  if op.tag is not None and op.op_type is not OperationType.RECONFIG]
    operations.sort(key=lambda op: op.responded_at)
    response_times = [op.responded_at for op in operations]
    # prefix_best[i]: operation with the maximum tag among operations[0..i]
    # (earliest such operation on ties, matching the pairwise scan's order).
    prefix_best: List[OperationRecord] = []
    best = None
    for op in operations:
        if best is None or op.tag > best.tag:
            best = op
        prefix_best.append(best)
    for second in operations:
        count = bisect_left(response_times, second.invoked_at)
        if count == 0:
            continue
        first = prefix_best[count - 1]
        if second.tag < first.tag:
            return (f"tag of {second} is smaller than the tag of the preceding {first}")
        if second.op_type is OperationType.WRITE and not second.tag > first.tag:
            return (f"write {second} does not have a strictly larger tag than the "
                    f"preceding {first}")
    return None


# ======================================================================
# Per-key (multi-object store) checking
# ======================================================================

@dataclass
class PerKeyLinearizabilityResult:
    """The outcome of checking a keyed (multi-object) history per key.

    A sharded store records all objects into one history; each object is an
    independent atomic register, so the history is linearizable iff every
    per-key sub-history is.  ``results`` keeps the per-key verdicts (in
    first-invocation order of the keys) for diagnostics.
    """

    ok: bool
    #: Per-key verdicts, in the history's deterministic key order.
    results: Dict[Optional[str], LinearizabilityResult] = field(default_factory=dict)
    #: First violation, prefixed with the offending key, when not ``ok``.
    reason: str = ""

    @property
    def method(self) -> str:
        """Aggregate checker-method label, e.g. ``per-key(fast)``."""
        methods = sorted({r.method for r in self.results.values() if r.method})
        return f"per-key({','.join(methods)})" if methods else "per-key"

    @property
    def states_explored(self) -> int:
        """Total search states explored across all keys."""
        return sum(r.states_explored for r in self.results.values())

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_linearizability_per_key(history: History,
                                  initial_label: str = INITIAL_LABEL,
                                  max_states: int = 2_000_000,
                                  ) -> PerKeyLinearizabilityResult:
    """Check a keyed history: every object key must linearize independently.

    Each per-key sub-history runs through :func:`check_linearizability`
    (fast checker first, Wing-Gong fallback).  Key-less records (e.g.
    reconfigurations mixed into a store history) form their own group; with
    no read/write operations it passes trivially.  Every key is checked
    even after a failure so ``results`` is always complete.

    Records spanning config epochs: a store key that was live-migrated
    (new servers, a different DAP kind, or another shard) records *keyed*
    ``RECONFIG`` operations alongside its reads and writes, and its
    read/write records straddle several configurations.  The per-key
    checkers accept such sub-histories as-is -- reconfigurations impose no
    register semantics (the type filters skip them) and linearizability is
    configuration-agnostic, which is exactly the paper's claim that
    atomicity survives reconfiguration.
    """
    results: Dict[Optional[str], LinearizabilityResult] = {}
    ok = True
    reason = ""
    for key, sub in history.split_by_key().items():
        result = check_linearizability(sub, initial_label, max_states)
        results[key] = result
        if not result.ok and ok:
            ok = False
            reason = f"key {key!r}: {result.reason}"
    return PerKeyLinearizabilityResult(ok=ok, results=results, reason=reason)


def check_tag_monotonicity_per_key(history: History) -> Optional[str]:
    """Per-key version of :func:`check_tag_monotonicity`.

    Tags of different objects live in independent tag spaces (each key has
    its own writes), so the Lemma 20 condition only binds operations on the
    same key.  The condition deliberately spans config epochs: a migration
    transfers the maximum tag into the new configuration, so tags must stay
    monotone *across* the key's reconfigurations (keyed ``RECONFIG``
    records themselves carry no register tag and are skipped).  Returns the
    first violation prefixed with its key, or ``None``.
    """
    for key, sub in history.split_by_key().items():
        violation = check_tag_monotonicity(sub)
        if violation is not None:
            return f"key {key!r}: {violation}"
    return None
