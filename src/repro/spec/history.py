"""Operation histories.

A :class:`History` records, for every high-level read or write operation,
its invocation time, response time, the process that issued it, and its
result (the label of the value written or returned).  Histories are produced
by the register clients and the ARES clients and consumed by the
linearizability checker and by the latency-analysis benchmarks.

Multi-object (store) histories
------------------------------
The sharded store records many named registers into **one** history; each
record then carries the object ``key`` it operated on.  Such a *keyed*
history is checked per key (every key is an independent atomic register, see
:func:`repro.spec.linearizability.check_linearizability_per_key`) while
:meth:`History.signature` stays a single merged, store-wide fingerprint.
Use :meth:`History.split_by_key` / :meth:`History.for_key` to obtain the
per-key sub-histories.

Streaming histories
-------------------
:meth:`History.enable_streaming` switches an (empty) history into a bounded
open-window mode: completed operations are fed to the online
linearizability / tag-monotonicity checkers in
:mod:`repro.spec.streaming` as their concurrency windows close, the
verified prefix is folded into a running signature accumulator
(byte-identical to the batch :meth:`signature_hash`), and the folded
records are discarded.  Memory stays O(open window) instead of O(run),
which is what lets the scale benchmarks push 10^6+ operations through the
store.  Full-history queries (``operations()``, ``signature()``,
``split_by_key()``, ...) raise
:class:`~repro.common.errors.StreamingHistoryError` in streaming mode.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import StreamingHistoryError
from repro.common.ids import ProcessId
from repro.common.tags import Tag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.spec.streaming import HistoryStream


class OperationType(enum.Enum):
    """The kind of a high-level operation."""

    READ = "read"
    WRITE = "write"
    RECONFIG = "reconfig"


@dataclass(slots=True)
class OperationRecord:
    """One high-level operation with its real-time interval and outcome.

    ``slots=True`` matters: streaming scale runs allocate one record per
    operation (10^6+ per benchmark run), and the per-instance ``__dict__``
    of an ordinary dataclass roughly doubles the allocation cost and
    footprint of the open window.
    """

    op_id: int
    process: ProcessId
    op_type: OperationType
    invoked_at: float
    responded_at: Optional[float] = None
    #: Label of the value written (writes) or returned (reads).
    value_label: Optional[str] = None
    #: Object key the operation addressed (``None`` for single-register
    #: histories; set by the sharded store's clients).
    key: Optional[str] = None
    #: Tag associated with the operation's value, when the protocol exposes it.
    tag: Optional[Tag] = None
    #: For reconfig operations: the installed configuration id.
    config_id: Optional[object] = None
    failed: bool = False

    @property
    def complete(self) -> bool:
        """Whether the operation has a response event."""
        return self.responded_at is not None and not self.failed

    @property
    def latency(self) -> Optional[float]:
        """Response minus invocation time, if complete."""
        if self.responded_at is None:
            return None
        return self.responded_at - self.invoked_at

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time precedence ``self → other`` (response before invocation)."""
        return self.responded_at is not None and self.responded_at < other.invoked_at

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        interval = (
            f"[{self.invoked_at:.2f}, "
            f"{'...' if self.responded_at is None else f'{self.responded_at:.2f}'}]"
        )
        where = "" if self.key is None else f"{self.key}="
        return f"{self.op_type.value}({where}{self.value_label}) by {self.process} {interval}"


def signature_entry(record: OperationRecord) -> tuple:
    """The signature tuple of one record.

    Shared by the batch :meth:`History.signature`, the non-materializing
    :meth:`History.signature_hash` and the streaming fold in
    :mod:`repro.spec.streaming`, so all three agree byte-for-byte on the
    fingerprint.  Key-less records keep the exact historical 8-tuple shape;
    keyed records append the object key.
    """
    entry = (record.op_id, record.process.name, record.op_type.value,
             record.invoked_at, record.responded_at, record.value_label,
             None if record.tag is None else str(record.tag), record.failed)
    if record.key is not None:
        entry += (record.key,)
    return entry


class History:
    """A mutable collection of :class:`OperationRecord` entries."""

    def __init__(self) -> None:
        self._records: Dict[int, OperationRecord] = {}
        self._counter = itertools.count()
        self._stream: Optional["HistoryStream"] = None

    # ------------------------------------------------------------- streaming
    @property
    def streaming(self) -> bool:
        """Whether this history folds records away as windows close."""
        return self._stream is not None

    @property
    def stream(self) -> Optional["HistoryStream"]:
        """The attached :class:`~repro.spec.streaming.HistoryStream`."""
        return self._stream

    def enable_streaming(self, window_limit: Optional[int] = None,
                         initial_label: Optional[str] = None,
                         latency_reservoir: Optional[int] = None,
                         ) -> "HistoryStream":
        """Switch this (empty) history into bounded open-window mode.

        Must be called before any operation is recorded: the stream folds
        records in event order, so a partially-recorded history cannot be
        converted retroactively.  Returns the attached stream (also
        available as :attr:`stream`).
        """
        from repro.spec.streaming import HistoryStream

        if self._records or self._stream is not None:
            raise StreamingHistoryError(
                "enable_streaming() requires an empty, non-streaming history")
        kwargs = {}
        if window_limit is not None:
            kwargs["window_limit"] = window_limit
        if initial_label is not None:
            kwargs["initial_label"] = initial_label
        if latency_reservoir is not None:
            kwargs["latency_reservoir"] = latency_reservoir
        self._stream = HistoryStream(self, **kwargs)
        return self._stream

    def _batch_only(self, api: str) -> None:
        if self._stream is not None:
            raise StreamingHistoryError(
                f"History.{api} needs the full record set, which streaming "
                "mode folds away; use the attached HistoryStream (counters, "
                "signature_hash, verdicts) or re-run in batch mode")

    # ------------------------------------------------------------- recording
    def invoke(
        self,
        process: ProcessId,
        op_type: OperationType,
        at: float,
        value_label: Optional[str] = None,
        key: Optional[str] = None,
    ) -> OperationRecord:
        """Record an operation invocation; returns the (open) record."""
        record = OperationRecord(
            op_id=next(self._counter),
            process=process,
            op_type=op_type,
            invoked_at=at,
            value_label=value_label,
            key=key,
        )
        self._records[record.op_id] = record
        if self._stream is not None:
            self._stream.on_invoke(record)
        return record

    def respond(
        self,
        record: OperationRecord,
        at: float,
        value_label: Optional[str] = None,
        tag: Optional[Tag] = None,
        config_id: Optional[object] = None,
    ) -> OperationRecord:
        """Record the response of an operation."""
        record.responded_at = at
        if value_label is not None:
            record.value_label = value_label
        if tag is not None:
            record.tag = tag
        if config_id is not None:
            record.config_id = config_id
        if self._stream is not None:
            self._stream.on_respond(record)
        return record

    def fail(self, record: OperationRecord, at: float) -> OperationRecord:
        """Mark an operation as failed (e.g. its client crashed)."""
        record.responded_at = at
        record.failed = True
        if self._stream is not None:
            self._stream.on_fail(record)
        return record

    # --------------------------------------------------------------- queries
    def operations(self, op_type: Optional[OperationType] = None,
                   complete_only: bool = False) -> List[OperationRecord]:
        """All records, optionally filtered by type and completeness."""
        self._batch_only("operations()")
        records = list(self._records.values())
        if op_type is not None:
            records = [r for r in records if r.op_type is op_type]
        if complete_only:
            records = [r for r in records if r.complete]
        return sorted(records, key=lambda r: (r.invoked_at, r.op_id))

    def reads(self, complete_only: bool = True) -> List[OperationRecord]:
        """All (complete) read operations."""
        return self.operations(OperationType.READ, complete_only=complete_only)

    def writes(self, complete_only: bool = False) -> List[OperationRecord]:
        """All write operations (incomplete writes matter for linearizability)."""
        return self.operations(OperationType.WRITE, complete_only=complete_only)

    def reconfigs(self, complete_only: bool = True) -> List[OperationRecord]:
        """All (complete) reconfiguration operations."""
        return self.operations(OperationType.RECONFIG, complete_only=complete_only)

    def latencies(self, op_type: Optional[OperationType] = None) -> List[float]:
        """Latencies of complete operations (optionally of one type)."""
        return [r.latency for r in self.operations(op_type, complete_only=True)]

    # ------------------------------------------------------- per-key queries
    def is_keyed(self) -> bool:
        """Whether any read/write record addresses a named object key.

        Keyed histories (recorded by the sharded store) are verified per key;
        single-register histories keep the historical whole-history checks.
        """
        if self._stream is not None:
            return self._stream.is_keyed()
        return any(
            r.key is not None
            for r in self._records.values()
            if r.op_type is not OperationType.RECONFIG
        )

    def keys(self) -> List[Optional[str]]:
        """The distinct object keys, ordered by first invocation.

        ``None`` appears when the history also carries key-less records
        (e.g. reconfigurations in a mixed history).
        """
        seen: List[Optional[str]] = []
        for record in self.operations():
            if record.key not in seen:
                seen.append(record.key)
        return seen

    def for_key(self, key: Optional[str]) -> "History":
        """The sub-history of operations on ``key`` (records are shared)."""
        self._batch_only("for_key()")
        sub = History()
        for record in self._records.values():
            if record.key == key:
                sub._records[record.op_id] = record
        return sub

    def split_by_key(self) -> Dict[Optional[str], "History"]:
        """Partition into per-key sub-histories, keyed by object key.

        The partition order is deterministic (first-invocation order) so
        per-key checkers report violations in a stable order.
        """
        subs: Dict[Optional[str], History] = {}
        for record in self.operations():
            sub = subs.get(record.key)
            if sub is None:
                sub = subs[record.key] = History()
            sub._records[record.op_id] = record
        return subs

    def __len__(self) -> int:
        if self._stream is not None:
            return self._stream.total_records
        return len(self._records)

    def __iter__(self):
        return iter(self.operations())

    def describe(self) -> str:
        """Multi-line rendering of the history ordered by invocation time."""
        return "\n".join(str(record) for record in self.operations())

    def signature(self) -> tuple:
        """A hashable fingerprint of the whole history.

        Two runs of the same seeded scenario must produce equal signatures;
        the chaos determinism tests compare them to catch any source of
        nondeterminism (unseeded randomness, iteration-order dependence)
        creeping into the stack.

        Keyed (store) histories merge every object into this one store-wide
        signature: the object key is appended to each keyed record's entry.
        Key-less records keep the exact historical tuple shape, so the
        golden signature hashes of single-register scenarios are unaffected.

        Streaming histories cannot materialize this tuple (the records are
        gone); use :meth:`signature_hash`, which is byte-identical to
        ``sha256(repr(signature()))`` in both modes.
        """
        self._batch_only("signature()")
        return tuple(signature_entry(record) for record in self.operations())

    def signature_hash(self) -> str:
        """SHA-256 of ``repr(self.signature())`` without materializing it.

        The batch path streams each record's entry repr through the hash --
        the full entries list (10^6 tuples on a scale run) is never built.
        The streaming path finalizes the stream and returns the fold
        accumulator's digest, which is byte-identical by construction.
        """
        if self._stream is not None:
            self._stream.finalize()
            return self._stream.signature_hash()
        digest = hashlib.sha256(b"(")
        count = 0
        for record in self.operations():
            if count:
                digest.update(b", ")
            digest.update(repr(signature_entry(record)).encode())
            count += 1
        digest.update(b",)" if count == 1 else b")")
        return digest.hexdigest()
