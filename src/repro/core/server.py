"""The ARES server protocol (Algorithm 6, plus DAP and consensus hosting).

Each ARES server keeps, for every configuration it is a member of:

* ``nextC`` -- the ``<cfg, status>`` record of the configuration that follows
  this one in the global sequence, or ``⊥``;
* the per-configuration DAP server state (ABD tag/value pair, TREAS ``List``,
  LDR directory/replica stores);
* the Paxos acceptor state of the configuration's consensus instance
  ``c.Con`` (used to decide the successor of the configuration).

The ``nextC`` update rule follows Algorithm 6: a WRITE-CONFIG installs the
incoming record if the current value is ``⊥`` or still pending; a finalized
record is never overwritten (and by consensus Agreement the configuration
member never changes).

Retirement
----------
Configuration retirement (the GC phase of
:class:`~repro.core.reconfig.ReconfigOpsMixin`) reclaims everything above:
a ``RETIRE-CONFIG`` message -- sent only after a quorum of the finalized
successor acked a ``CONFIRM-CONFIG`` round -- makes the server drop the
configuration's DAP state, its Paxos acceptor state and its ``nextC``
record, keeping a compact **tombstone**: the finalized successor's record
plus its absolute GL index.  A client arriving with a stale ``cseq`` asks a
retired configuration for its ``nextC`` and receives the tombstone as a
redirect, converging in one hop (the mirror of
:meth:`repro.store.shardmap.ShardMap.forward`) instead of replaying the
chain; DAP and consensus traffic for a retired configuration is refused
with an explicit NACK so quorum gathers fail fast rather than stall.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import RETIRED_CONFIG_REASON
from repro.common.ids import ConfigId, ProcessId
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, Status
from repro.consensus.paxos import (
    ACCEPT,
    DECIDED,
    PREPARE,
    PaxosAcceptorState,
)
from repro.core.directory import ConfigurationDirectory
from repro.dap import make_dap_server_state
from repro.dap.interface import DapServerState
from repro.net.message import Message, reply
from repro.net.network import Network
from repro.sim.process import Process

READ_CONFIG = "ARES-READ-CONFIG"
WRITE_CONFIG = "ARES-WRITE-CONFIG"
#: GC phase, round 1: the reconfigurer asks a quorum of the *new* (finalized)
#: configuration to acknowledge the finalized record before anything is
#: discarded -- the paper's "quorum of the new configuration is established"
#: precondition for pruning.
CONFIRM_CONFIG = "ARES-CONFIRM-CONFIG"
#: GC phase, round 2: reclaim a retired configuration's server state, leaving
#: a tombstone redirect to the finalized successor.
RETIRE_CONFIG = "ARES-RETIRE-CONFIG"

_PAXOS_KINDS = (PREPARE, ACCEPT, DECIDED)

#: Factory signature for per-configuration DAP server state.
DapStateFactory = Callable[[Configuration, ProcessId], DapServerState]


class AresServer(Process):
    """A server participating in the ARES service.

    Parameters
    ----------
    pid, network:
        Standard process identity and network attachment.
    directory:
        The configuration directory used to resolve configuration ids that
        arrive in messages.
    dap_state_factory:
        Factory building the per-configuration DAP state; the deployment
        passes :class:`~repro.core.ares_treas.TreasTransferServerState`'s
        factory when direct state transfer (Section 5) is enabled.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        dap_state_factory: Optional[DapStateFactory] = None,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.dap_state_factory = dap_state_factory or make_dap_server_state
        #: nextC per configuration this server belongs to (⊥ encoded as None).
        self.next_config: Dict[ConfigId, Optional[ConfigRecord]] = {}
        #: DAP server state per configuration.
        self.dap_states: Dict[ConfigId, DapServerState] = {}
        #: Paxos acceptor state per consensus instance (keyed by the
        #: configuration whose successor the instance decides).
        self.acceptors: Dict[ConfigId, PaxosAcceptorState] = {}
        #: Tombstones for retired configurations: the finalized successor's
        #: record and its absolute GL index, replacing the reclaimed
        #: ``nextC``/DAP/acceptor state.
        self.retired: Dict[ConfigId, Tuple[ConfigRecord, int]] = {}
        #: Finalized records confirmed at this server by the GC phase's
        #: CONFIRM-CONFIG round (this server as a *successor* member).
        self.confirmed_final: Dict[ConfigId, ConfigRecord] = {}
        #: Retirement accounting: configurations reclaimed here and the
        #: object-data bytes their DAP states held when reclaimed.
        self.configs_retired = 0
        self.bytes_reclaimed = 0
        #: Admission governor under injected resource pressure
        #: (:class:`~repro.chaos.resources.ResourceGovernor`); ``None`` --
        #: the default, a single attribute test on the dispatch path --
        #: until a resource fault attaches one.
        self.governor = None

    # -------------------------------------------------------------- dispatch
    def on_message(self, src: ProcessId, message: Message) -> None:
        governor = self.governor
        if governor is not None and governor.rules:
            reason = governor.admit(message)
            if reason is not None:
                # Refuse loudly: an explicit NACK (instead of a silent drop)
                # lets the client's quorum gather fail fast and retry, the
                # gray-failure behaviour this taxonomy models.
                if self.metrics is not None:
                    self.metrics.inc("srv_nacks")
                if message.request_id is not None:
                    self.send(src, reply(message, kind="SRV-NACK",
                                         nack=True, error=reason))
                return
        kind = message.kind
        if kind == READ_CONFIG:
            self._on_read_config(src, message)
            return
        if kind == WRITE_CONFIG:
            self._on_write_config(src, message)
            return
        if kind == CONFIRM_CONFIG:
            self._on_confirm_config(src, message)
            return
        if kind == RETIRE_CONFIG:
            self._on_retire_config(src, message)
            return
        if kind in _PAXOS_KINDS:
            self._on_paxos(src, message)
            return
        self._on_dap(src, message)

    # ----------------------------------------------------- nextC (Algorithm 6)
    def _on_read_config(self, src: ProcessId, message: Message) -> None:
        cfg_id: ConfigId = message.config_id
        tombstone = self.retired.get(cfg_id)
        if tombstone is not None:
            # Redirect: the finalized successor plus its GL index, so a
            # stale client re-bases its whole sequence in one hop instead of
            # walking reclaimed links.
            record, index = tombstone
            self.send(src, reply(message, kind="ARES-NEXT-CONFIG",
                                 metadata_fields=3, record=record, jump=index))
            return
        record = self.next_config.get(cfg_id)
        self.send(src, reply(message, kind="ARES-NEXT-CONFIG", metadata_fields=2,
                             record=record))

    def _on_write_config(self, src: ProcessId, message: Message) -> None:
        cfg_id: ConfigId = message.config_id
        incoming: ConfigRecord = message["record"]
        if cfg_id in self.retired:
            # The configuration is gone and its tombstone already points at
            # a finalized record at or past the incoming link; ack benignly
            # so in-flight put-config rounds complete without stalling.
            self.send(src, reply(message, kind="ARES-CONFIG-ACK"))
            return
        current = self.next_config.get(cfg_id)
        if current is None or current.status is Status.PENDING:
            self.next_config[cfg_id] = incoming
        self.send(src, reply(message, kind="ARES-CONFIG-ACK"))

    # ----------------------------------------------------------- retirement
    def _on_confirm_config(self, src: ProcessId, message: Message) -> None:
        """Acknowledge (as a successor member) that a record is finalized.

        The GC phase only retires predecessors once a quorum of the new
        configuration acked this round, so the finalized record is durable
        across that quorum before any redirect points at it.
        """
        record: ConfigRecord = message["record"]
        self.confirmed_final[message.config_id] = record
        self.send(src, reply(message, kind="ARES-CONFIRM-ACK"))

    def _on_retire_config(self, src: ProcessId, message: Message) -> None:
        """Reclaim a retired configuration's state, keeping a tombstone."""
        cfg_id: ConfigId = message.config_id
        successor: ConfigRecord = message["record"]
        index: int = message["index"]
        existing = self.retired.get(cfg_id)
        if existing is None or existing[1] < index:
            self.retired[cfg_id] = (successor, index)
        if existing is None:
            state = self.dap_states.pop(cfg_id, None)
            reclaimed = state.storage_data_bytes() if state is not None else 0
            self.acceptors.pop(cfg_id, None)
            self.next_config.pop(cfg_id, None)
            self.configs_retired += 1
            self.bytes_reclaimed += reclaimed
            if self.metrics is not None:
                if reclaimed:
                    self.metrics.inc("bytes_reclaimed", reclaimed)
        self.send(src, reply(message, kind="ARES-RETIRE-ACK"))

    def _refuse_retired(self, src: ProcessId, message: Message) -> None:
        """NACK traffic addressed to a retired configuration (fail fast)."""
        if self.metrics is not None:
            self.metrics.inc("srv_nacks")
        if message.request_id is not None:
            self.send(src, reply(message, kind="SRV-NACK", nack=True,
                                 error=RETIRED_CONFIG_REASON))

    # ---------------------------------------------------------------- Paxos
    def _on_paxos(self, src: ProcessId, message: Message) -> None:
        instance: ConfigId = message["instance"]
        if instance in self.retired:
            # The instance's configuration is retired; never resurrect its
            # acceptor state (the decision it reached is finalized history).
            self._refuse_retired(src, message)
            return
        acceptor = self.acceptors.setdefault(instance, PaxosAcceptorState())
        response = acceptor.handle(message)
        if response is not None and message.kind != DECIDED:
            self.send(src, response)

    # ------------------------------------------------------------------ DAP
    def _on_dap(self, src: ProcessId, message: Message) -> None:
        cfg_id = message.config_id
        if cfg_id is None:
            return
        if cfg_id in self.retired:
            self._refuse_retired(src, message)
            return
        state = self.dap_state_for(cfg_id)
        if state is None or not state.handles(message.kind):
            return
        response = state.handle(src, message)
        if response is not None:
            self.send(src, response)

    def dap_state_for(self, cfg_id: ConfigId) -> Optional[DapServerState]:
        """The DAP state for ``cfg_id``, created lazily if this server is a member.

        Retired configurations never resurrect: once reclaimed, the answer
        is ``None`` regardless of membership.
        """
        state = self.dap_states.get(cfg_id)
        if state is not None:
            return state
        if cfg_id in self.retired:
            return None
        configuration = self.directory.maybe_get(cfg_id)
        if configuration is None or self.pid not in configuration.servers:
            return None
        state = self.dap_state_factory(configuration, self.pid)
        state.bind(self)
        self.dap_states[cfg_id] = state
        return state

    # ------------------------------------------------------------ accounting
    def storage_data_bytes(self) -> int:
        """Object-data bytes stored across all configurations at this server.

        Sums the instantiated DAP states.  Members this server never served
        hold exactly the lazily-created initial state -- Φ(v0) over the
        zero-byte bottom value -- so they contribute 0 without being
        materialised (accounting must never allocate protocol state: the
        resource governor reads this figure on the admission hot path).
        The invariant "a fresh DAP state stores 0 data bytes" is pinned by
        the retirement test suite for every DAP kind.
        """
        return sum(state.storage_data_bytes() for state in self.dap_states.values())

    def member_configurations(self) -> List[ConfigId]:
        """Configuration ids this server is a *member* of (truthful view).

        Consults the directory rather than the lazily-instantiated DAP
        states, so configurations this server belongs to but never served
        are counted too; retired configurations are excluded (their state
        has been reclaimed).  Registration order.
        """
        return [
            configuration.cfg_id
            for configuration in self.directory
            if self.pid in configuration.servers
            and configuration.cfg_id not in self.retired
        ]

    def instantiated_configurations(self) -> List[ConfigId]:
        """Configuration ids for which DAP state actually exists here.

        The lazy-instantiation view :meth:`member_configurations` used to
        (mis)report; kept for the laziness tests and memory diagnostics.
        """
        return list(self.dap_states)
