"""The ARES server protocol (Algorithm 6, plus DAP and consensus hosting).

Each ARES server keeps, for every configuration it is a member of:

* ``nextC`` -- the ``<cfg, status>`` record of the configuration that follows
  this one in the global sequence, or ``⊥``;
* the per-configuration DAP server state (ABD tag/value pair, TREAS ``List``,
  LDR directory/replica stores);
* the Paxos acceptor state of the configuration's consensus instance
  ``c.Con`` (used to decide the successor of the configuration).

The ``nextC`` update rule follows Algorithm 6: a WRITE-CONFIG installs the
incoming record if the current value is ``⊥`` or still pending; a finalized
record is never overwritten (and by consensus Agreement the configuration
member never changes).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.ids import ConfigId, ProcessId
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, Status
from repro.consensus.paxos import (
    ACCEPT,
    DECIDED,
    PREPARE,
    PaxosAcceptorState,
)
from repro.core.directory import ConfigurationDirectory
from repro.dap import make_dap_server_state
from repro.dap.interface import DapServerState
from repro.net.message import Message, reply
from repro.net.network import Network
from repro.sim.process import Process

READ_CONFIG = "ARES-READ-CONFIG"
WRITE_CONFIG = "ARES-WRITE-CONFIG"

_PAXOS_KINDS = (PREPARE, ACCEPT, DECIDED)

#: Factory signature for per-configuration DAP server state.
DapStateFactory = Callable[[Configuration, ProcessId], DapServerState]


class AresServer(Process):
    """A server participating in the ARES service.

    Parameters
    ----------
    pid, network:
        Standard process identity and network attachment.
    directory:
        The configuration directory used to resolve configuration ids that
        arrive in messages.
    dap_state_factory:
        Factory building the per-configuration DAP state; the deployment
        passes :class:`~repro.core.ares_treas.TreasTransferServerState`'s
        factory when direct state transfer (Section 5) is enabled.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        dap_state_factory: Optional[DapStateFactory] = None,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.dap_state_factory = dap_state_factory or make_dap_server_state
        #: nextC per configuration this server belongs to (⊥ encoded as None).
        self.next_config: Dict[ConfigId, Optional[ConfigRecord]] = {}
        #: DAP server state per configuration.
        self.dap_states: Dict[ConfigId, DapServerState] = {}
        #: Paxos acceptor state per consensus instance (keyed by the
        #: configuration whose successor the instance decides).
        self.acceptors: Dict[ConfigId, PaxosAcceptorState] = {}
        #: Admission governor under injected resource pressure
        #: (:class:`~repro.chaos.resources.ResourceGovernor`); ``None`` --
        #: the default, a single attribute test on the dispatch path --
        #: until a resource fault attaches one.
        self.governor = None

    # -------------------------------------------------------------- dispatch
    def on_message(self, src: ProcessId, message: Message) -> None:
        governor = self.governor
        if governor is not None and governor.rules:
            reason = governor.admit(message)
            if reason is not None:
                # Refuse loudly: an explicit NACK (instead of a silent drop)
                # lets the client's quorum gather fail fast and retry, the
                # gray-failure behaviour this taxonomy models.
                if self.metrics is not None:
                    self.metrics.inc("srv_nacks")
                if message.request_id is not None:
                    self.send(src, reply(message, kind="SRV-NACK",
                                         nack=True, error=reason))
                return
        kind = message.kind
        if kind == READ_CONFIG:
            self._on_read_config(src, message)
            return
        if kind == WRITE_CONFIG:
            self._on_write_config(src, message)
            return
        if kind in _PAXOS_KINDS:
            self._on_paxos(src, message)
            return
        self._on_dap(src, message)

    # ----------------------------------------------------- nextC (Algorithm 6)
    def _on_read_config(self, src: ProcessId, message: Message) -> None:
        cfg_id: ConfigId = message.config_id
        record = self.next_config.get(cfg_id)
        self.send(src, reply(message, kind="ARES-NEXT-CONFIG", metadata_fields=2,
                             record=record))

    def _on_write_config(self, src: ProcessId, message: Message) -> None:
        cfg_id: ConfigId = message.config_id
        incoming: ConfigRecord = message["record"]
        current = self.next_config.get(cfg_id)
        if current is None or current.status is Status.PENDING:
            self.next_config[cfg_id] = incoming
        self.send(src, reply(message, kind="ARES-CONFIG-ACK"))

    # ---------------------------------------------------------------- Paxos
    def _on_paxos(self, src: ProcessId, message: Message) -> None:
        instance: ConfigId = message["instance"]
        acceptor = self.acceptors.setdefault(instance, PaxosAcceptorState())
        response = acceptor.handle(message)
        if response is not None and message.kind != DECIDED:
            self.send(src, response)

    # ------------------------------------------------------------------ DAP
    def _on_dap(self, src: ProcessId, message: Message) -> None:
        cfg_id = message.config_id
        if cfg_id is None:
            return
        state = self.dap_state_for(cfg_id)
        if state is None or not state.handles(message.kind):
            return
        response = state.handle(src, message)
        if response is not None:
            self.send(src, response)

    def dap_state_for(self, cfg_id: ConfigId) -> Optional[DapServerState]:
        """The DAP state for ``cfg_id``, created lazily if this server is a member."""
        state = self.dap_states.get(cfg_id)
        if state is not None:
            return state
        configuration = self.directory.maybe_get(cfg_id)
        if configuration is None or self.pid not in configuration.servers:
            return None
        state = self.dap_state_factory(configuration, self.pid)
        state.bind(self)
        self.dap_states[cfg_id] = state
        return state

    # ------------------------------------------------------------ accounting
    def storage_data_bytes(self) -> int:
        """Object-data bytes stored across all configurations at this server."""
        return sum(state.storage_data_bytes() for state in self.dap_states.values())

    def member_configurations(self) -> list:
        """Configuration ids for which this server currently holds DAP state."""
        return list(self.dap_states)
