"""ARES readers and writers (Algorithm 7).

A write (read) operation:

1. runs ``read-config`` to refresh the client's local configuration
   sequence;
2. invokes ``get-tag`` (``get-data``) on every configuration from the last
   finalized index ``µ`` to the end of the sequence ``ν`` and keeps the
   maximum tag (tag-value pair);
3. for a write, increments the tag and pairs it with the new value; for a
   read, keeps the discovered pair;
4. repeatedly ``put-data``s the pair into the *last* configuration of the
   local sequence and re-runs ``read-config`` until no new configuration
   appears -- this is the "catch up with ongoing reconfigurations" loop whose
   termination the latency analysis (Section 4.4) studies.

The client records every high-level operation in a
:class:`~repro.spec.history.History` so atomicity can be checked and the
latency benchmarks can measure operation intervals.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import QuorumRefusedError, is_retirement_refusal
from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, TagValue
from repro.common.values import BOTTOM_VALUE, Value
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigSequence
from repro.core.directory import ConfigurationDirectory
from repro.core.traversal import SequenceTraversalMixin
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.process import Process
from repro.spec.history import History, OperationType
from repro.spec.properties import DapRecorder


class RegisterOpsMixin(SequenceTraversalMixin):
    """The Algorithm 7 read/write operations, shared by every ARES client.

    Hosts must be :class:`~repro.sim.process.Process` subclasses with a
    ``history`` attribute (``None`` disables recording).  Operations are
    parameterised over the register's local state -- its configuration
    sequence ``cseq`` and a ``configuration -> DapClient`` resolver -- so
    the single-register :class:`AresClient` (one ``cseq``) and the sharded
    store's :class:`~repro.store.client.StoreClient` (one ``cseq`` per
    object key) run the **same** implementation; a protocol fix lands in
    both data paths at once.
    """

    #: Cap on retirement-refusal restarts of one operation.  Each restart
    #: re-runs ``read-config``, whose tombstone jump lands at the latest
    #: finalized index known to the refusing servers, so in practice one
    #: restart converges; the cap guards against a pathological schedule
    #: where reconfigurations outrun the client indefinitely.
    _MAX_RETIREMENT_RESTARTS = 64

    def _register_write(self, cseq: ConfigSequence, dap_for, value: Value,
                        key: Optional[str] = None):
        """Coroutine: the ARES write (Algorithm 7) against one register.

        A quorum gather refused purely because the configuration it targeted
        was retired (a reconfigurer garbage-collected it mid-operation)
        restarts the operation body from ``read-config``: the refusing
        servers' tombstones redirect the next traversal past the reclaimed
        prefix, so the retry gathers over live configurations only.
        """
        record = None
        started = self.now
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.WRITE, self.now,
                                         value_label=value.label, key=key)
        for restart in range(self._MAX_RETIREMENT_RESTARTS + 1):
            try:
                new_pair = yield from self._write_body(cseq, dap_for, value)
                break
            except QuorumRefusedError as error:
                if restart == self._MAX_RETIREMENT_RESTARTS or \
                        not is_retirement_refusal(error):
                    raise
                if self.metrics is not None:
                    self.metrics.inc("retirement_restarts")
        if record is not None:
            self.history.respond(record, self.now, tag=new_pair.tag)
        if self.metrics is not None:
            self.metrics.observe("write_latency", self.now - started)
        return new_pair.tag

    def _write_body(self, cseq: ConfigSequence, dap_for, value: Value):
        """Coroutine: one attempt at the Algorithm 7 write body."""
        yield from self.read_config(cseq)
        mu = cseq.mu
        nu = cseq.nu
        tag_max = BOTTOM_TAG
        for index in range(mu, nu + 1):
            configuration = cseq.config_at(index)
            tag = yield from dap_for(configuration).get_tag()
            if tag > tag_max:
                tag_max = tag
        new_pair = TagValue(tag=tag_max.increment(self.pid), value=value)
        yield from self._register_propagate(cseq, dap_for, new_pair)
        return new_pair

    def _register_read(self, cseq: ConfigSequence, dap_for,
                       key: Optional[str] = None):
        """Coroutine: the ARES read (Algorithm 7); returns the value.

        Restarts on retirement refusals exactly like ``_register_write``.
        """
        record = None
        started = self.now
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.READ, self.now,
                                         key=key)
        for restart in range(self._MAX_RETIREMENT_RESTARTS + 1):
            try:
                best = yield from self._read_body(cseq, dap_for)
                break
            except QuorumRefusedError as error:
                if restart == self._MAX_RETIREMENT_RESTARTS or \
                        not is_retirement_refusal(error):
                    raise
                if self.metrics is not None:
                    self.metrics.inc("retirement_restarts")
        if record is not None:
            self.history.respond(record, self.now, value_label=best.value.label,
                                 tag=best.tag)
        if self.metrics is not None:
            self.metrics.observe("read_latency", self.now - started)
        return best.value

    def _read_body(self, cseq: ConfigSequence, dap_for):
        """Coroutine: one attempt at the Algorithm 7 read body."""
        yield from self.read_config(cseq)
        mu = cseq.mu
        nu = cseq.nu
        best = TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
        for index in range(mu, nu + 1):
            configuration = cseq.config_at(index)
            pair = yield from dap_for(configuration).get_data()
            if pair.tag > best.tag:
                best = pair
        yield from self._register_propagate(cseq, dap_for, best)
        return best

    def _register_propagate(self, cseq: ConfigSequence, dap_for, pair: TagValue):
        """Algorithm 7 lines 15-21 / 37-43: put-data until the sequence stops growing."""
        nu = cseq.nu
        while True:
            configuration = cseq.config_at(nu)
            yield from dap_for(configuration).put_data(pair)
            yield from self.read_config(cseq)
            if cseq.nu == nu:
                return
            nu = cseq.nu


class AresClient(Process, RegisterOpsMixin):
    """A reader or writer client of the ARES service."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        initial_configuration: Configuration,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.history = history
        self.dap_recorder = dap_recorder
        directory.register(initial_configuration)
        #: The client's local configuration sequence ``cseq`` (Algorithm 7 state).
        self.cseq = ConfigSequence(initial_configuration)
        self._dap_clients: Dict[ConfigId, DapClient] = {}
        self._write_counter = 0

    # --------------------------------------------------------------- plumbing
    def dap_for(self, configuration: Configuration) -> DapClient:
        """The (cached) DAP client for ``configuration``."""
        client = self._dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            self._dap_clients[configuration.cfg_id] = client
        return client

    def next_value(self, size: int) -> Value:
        """A fresh uniquely-labelled value for workload generation."""
        self._write_counter += 1
        return Value.of_size(size, label=f"{self.pid.name}:{self._write_counter}")

    # ------------------------------------------------------------- operations
    def write(self, value: Value):
        """Coroutine implementing the ARES write operation."""
        return self._register_write(self.cseq, self.dap_for, value)

    def read(self):
        """Coroutine implementing the ARES read operation; returns the value."""
        return self._register_read(self.cseq, self.dap_for)
