"""Sequence traversal (Algorithm 4): ``read-next-config``, ``put-config``, ``read-config``.

Every read, write and reconfig operation uses these actions to discover the
latest state of the global configuration sequence GL and to make sure that
state remains discoverable by later operations:

* ``read-next-config(c)`` asks a quorum of ``c.Servers`` for their ``nextC``
  variable and returns the first finalized record it sees, else a pending
  one, else ``⊥``;
* ``put-config(c, record)`` writes ``record`` into the ``nextC`` variable of
  a quorum of ``c.Servers``;
* ``read-config(seq)`` starts from the last finalized configuration of the
  local sequence and follows ``nextC`` pointers until it reaches a
  configuration whose quorum knows no successor, propagating every link it
  traverses to the previous configuration on the way (which is what makes
  the Configuration Prefix and Progress lemmas hold).

The helper is written as a mixin so the ARES clients and the reconfigurer
share one implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, ConfigSequence, Status
from repro.net.message import request
from repro.core.server import READ_CONFIG, WRITE_CONFIG


class SequenceTraversalMixin:
    """Adds the Algorithm 4 actions to a client process.

    The host class must be a :class:`~repro.sim.process.Process` and must
    have a ``directory`` attribute (the configuration directory) so that
    configurations referenced by received records can be registered locally.
    """

    #: Number of ``read-config`` invocations performed (diagnostics/benchmarks).
    read_config_count: int = 0

    # ----------------------------------------------------- primitive actions
    def read_next_config(self, configuration: Configuration):
        """Coroutine: return the ``nextC`` record after ``configuration`` (or ``None``).

        Awaits replies from a majority (the configuration's consensus
        quorums) of ``configuration.servers``; prefers finalized records over
        pending ones, mirroring Algorithm 4 lines 16-21.
        """
        replies = yield self.broadcast_and_gather(
            configuration.servers,
            lambda rid: request(READ_CONFIG, rid, config_id=configuration.cfg_id),
            threshold=configuration.consensus_quorums.quorum_size,
            label="read-next-config",
        )
        records = [msg["record"] for _, msg in replies if msg["record"] is not None]
        if not records:
            return None
        for record in records:
            if record.status is Status.FINALIZED:
                return record
        return records[0]

    def put_config(self, configuration: Configuration, record: ConfigRecord):
        """Coroutine: write ``record`` to the ``nextC`` of a quorum of ``configuration``."""
        yield self.broadcast_and_gather(
            configuration.servers,
            lambda rid: request(WRITE_CONFIG, rid, config_id=configuration.cfg_id,
                                metadata_fields=2, record=record),
            threshold=configuration.consensus_quorums.quorum_size,
            label="put-config",
        )
        return None

    # ---------------------------------------------------------- read-config
    def read_config(self, seq: ConfigSequence):
        """Coroutine: traverse GL from the last finalized entry of ``seq``.

        Mutates and returns ``seq``: newly discovered records are appended
        (or upgrade the status of existing entries), and every traversed link
        is propagated to the previous configuration with ``put-config``.
        """
        self.read_config_count += 1
        index = seq.mu
        current = seq.config_at(index)
        while True:
            record = yield from self.read_next_config(current)
            if record is None:
                break
            self._register_record(record)
            index += 1
            seq.set_record(index, record)
            yield from self.put_config(seq.config_at(index - 1), record)
            current = record.config
        return seq

    # --------------------------------------------------------------- helpers
    def _register_record(self, record: ConfigRecord) -> None:
        directory = getattr(self, "directory", None)
        if directory is not None:
            directory.register(record.config)
