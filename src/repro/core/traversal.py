"""Sequence traversal (Algorithm 4): ``read-next-config``, ``put-config``, ``read-config``.

Every read, write and reconfig operation uses these actions to discover the
latest state of the global configuration sequence GL and to make sure that
state remains discoverable by later operations:

* ``read-next-config(c)`` asks a quorum of ``c.Servers`` for their ``nextC``
  variable and returns the first finalized record it sees, else a pending
  one, else ``⊥``;
* ``put-config(c, record)`` writes ``record`` into the ``nextC`` variable of
  a quorum of ``c.Servers``;
* ``read-config(seq)`` starts from the last finalized configuration of the
  local sequence and follows ``nextC`` pointers until it reaches a
  configuration whose quorum knows no successor, propagating every link it
  traverses to the previous configuration on the way (which is what makes
  the Configuration Prefix and Progress lemmas hold).

Servers that have *retired* a configuration answer ``read-next-config`` with
a tombstone redirect -- the finalized successor's record plus its absolute GL
index -- instead of a plain ``nextC`` link.  ``read-config`` handles these by
re-basing the sequence (:meth:`~repro.config.sequence.ConfigSequence.jump_to`)
onto the redirect target and resuming the walk from there, so a client whose
``cseq`` starts at a retired configuration converges in one hop rather than
replaying reclaimed links.

The helper is written as a mixin so the ARES clients and the reconfigurer
share one implementation.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, ConfigSequence, Status
from repro.net.message import request
from repro.core.server import READ_CONFIG, WRITE_CONFIG


class SequenceTraversalMixin:
    """Adds the Algorithm 4 actions to a client process.

    The host class must be a :class:`~repro.sim.process.Process` and must
    have a ``directory`` attribute (the configuration directory) so that
    configurations referenced by received records can be registered locally.
    """

    #: Number of ``read-config`` invocations performed (diagnostics/benchmarks).
    read_config_count: int = 0
    #: Number of tombstone redirects followed (stale clients converging).
    tombstone_jumps: int = 0

    # ----------------------------------------------------- primitive actions
    def read_next_config(self, configuration: Configuration):
        """Coroutine: return the ``nextC`` record after ``configuration`` (or ``None``).

        Awaits replies from a majority (the configuration's consensus
        quorums) of ``configuration.servers``; prefers finalized records over
        pending ones, mirroring Algorithm 4 lines 16-21.
        """
        record, _ = yield from self._read_next_config_entry(configuration)
        return record

    def _read_next_config_entry(self, configuration: Configuration):
        """Coroutine: the ``nextC`` record plus its tombstone jump index.

        Returns ``(record, jump)`` where ``jump`` is the absolute GL index a
        retirement tombstone redirects to, or ``None`` for an ordinary link.
        Among tombstone replies the farthest redirect wins (every tombstone
        target is finalized, so farther is strictly more recent); otherwise
        finalized records are preferred over pending ones.
        """
        replies = yield self.broadcast_and_gather(
            configuration.servers,
            lambda rid: request(READ_CONFIG, rid, config_id=configuration.cfg_id),
            threshold=configuration.consensus_quorums.quorum_size,
            label="read-next-config",
        )
        best_jump: Optional[Tuple[ConfigRecord, int]] = None
        records = []
        for _, msg in replies:
            record = msg["record"]
            if record is None:
                continue
            jump = msg.get("jump")
            if jump is not None:
                if best_jump is None or jump > best_jump[1]:
                    best_jump = (record, jump)
            else:
                records.append(record)
        if best_jump is not None:
            return best_jump
        if not records:
            return None, None
        for record in records:
            if record.status is Status.FINALIZED:
                return record, None
        return records[0], None

    def put_config(self, configuration: Configuration, record: ConfigRecord):
        """Coroutine: write ``record`` to the ``nextC`` of a quorum of ``configuration``."""
        yield self.broadcast_and_gather(
            configuration.servers,
            lambda rid: request(WRITE_CONFIG, rid, config_id=configuration.cfg_id,
                                metadata_fields=2, record=record),
            threshold=configuration.consensus_quorums.quorum_size,
            label="put-config",
        )
        return None

    # ---------------------------------------------------------- read-config
    def read_config(self, seq: ConfigSequence):
        """Coroutine: traverse GL from the last finalized entry of ``seq``.

        Mutates and returns ``seq``: newly discovered records are appended
        (or upgrade the status of existing entries), and every traversed link
        is propagated to the previous configuration with ``put-config``.  A
        tombstone redirect re-bases ``seq`` onto the finalized target and the
        walk resumes from there; the jump hop itself is not propagated
        backwards (the predecessors are retired -- there is nothing to write
        to and nothing left to discover through them).
        """
        self.read_config_count += 1
        index = seq.mu
        current = seq.config_at(index)
        while True:
            record, jump = yield from self._read_next_config_entry(current)
            if record is None:
                break
            self._register_record(record)
            if jump is not None:
                if jump <= index:
                    # A tombstone can only point forwards (it names the
                    # finalized successor of a retired predecessor); one at
                    # or behind our position carries nothing new.
                    break
                seq.jump_to(jump, record)
                self.tombstone_jumps += 1
                if self.metrics is not None:
                    self.metrics.inc("tombstone_jumps")
                index = jump
            else:
                index += 1
                seq.set_record(index, record)
                yield from self.put_config(seq.config_at(index - 1), record)
            current = record.config
        return seq

    # --------------------------------------------------------------- helpers
    def _register_record(self, record: ConfigRecord) -> None:
        directory = getattr(self, "directory", None)
        if directory is not None:
            directory.register(record.config)
