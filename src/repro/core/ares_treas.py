"""ARES-TREAS: direct server-to-server state transfer (Section 5, Algs. 8 and 9).

In baseline ARES the reconfiguration client reads the object value out of the
old configurations (``get-data``) and writes it into the new one
(``put-data``): every reconfiguration moves the whole object through the
client, which becomes a bandwidth bottleneck when many objects migrate at
once.  ARES-TREAS removes the client from the data path:

* the reconfigurer only gathers *tags* (``get-tag``) to find the maximum tag
  ``τ`` and the configuration ``C`` holding it;
* it then asks the servers of ``C`` -- through a metadata-consistent
  broadcast primitive (``md-primitive`` [21]) that delivers to either all
  non-faulty servers of ``C`` or none -- to forward their coded elements for
  ``τ`` directly to the servers of the new configuration ``C'``;
* each server of ``C'`` buffers incoming elements in ``D``, decodes the value
  as soon as ``k`` elements of ``C``'s code are available, re-encodes it with
  ``C'``'s code, stores its own new coded element in ``List``, remembers the
  reconfigurer in ``Recons`` and acknowledges it;
* the reconfigurer completes ``update-config`` once ``⌈(n'+k')/2⌉`` servers
  of ``C'`` acknowledged.

Only tag metadata ever reaches the reconfigurer; benchmark E7 measures the
resulting drop in client traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, Tag
from repro.config.configuration import Configuration, DapKind
from repro.core.reconfig import AresReconfigurer
from repro.dap.treas import TreasServerState
from repro.erasure.interface import CodedElement
from repro.net.message import Message, reply, request

#: Metadata-consistent broadcast wrapping a forward request (sent to the
#: servers of the *old* configuration ``C``).
MD_BCAST_REQ_FW = "ARES-MD-REQ-FW-CODE-ELEM"
#: A coded element forwarded from a server of ``C`` to a server of ``C'``.
FWD_CODE_ELEM = "ARES-FWD-CODE-ELEM"
#: Acknowledgement from a server of ``C'`` to the reconfigurer.
TRANSFER_ACK = "ARES-TRANSFER-ACK"


class TreasTransferServerState(TreasServerState):
    """TREAS server state extended with the Section 5 transfer protocol.

    The same class serves both roles: as a member of the *old* configuration
    it reacts to the broadcast forward request; as a member of the *new*
    configuration it collects forwarded elements in ``D`` and re-encodes.
    """

    HANDLED_KINDS = TreasServerState.HANDLED_KINDS + (MD_BCAST_REQ_FW, FWD_CODE_ELEM)

    def __init__(self, configuration: Configuration, server_pid: ProcessId) -> None:
        super().__init__(configuration, server_pid)
        #: ``D``: buffered foreign coded elements per (reconfigurer, tag).
        self.transfer_buffer: Dict[Tuple[ProcessId, Tag], Dict[int, CodedElement]] = {}
        #: ``Recons``: reconfigurers this server has already acknowledged.
        self.recons: Set[ProcessId] = set()
        #: Broadcast ids already relayed (for the all-or-none echo).
        self._seen_broadcasts: Set[int] = set()

    # ---------------------------------------------------------------- handle
    def handle(self, src: ProcessId, message: Message) -> Optional[Message]:
        kind = message.kind
        if kind == MD_BCAST_REQ_FW:
            self._on_forward_request(src, message)
            return None
        if kind == FWD_CODE_ELEM:
            self._on_forwarded_element(src, message)
            return None
        return super().handle(src, message)

    # ----------------------------------------- old-configuration side (C)
    def _on_forward_request(self, src: ProcessId, message: Message) -> None:
        """Algorithm 9, REQ-FW-CODE-ELEM handler at a server of ``C``.

        The message arrives through the md-primitive: on first delivery the
        server echoes it to every other server of ``C`` so that the request
        reaches all non-faulty members even if the reconfigurer crashed
        mid-broadcast (all-or-none delivery).
        """
        assert self.server is not None, "transfer state must be bound to its server"
        broadcast_id: int = message["broadcast_id"]
        if broadcast_id in self._seen_broadcasts:
            return
        self._seen_broadcasts.add(broadcast_id)

        # Echo phase of the md-primitive.
        for peer in self.configuration.servers:
            if peer != self.server_pid:
                self.server.send(peer, Message(
                    kind=MD_BCAST_REQ_FW, body=dict(message.body),
                    metadata_bytes=message.metadata_bytes,
                    config_id=message.config_id,
                ))

        tag: Tag = message["tag"]
        target: Configuration = message["target_config"]
        reconfigurer: ProcessId = message["reconfigurer"]
        transfer_rid: int = message["transfer_rid"]
        element = self.coded_element_for(tag)
        if element is None:
            # Either the tag is unknown here or its element was trimmed; this
            # server simply does not contribute (the quorum intersection
            # guarantees at least k servers still hold it).
            return
        for destination in target.servers:
            self.server.send(destination, Message(
                kind=FWD_CODE_ELEM,
                body={
                    "tag": tag,
                    "element": element,
                    "source_config": self.configuration,
                    "target_config": target,
                    "reconfigurer": reconfigurer,
                    "transfer_rid": transfer_rid,
                },
                data_bytes=element.size,
                metadata_bytes=4 * 16,
                config_id=target.cfg_id,
            ))

    # ----------------------------------------- new-configuration side (C')
    def _on_forwarded_element(self, src: ProcessId, message: Message) -> None:
        """Algorithm 9, FWD-CODE-ELEM handler at a server of ``C'``."""
        assert self.server is not None, "transfer state must be bound to its server"
        tag: Tag = message["tag"]
        element: CodedElement = message["element"]
        source: Configuration = message["source_config"]
        reconfigurer: ProcessId = message["reconfigurer"]
        transfer_rid: int = message["transfer_rid"]

        if reconfigurer in self.recons:
            return
        if tag not in self.list:
            buffer = self.transfer_buffer.setdefault((reconfigurer, tag), {})
            buffer[element.index] = element
            if len(buffer) >= source.code.k:
                value = source.code.decode(buffer.values())
                del self.transfer_buffer[(reconfigurer, tag)]
                own_element = self.configuration.code.encode(value)[self.my_index]
                self.insert(tag, own_element)
        if tag in self.list:
            self.recons.add(reconfigurer)
            self.server.send(reconfigurer, Message(
                kind=TRANSFER_ACK,
                body={"tag": tag},
                metadata_bytes=2 * 16,
                in_reply_to=transfer_rid,
                config_id=self.configuration.cfg_id,
            ))


def transfer_dap_state_factory(configuration: Configuration, server_pid: ProcessId):
    """DAP state factory enabling direct transfer for TREAS configurations.

    Non-TREAS configurations fall back to their ordinary DAP state (the
    Section 5 optimisation only applies to erasure-coded configurations).
    """
    if configuration.dap is DapKind.TREAS:
        return TreasTransferServerState(configuration, server_pid)
    from repro.dap import make_dap_server_state

    return make_dap_server_state(configuration, server_pid)


class DirectTransferReconfigurer(AresReconfigurer):
    """A reconfigurer using the Section 5 ``update-config`` (Algorithm 8).

    When either the source or the target configuration is not TREAS-backed
    the client falls back to the baseline transfer (reading the value itself),
    which keeps mixed-DAP reconfigurations correct.
    """

    #: Count of reconfigurations that used the direct path (diagnostics/benchmarks).
    direct_transfers: int = 0

    def update_config(self):
        """Coroutine: Algorithm 8's tag-only state transfer."""
        mu = self.cseq.mu
        nu = self.cseq.nu
        target = self.cseq.config_at(nu)

        # Gather only tags; remember which configuration produced the maximum.
        best_tag = BOTTOM_TAG
        best_source: Configuration = self.cseq.config_at(mu)
        for index in range(mu, nu + 1):
            configuration = self.cseq.config_at(index)
            tag = yield from self.dap_for(configuration).get_tag()
            if tag > best_tag or index == mu:
                best_tag = tag
                best_source = configuration
        if best_tag == BOTTOM_TAG:
            # Nothing written yet: new servers already hold (t0, Φ(v0)).
            return None
        if best_source.cfg_id == target.cfg_id:
            # The newest value already lives in the target configuration.
            return None
        if best_source.dap is not DapKind.TREAS or target.dap is not DapKind.TREAS:
            result = yield from super().update_config()
            return result

        yield from self.forward_code_element(best_tag, best_source, target)
        self.direct_transfers += 1
        return None

    def forward_code_element(self, tag: Tag, source: Configuration, target: Configuration):
        """Coroutine: md-broadcast the forward request and await ``⌈(n'+k')/2⌉`` acks."""
        threshold = target.quorum_size
        transfer_rid, gather = self.open_gather(threshold, label="forward-code-element")
        broadcast_id = self.new_request_id()
        for server in source.servers:
            self.send(server, Message(
                kind=MD_BCAST_REQ_FW,
                body={
                    "tag": tag,
                    "target_config": target,
                    "reconfigurer": self.pid,
                    "transfer_rid": transfer_rid,
                    "broadcast_id": broadcast_id,
                },
                metadata_bytes=5 * 16,
                config_id=source.cfg_id,
            ))
        yield gather
        return None
