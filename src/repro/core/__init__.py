"""ARES: the reconfigurable atomic storage service.

This package contains the paper's main contribution:

* :mod:`repro.core.directory` -- the configuration directory mapping
  configuration identifiers to their full descriptions.
* :mod:`repro.core.server`    -- the ARES server protocol (``nextC`` handling,
  per-configuration DAP state, Paxos acceptors).
* :mod:`repro.core.traversal` -- the sequence-traversal actions
  ``read-next-config`` / ``put-config`` / ``read-config`` (Algorithm 4).
* :mod:`repro.core.reconfig`  -- the reconfiguration client (Algorithm 5).
* :mod:`repro.core.client`    -- ARES readers and writers (Algorithm 7).
* :mod:`repro.core.ares_treas` -- the optimised direct server-to-server state
  transfer of Section 5 (Algorithms 8 and 9).
* :mod:`repro.core.deployment` -- builds complete ARES systems for tests,
  examples and benchmarks.
"""

from repro.core.directory import ConfigurationDirectory
from repro.core.server import AresServer
from repro.core.client import AresClient
from repro.core.reconfig import AresReconfigurer
from repro.core.ares_treas import TreasTransferServerState, DirectTransferReconfigurer
from repro.core.deployment import AresDeployment, DeploymentSpec

__all__ = [
    "ConfigurationDirectory",
    "AresServer",
    "AresClient",
    "AresReconfigurer",
    "TreasTransferServerState",
    "DirectTransferReconfigurer",
    "AresDeployment",
    "DeploymentSpec",
]
