"""The ARES reconfiguration client (Algorithm 5).

A ``reconfig(c)`` operation consists of four consecutively executed phases:

``read-config``
    Refresh the local configuration sequence (Algorithm 4).
``add-config``
    Propose ``c`` to the consensus instance of the *last* configuration in
    the sequence; whatever configuration ``d`` the instance decides is
    appended with status ``P`` and propagated to the previous configuration's
    servers with ``put-config`` (if ``d ≠ c`` the reconfigurer adopts ``d``
    and its own proposal is simply dropped -- at most one configuration is
    installed per index).
``update-config``
    Transfer the object state: gather the maximum tag-value pair from every
    configuration between the last finalized index ``µ`` and the new index
    ``ν`` with ``get-data`` and ``put-data`` it into the new configuration.
    (The optimised direct server-to-server transfer of Section 5 overrides
    exactly this phase; see :mod:`repro.core.ares_treas`.)
``finalize-config``
    Mark the new configuration ``F`` and propagate the finalized record to a
    quorum of the previous configuration.

Per-object batches
------------------
The four phases are implemented by :class:`ReconfigOpsMixin`, parameterised
over the register's local state (its ``cseq`` and a ``configuration ->
DapClient`` resolver) exactly like the read/write operations in
:class:`~repro.core.client.RegisterOpsMixin`.  The single-register
:class:`AresReconfigurer` binds them to its one ``cseq``; the sharded
store's :class:`~repro.store.reconfigurer.ShardReconfigurer` binds them to
one ``cseq`` *per object key* and runs whole shards' worth of per-key
reconfigurations concurrently -- both drive the **same** Algorithm 5
implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, TagValue
from repro.common.values import BOTTOM_VALUE
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, ConfigSequence, Status
from repro.consensus.paxos import PaxosProposer
from repro.core.directory import ConfigurationDirectory
from repro.core.traversal import SequenceTraversalMixin
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.process import Process
from repro.spec.history import History, OperationType
from repro.spec.properties import DapRecorder


class ReconfigOpsMixin(SequenceTraversalMixin):
    """The Algorithm 5 reconfiguration phases, shared by every reconfigurer.

    Hosts must be :class:`~repro.sim.process.Process` subclasses with a
    ``history`` attribute (``None`` disables recording) and a ``directory``.
    Every phase is parameterised over the target register's local state --
    its configuration sequence ``cseq`` and a ``configuration -> DapClient``
    resolver -- so the single-register :class:`AresReconfigurer` (one
    ``cseq``) and the store's per-shard
    :class:`~repro.store.reconfigurer.ShardReconfigurer` (one ``cseq`` per
    object key) run one implementation.
    """

    #: Extra latency added to every consensus decision (the ``T(CN)`` knob).
    consensus_delay: float = 0.0
    #: Number of reconfig operations this client completed.
    completed_reconfigs: int = 0

    def _register_reconfig(self, cseq: ConfigSequence, dap_for, proposed: Configuration,
                           key: Optional[str] = None,
                           update: Optional[Callable] = None):
        """Coroutine: run all four phases against one register's sequence.

        Returns the configuration that was actually installed at the index
        the proposal targeted (the decided one, which may differ from
        ``proposed`` under contention).  ``update`` optionally overrides the
        update-config phase (the Section 5 direct-transfer path); ``key``
        tags the history record for keyed (store) registers.
        """
        record = None
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.RECONFIG, self.now,
                                         value_label=str(proposed.cfg_id), key=key)
        self.directory.register(proposed)
        metrics = self.metrics
        started = self.now

        # Phase 1: read-config.
        yield from self.read_config(cseq)
        if metrics is not None:
            metrics.observe("reconfig_phase:read-config", self.now - started)
            phase_started = self.now

        # Phase 2: add-config.
        installed = yield from self._add_config(cseq, proposed)
        if metrics is not None:
            metrics.observe("reconfig_phase:add-config", self.now - phase_started)
            phase_started = self.now

        # Phase 3: update-config.
        if update is not None:
            yield from update()
        else:
            yield from self._update_config(cseq, dap_for)
        if metrics is not None:
            metrics.observe("reconfig_phase:update-config", self.now - phase_started)
            phase_started = self.now

        # Phase 4: finalize-config.
        yield from self._finalize_config(cseq)
        if metrics is not None:
            metrics.observe("reconfig_phase:finalize-config", self.now - phase_started)
            metrics.observe("reconfig_duration", self.now - started)

        self.completed_reconfigs += 1
        if record is not None:
            self.history.respond(record, self.now, config_id=installed.cfg_id)
        return installed

    # ----------------------------------------------------------- add-config
    def _add_config(self, cseq: ConfigSequence, proposed: Configuration):
        """Coroutine: decide the successor of the last configuration and append it."""
        last = cseq.last.config
        proposer = PaxosProposer(self, last, instance=last.cfg_id,
                                 extra_decision_delay=self.consensus_delay)
        decision = yield from proposer.propose(proposed)
        installed: Configuration = decision.value
        self.directory.register(installed)
        record = ConfigRecord(installed, Status.PENDING)
        if cseq.nu >= 0 and cseq.last.config.cfg_id == installed.cfg_id:
            # A concurrent reconfigurer already propagated the decision and we
            # observed it during read-config; nothing to append.
            pass
        else:
            cseq.append(record)
        yield from self.put_config(last, record)
        return installed

    # -------------------------------------------------------- update-config
    def _update_config(self, cseq: ConfigSequence, dap_for):
        """Coroutine: transfer the latest tag-value pair into the new configuration.

        The baseline ARES transfer: the reconfigurer itself reads the value
        (``get-data``) from every configuration in ``[µ, ν]`` and writes it
        (``put-data``) to the last one -- i.e. object data flows through the
        reconfiguration client.
        """
        mu = cseq.mu
        nu = cseq.nu
        best = TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
        for index in range(mu, nu + 1):
            configuration = cseq.config_at(index)
            pair = yield from dap_for(configuration).get_data()
            if pair.tag > best.tag:
                best = pair
        target = cseq.config_at(nu)
        yield from dap_for(target).put_data(best)
        return best

    # ------------------------------------------------------ finalize-config
    def _finalize_config(self, cseq: ConfigSequence):
        """Coroutine: mark the last configuration finalized and propagate the record."""
        nu = cseq.nu
        cseq.finalize(nu)
        finalized = cseq[nu]
        previous = cseq.config_at(nu - 1) if nu > 0 else cseq.config_at(0)
        yield from self.put_config(previous, finalized)
        return finalized


class AresReconfigurer(Process, ReconfigOpsMixin):
    """A reconfiguration client for a single ARES register.

    Parameters
    ----------
    consensus_delay:
        Extra latency added to every consensus decision, modelling the
        ``T(CN)`` term of the latency analysis (the paper treats consensus as
        an external service with its own delay).
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        initial_configuration: Configuration,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
        consensus_delay: float = 0.0,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.history = history
        self.dap_recorder = dap_recorder
        self.consensus_delay = consensus_delay
        directory.register(initial_configuration)
        self.cseq = ConfigSequence(initial_configuration)
        self._dap_clients: Dict[ConfigId, DapClient] = {}
        self.completed_reconfigs = 0

    # --------------------------------------------------------------- plumbing
    def dap_for(self, configuration: Configuration) -> DapClient:
        """The (cached) DAP client for ``configuration``."""
        client = self._dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            self._dap_clients[configuration.cfg_id] = client
        return client

    # ---------------------------------------------------------------- reconfig
    def reconfig(self, proposed: Configuration):
        """Coroutine: attempt to append ``proposed`` to the global sequence.

        Returns the configuration that was actually installed (the decided
        one, which may differ from ``proposed`` under contention).
        """
        return self._register_reconfig(self.cseq, self.dap_for, proposed,
                                       update=self.update_config)

    # ---------------------------------------------- overridable phase wrappers
    def add_config(self, proposed: Configuration):
        """Coroutine: the add-config phase against this client's ``cseq``."""
        return self._add_config(self.cseq, proposed)

    def update_config(self):
        """Coroutine: the update-config phase against this client's ``cseq``.

        Subclasses override exactly this method to replace the state
        transfer (the Section 5 direct server-to-server path of
        :class:`~repro.core.ares_treas.DirectTransferReconfigurer`).
        """
        return self._update_config(self.cseq, self.dap_for)

    def finalize_config(self):
        """Coroutine: the finalize-config phase against this client's ``cseq``."""
        return self._finalize_config(self.cseq)
