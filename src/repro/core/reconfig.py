"""The ARES reconfiguration client (Algorithm 5).

A ``reconfig(c)`` operation consists of four consecutively executed phases:

``read-config``
    Refresh the local configuration sequence (Algorithm 4).
``add-config``
    Propose ``c`` to the consensus instance of the *last* configuration in
    the sequence; whatever configuration ``d`` the instance decides is
    appended with status ``P`` and propagated to the previous configuration's
    servers with ``put-config`` (if ``d ≠ c`` the reconfigurer adopts ``d``
    and its own proposal is simply dropped -- at most one configuration is
    installed per index).
``update-config``
    Transfer the object state: gather the maximum tag-value pair from every
    configuration between the last finalized index ``µ`` and the new index
    ``ν`` with ``get-data`` and ``put-data`` it into the new configuration.
    (The optimised direct server-to-server transfer of Section 5 overrides
    exactly this phase; see :mod:`repro.core.ares_treas`.)
``finalize-config``
    Mark the new configuration ``F`` and propagate the finalized record to a
    quorum of the previous configuration.

When garbage collection is enabled (``gc=True``) a fifth phase follows:

``gc-config``
    Retire the configurations that precede the new last-finalized index
    ``µ``.  First a ``CONFIRM-CONFIG`` round establishes the finalized
    record at a quorum of the *new* configuration (so a redirect target is
    durable before anything is discarded); then each stale configuration's
    servers receive ``RETIRE-CONFIG`` -- best-effort, per configuration --
    telling them to reclaim DAP/acceptor/``nextC`` state behind a tombstone
    pointing at ``µ``; finally the local sequence prunes its dead prefix
    (:meth:`~repro.config.sequence.ConfigSequence.prune`).  GC is purely an
    optimisation: with it disabled every execution is byte-identical to the
    pre-GC protocol, which the golden-signature suite pins.

Per-object batches
------------------
The four phases are implemented by :class:`ReconfigOpsMixin`, parameterised
over the register's local state (its ``cseq`` and a ``configuration ->
DapClient`` resolver) exactly like the read/write operations in
:class:`~repro.core.client.RegisterOpsMixin`.  The single-register
:class:`AresReconfigurer` binds them to its one ``cseq``; the sharded
store's :class:`~repro.store.reconfigurer.ShardReconfigurer` binds them to
one ``cseq`` *per object key* and runs whole shards' worth of per-key
reconfigurations concurrently -- both drive the **same** Algorithm 5
implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import (
    QuorumRefusedError,
    QuorumUnavailableError,
    is_retirement_refusal,
)
from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, TagValue
from repro.common.values import BOTTOM_VALUE
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, ConfigSequence, Status
from repro.consensus.paxos import PaxosProposer
from repro.core.directory import ConfigurationDirectory
from repro.core.server import CONFIRM_CONFIG, RETIRE_CONFIG
from repro.core.traversal import SequenceTraversalMixin
from repro.net.message import request
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.process import Process
from repro.spec.history import History, OperationType
from repro.spec.properties import DapRecorder


class ReconfigOpsMixin(SequenceTraversalMixin):
    """The Algorithm 5 reconfiguration phases, shared by every reconfigurer.

    Hosts must be :class:`~repro.sim.process.Process` subclasses with a
    ``history`` attribute (``None`` disables recording) and a ``directory``.
    Every phase is parameterised over the target register's local state --
    its configuration sequence ``cseq`` and a ``configuration -> DapClient``
    resolver -- so the single-register :class:`AresReconfigurer` (one
    ``cseq``) and the store's per-shard
    :class:`~repro.store.reconfigurer.ShardReconfigurer` (one ``cseq`` per
    object key) run one implementation.
    """

    #: Extra latency added to every consensus decision (the ``T(CN)`` knob).
    consensus_delay: float = 0.0
    #: Number of reconfig operations this client completed.
    completed_reconfigs: int = 0
    #: Whether the gc-config phase runs after finalize-config.
    gc_enabled: bool = False
    #: Number of configurations this client retired (gc-config rounds acked).
    configs_retired: int = 0
    #: Cap on retirement-refusal restarts of one reconfig operation.
    _MAX_RETIREMENT_RESTARTS = 16

    def _register_reconfig(self, cseq: ConfigSequence, dap_for, proposed: Configuration,
                           key: Optional[str] = None,
                           update: Optional[Callable] = None):
        """Coroutine: run all phases against one register's sequence.

        Returns the configuration that was actually installed at the index
        the proposal targeted (the decided one, which may differ from
        ``proposed`` under contention).  ``update`` optionally overrides the
        update-config phase (the Section 5 direct-transfer path); ``key``
        tags the history record for keyed (store) registers.

        A phase whose quorum gather is refused purely because a contending
        reconfigurer retired the configuration underneath it restarts the
        operation from ``read-config``: the retired servers' tombstones make
        the next traversal jump straight past the reclaimed prefix.
        """
        record = None
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.RECONFIG, self.now,
                                         value_label=str(proposed.cfg_id), key=key)
        self.directory.register(proposed)
        metrics = self.metrics
        started = self.now

        for restart in range(self._MAX_RETIREMENT_RESTARTS + 1):
            try:
                installed, index = yield from self._reconfig_phases(
                    cseq, dap_for, proposed, update, metrics, started)
                break
            except QuorumRefusedError as error:
                if restart == self._MAX_RETIREMENT_RESTARTS or \
                        not is_retirement_refusal(error):
                    raise
                if metrics is not None:
                    metrics.inc("reconfig_retirement_restarts")

        # Phase 5: gc-config (optional).
        if self.gc_enabled:
            phase_started = self.now
            yield from self._gc_config(cseq)
            if metrics is not None:
                metrics.observe("reconfig_phase:gc-config", self.now - phase_started)

        if metrics is not None:
            metrics.observe("reconfig_duration", self.now - started)
        self.completed_reconfigs += 1
        if record is not None:
            self.history.respond(record, self.now, config_id=installed.cfg_id)
        return installed

    def _reconfig_phases(self, cseq: ConfigSequence, dap_for,
                         proposed: Configuration, update, metrics, started):
        """Coroutine: one attempt at phases 1-4; returns ``(installed, index)``."""
        # Phase 1: read-config.
        yield from self.read_config(cseq)
        if metrics is not None:
            metrics.observe("reconfig_phase:read-config", self.now - started)
            phase_started = self.now

        # Phase 2: add-config.
        installed, index = yield from self._add_config(cseq, proposed)
        if metrics is not None:
            metrics.observe("reconfig_phase:add-config", self.now - phase_started)
            phase_started = self.now

        # Phase 3: update-config.
        if update is not None:
            yield from update()
        else:
            yield from self._update_config(cseq, dap_for)
        if metrics is not None:
            metrics.observe("reconfig_phase:update-config", self.now - phase_started)
            phase_started = self.now

        # Phase 4: finalize-config.
        yield from self._finalize_config(cseq, index)
        if metrics is not None:
            metrics.observe("reconfig_phase:finalize-config", self.now - phase_started)
        return installed, index

    # ----------------------------------------------------------- add-config
    def _add_config(self, cseq: ConfigSequence, proposed: Configuration):
        """Coroutine: decide the successor of the last configuration.

        Returns ``(installed, index)``: the decided configuration and the
        absolute sequence index it occupies.  The decided value may already
        sit *anywhere* in the sequence -- a contending reconfigurer can have
        propagated it (and even successors of it) between our propose and
        the decision callback -- so membership is checked across the whole
        retained window, not just against the last entry; appending only
        when genuinely absent.  (Comparing against ``cseq.last`` alone made
        ``append`` raise ``ConfigurationError`` in exactly that window.)
        """
        last = cseq.last.config
        proposer = PaxosProposer(self, last, instance=last.cfg_id,
                                 extra_decision_delay=self.consensus_delay)
        decision = yield from proposer.propose(proposed)
        installed: Configuration = decision.value
        self.directory.register(installed)
        existing = cseq.index_of(installed.cfg_id)
        if existing is not None:
            # A concurrent reconfigurer already propagated the decision and we
            # observed it (at whatever index) during read-config; nothing to
            # append -- propagate the record we already hold.
            index = existing
            record = cseq[existing]
        else:
            record = ConfigRecord(installed, Status.PENDING)
            index = cseq.append(record)
        yield from self.put_config(last, record)
        return installed, index

    # -------------------------------------------------------- update-config
    def _update_config(self, cseq: ConfigSequence, dap_for):
        """Coroutine: transfer the latest tag-value pair into the new configuration.

        The baseline ARES transfer: the reconfigurer itself reads the value
        (``get-data``) from every configuration in ``[µ, ν]`` and writes it
        (``put-data``) to the last one -- i.e. object data flows through the
        reconfiguration client.
        """
        mu = cseq.mu
        nu = cseq.nu
        best = TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
        for index in range(mu, nu + 1):
            configuration = cseq.config_at(index)
            pair = yield from dap_for(configuration).get_data()
            if pair.tag > best.tag:
                best = pair
        target = cseq.config_at(nu)
        yield from dap_for(target).put_data(best)
        return best

    # ------------------------------------------------------ finalize-config
    def _finalize_config(self, cseq: ConfigSequence, index: Optional[int] = None):
        """Coroutine: finalize the configuration at ``index`` and propagate the record.

        ``index`` is the index add-config actually installed.  Recomputing
        ``cseq.nu`` at phase-4 time instead (the old behaviour, kept as the
        default for the standalone ``finalize_config()`` wrapper) finalizes
        the wrong entry when a contending reconfigurer extended the sequence
        between our update-config and finalize-config -- it would mark the
        *contender's* configuration ``F`` before its state transfer
        completed.
        """
        if index is None:
            index = cseq.nu
        cseq.finalize(index)
        finalized = cseq[index]
        previous_index = index - 1 if index > 0 else 0
        if previous_index < cseq.base:
            # The predecessor was pruned (retired): there is no quorum left
            # to propagate to, and the tombstones already redirect past it.
            return finalized
        previous = cseq.config_at(previous_index)
        yield from self.put_config(previous, finalized)
        return finalized

    # ------------------------------------------------------------ gc-config
    def _gc_config(self, cseq: ConfigSequence):
        """Coroutine: retire every configuration strictly before ``µ``.

        Two rounds.  First, ``CONFIRM-CONFIG`` establishes the finalized
        record at a quorum of the new configuration -- the redirect target
        must be durable at a live quorum before any predecessor forgets it.
        Second, each stale configuration's servers receive ``RETIRE-CONFIG``
        (reclaim state, keep a tombstone to ``µ``); this round is
        best-effort per configuration: one that already lost too many
        servers simply stays un-reclaimed, which is safe because traversal
        never revisits entries before ``µ``.  Finally the local sequence
        prunes its dead prefix.  Returns the number of configurations whose
        retirement quorum acked.
        """
        mu = cseq.mu
        stale = cseq.records_before(mu)
        if not stale:
            return 0
        final_record = cseq[mu]
        target = final_record.config
        yield self.broadcast_and_gather(
            target.servers,
            lambda rid: request(CONFIRM_CONFIG, rid, config_id=target.cfg_id,
                                metadata_fields=2, record=final_record),
            threshold=target.consensus_quorums.quorum_size,
            label="confirm-config",
        )
        retired = 0
        for _, entry in stale:
            old = entry.config
            try:
                yield self.broadcast_and_gather(
                    old.servers,
                    lambda rid, old=old: request(
                        RETIRE_CONFIG, rid, config_id=old.cfg_id,
                        metadata_fields=3, record=final_record, index=mu),
                    threshold=old.consensus_quorums.quorum_size,
                    label="retire-config",
                )
            except (QuorumRefusedError, QuorumUnavailableError):
                continue
            retired += 1
            if self.metrics is not None:
                self.metrics.inc("configs_retired")
        self.configs_retired += retired
        cseq.prune(mu)
        return retired


class AresReconfigurer(Process, ReconfigOpsMixin):
    """A reconfiguration client for a single ARES register.

    Parameters
    ----------
    consensus_delay:
        Extra latency added to every consensus decision, modelling the
        ``T(CN)`` term of the latency analysis (the paper treats consensus as
        an external service with its own delay).
    gc:
        Run the gc-config phase after every finalize (retire + prune the
        configurations before ``µ``).  Off by default: with ``gc=False``
        executions are byte-identical to the pre-retirement protocol.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        initial_configuration: Configuration,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
        consensus_delay: float = 0.0,
        gc: bool = False,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.history = history
        self.dap_recorder = dap_recorder
        self.consensus_delay = consensus_delay
        self.gc_enabled = gc
        directory.register(initial_configuration)
        self.cseq = ConfigSequence(initial_configuration)
        self._dap_clients: Dict[ConfigId, DapClient] = {}
        self.completed_reconfigs = 0

    # --------------------------------------------------------------- plumbing
    def dap_for(self, configuration: Configuration) -> DapClient:
        """The (cached) DAP client for ``configuration``."""
        client = self._dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            self._dap_clients[configuration.cfg_id] = client
        return client

    # ---------------------------------------------------------------- reconfig
    def reconfig(self, proposed: Configuration):
        """Coroutine: attempt to append ``proposed`` to the global sequence.

        Returns the configuration that was actually installed (the decided
        one, which may differ from ``proposed`` under contention).
        """
        return self._register_reconfig(self.cseq, self.dap_for, proposed,
                                       update=self.update_config)

    # ---------------------------------------------- overridable phase wrappers
    def add_config(self, proposed: Configuration):
        """Coroutine: the add-config phase against this client's ``cseq``.

        Returns ``(installed, index)`` -- the decided configuration and the
        absolute sequence index it occupies.
        """
        return self._add_config(self.cseq, proposed)

    def update_config(self):
        """Coroutine: the update-config phase against this client's ``cseq``.

        Subclasses override exactly this method to replace the state
        transfer (the Section 5 direct server-to-server path of
        :class:`~repro.core.ares_treas.DirectTransferReconfigurer`).
        """
        return self._update_config(self.cseq, self.dap_for)

    def finalize_config(self):
        """Coroutine: the finalize-config phase against this client's ``cseq``."""
        return self._finalize_config(self.cseq)
