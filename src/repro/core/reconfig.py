"""The ARES reconfiguration client (Algorithm 5).

A ``reconfig(c)`` operation consists of four consecutively executed phases:

``read-config``
    Refresh the local configuration sequence (Algorithm 4).
``add-config``
    Propose ``c`` to the consensus instance of the *last* configuration in
    the sequence; whatever configuration ``d`` the instance decides is
    appended with status ``P`` and propagated to the previous configuration's
    servers with ``put-config`` (if ``d ≠ c`` the reconfigurer adopts ``d``
    and its own proposal is simply dropped -- at most one configuration is
    installed per index).
``update-config``
    Transfer the object state: gather the maximum tag-value pair from every
    configuration between the last finalized index ``µ`` and the new index
    ``ν`` with ``get-data`` and ``put-data`` it into the new configuration.
    (The optimised direct server-to-server transfer of Section 5 overrides
    exactly this phase; see :mod:`repro.core.ares_treas`.)
``finalize-config``
    Mark the new configuration ``F`` and propagate the finalized record to a
    quorum of the previous configuration.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.ids import ConfigId, ProcessId
from repro.common.tags import BOTTOM_TAG, TagValue
from repro.common.values import BOTTOM_VALUE
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, ConfigSequence, Status
from repro.consensus.paxos import PaxosProposer
from repro.core.directory import ConfigurationDirectory
from repro.core.traversal import SequenceTraversalMixin
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.process import Process
from repro.spec.history import History, OperationType
from repro.spec.properties import DapRecorder


class AresReconfigurer(Process, SequenceTraversalMixin):
    """A reconfiguration client.

    Parameters
    ----------
    consensus_delay:
        Extra latency added to every consensus decision, modelling the
        ``T(CN)`` term of the latency analysis (the paper treats consensus as
        an external service with its own delay).
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        initial_configuration: Configuration,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
        consensus_delay: float = 0.0,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.history = history
        self.dap_recorder = dap_recorder
        self.consensus_delay = consensus_delay
        directory.register(initial_configuration)
        self.cseq = ConfigSequence(initial_configuration)
        self._dap_clients: Dict[ConfigId, DapClient] = {}
        #: Number of reconfig operations this client completed.
        self.completed_reconfigs = 0

    # --------------------------------------------------------------- plumbing
    def dap_for(self, configuration: Configuration) -> DapClient:
        """The (cached) DAP client for ``configuration``."""
        client = self._dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            self._dap_clients[configuration.cfg_id] = client
        return client

    # ---------------------------------------------------------------- reconfig
    def reconfig(self, proposed: Configuration):
        """Coroutine: attempt to append ``proposed`` to the global sequence.

        Returns the configuration that was actually installed (the decided
        one, which may differ from ``proposed`` under contention).
        """
        record = None
        if self.history is not None:
            record = self.history.invoke(self.pid, OperationType.RECONFIG, self.now,
                                         value_label=str(proposed.cfg_id))
        self.directory.register(proposed)

        # Phase 1: read-config.
        yield from self.read_config(self.cseq)

        # Phase 2: add-config.
        installed = yield from self.add_config(proposed)

        # Phase 3: update-config.
        yield from self.update_config()

        # Phase 4: finalize-config.
        yield from self.finalize_config()

        self.completed_reconfigs += 1
        if record is not None:
            self.history.respond(record, self.now, config_id=installed.cfg_id)
        return installed

    # ----------------------------------------------------------- add-config
    def add_config(self, proposed: Configuration):
        """Coroutine: decide the successor of the last configuration and append it."""
        last = self.cseq.last.config
        proposer = PaxosProposer(self, last, instance=last.cfg_id,
                                 extra_decision_delay=self.consensus_delay)
        decision = yield from proposer.propose(proposed)
        installed: Configuration = decision.value
        self.directory.register(installed)
        record = ConfigRecord(installed, Status.PENDING)
        if self.cseq.nu >= 0 and self.cseq.last.config.cfg_id == installed.cfg_id:
            # A concurrent reconfigurer already propagated the decision and we
            # observed it during read-config; nothing to append.
            pass
        else:
            self.cseq.append(record)
        yield from self.put_config(last, record)
        return installed

    # -------------------------------------------------------- update-config
    def update_config(self):
        """Coroutine: transfer the latest tag-value pair into the new configuration.

        The baseline ARES transfer: the reconfigurer itself reads the value
        (``get-data``) from every configuration in ``[µ, ν]`` and writes it
        (``put-data``) to the last one -- i.e. object data flows through the
        reconfiguration client.
        """
        mu = self.cseq.mu
        nu = self.cseq.nu
        best = TagValue(tag=BOTTOM_TAG, value=BOTTOM_VALUE)
        for index in range(mu, nu + 1):
            configuration = self.cseq.config_at(index)
            pair = yield from self.dap_for(configuration).get_data()
            if pair.tag > best.tag:
                best = pair
        target = self.cseq.config_at(nu)
        yield from self.dap_for(target).put_data(best)
        return best

    # ------------------------------------------------------ finalize-config
    def finalize_config(self):
        """Coroutine: mark the last configuration finalized and propagate the record."""
        nu = self.cseq.nu
        self.cseq.finalize(nu)
        finalized = self.cseq[nu]
        previous = self.cseq.config_at(nu - 1) if nu > 0 else self.cseq.config_at(0)
        yield from self.put_config(previous, finalized)
        return finalized
