"""The configuration directory.

A configuration *identifier* "describes explicitly the set of servers, the
quorums, the algorithm and the consensus instance" of the configuration
(Section 2).  In a real deployment that description is distributed with the
identifier (e.g. through a deployment catalogue); in the simulation the
:class:`ConfigurationDirectory` plays that role: a shared, append-only map
from :class:`~repro.common.ids.ConfigId` to
:class:`~repro.config.configuration.Configuration`.

The directory carries *no protocol state* -- in particular it says nothing
about which configurations have been installed in the global sequence, which
is decided purely by the ARES protocol -- it only resolves identifiers to
descriptions, so passing it to every process does not weaken the model.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.common.ids import ConfigId
from repro.config.configuration import Configuration


class ConfigurationDirectory:
    """Append-only registry of configuration descriptions."""

    def __init__(self) -> None:
        self._configurations: Dict[ConfigId, Configuration] = {}

    def register(self, configuration: Configuration) -> Configuration:
        """Register a configuration description.

        Re-registering the same object is a no-op; registering a *different*
        description under an existing identifier is an error (identifiers are
        unique).
        """
        existing = self._configurations.get(configuration.cfg_id)
        if existing is not None:
            if existing is not configuration:
                raise ConfigurationError(
                    f"configuration id {configuration.cfg_id} registered twice "
                    "with different descriptions"
                )
            return existing
        self._configurations[configuration.cfg_id] = configuration
        return configuration

    def get(self, cfg_id: ConfigId) -> Configuration:
        """Resolve an identifier; raises if unknown."""
        try:
            return self._configurations[cfg_id]
        except KeyError:
            raise ConfigurationError(f"unknown configuration id {cfg_id}") from None

    def maybe_get(self, cfg_id: ConfigId) -> Optional[Configuration]:
        """Resolve an identifier, returning ``None`` if unknown."""
        return self._configurations.get(cfg_id)

    def __contains__(self, cfg_id: ConfigId) -> bool:
        return cfg_id in self._configurations

    def __len__(self) -> int:
        return len(self._configurations)

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configurations.values())
