"""Deployment builder for complete ARES systems.

:class:`AresDeployment` wires together everything a test, example or
benchmark needs: the simulator, the network (with a chosen latency model),
a pool of :class:`~repro.core.server.AresServer` processes, the initial
configuration, reader/writer clients and reconfiguration clients, the shared
history and (optionally) DAP recorder.

It also provides convenience helpers to build follow-up configurations over
fresh or existing servers, and synchronous wrappers (``write`` / ``read`` /
``reconfig``) that spawn the corresponding client coroutine and drive the
simulator until it completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.ids import (
    ConfigId,
    ProcessId,
    config_id,
    reader_id,
    reconfigurer_id,
    server_id,
    writer_id,
)
from repro.common.values import Value
from repro.config.configuration import Configuration, DapKind
from repro.core.ares_treas import DirectTransferReconfigurer, transfer_dap_state_factory
from repro.core.client import AresClient
from repro.core.directory import ConfigurationDirectory
from repro.core.reconfig import AresReconfigurer
from repro.core.server import AresServer
from repro.net.failures import FailureInjector
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.futures import Coroutine
from repro.sim.process import RetryPolicy
from repro.spec.history import History
from repro.spec.properties import DapRecorder


@dataclass
class DeploymentSpec:
    """Parameters of an ARES deployment.

    Attributes
    ----------
    num_servers:
        Size of the initial server pool (more can be added later with
        :meth:`AresDeployment.add_servers`).
    initial_dap:
        DAP kind of the initial configuration (``"treas"`` or ``"abd"``).
    initial_config_size:
        Number of servers in the initial configuration (defaults to the whole
        pool).
    k:
        Erasure-code dimension for TREAS configurations (default ``⌈2n/3⌉``).
    delta:
        TREAS garbage-collection / concurrency parameter δ.
    num_writers, num_readers, num_reconfigurers:
        Client population.
    latency:
        Network latency model (default ``UniformLatency(1, 2)``).
    seed:
        Simulator seed.
    consensus_delay:
        Extra latency per consensus decision (the ``T(CN)`` knob).
    direct_state_transfer:
        Enable the Section 5 ARES-TREAS transfer path.
    record_dap:
        Install a :class:`~repro.spec.properties.DapRecorder` on all clients.
    retry:
        A :class:`~repro.sim.process.RetryPolicy` installed on every writer
        and reader (never on reconfigurers), with jitter seeded per process
        from ``seed``.  ``None`` -- the default -- keeps the gather path (and
        the simulator event sequence) byte-identical to builds without retry.
    gc:
        Enable configuration retirement: every reconfiguration runs the
        gc-config phase, retiring (and reclaiming server state for) the
        configurations before the new last-finalized index.  ``False`` --
        the default -- keeps executions byte-identical to builds without
        retirement.
    """

    num_servers: int = 5
    initial_dap: str = "treas"
    initial_config_size: Optional[int] = None
    k: Optional[int] = None
    delta: int = 4
    num_writers: int = 2
    num_readers: int = 2
    num_reconfigurers: int = 1
    latency: Optional[LatencyModel] = None
    seed: int = 0
    consensus_delay: float = 0.0
    direct_state_transfer: bool = False
    record_dap: bool = False
    retry: Optional["RetryPolicy"] = None
    gc: bool = False


class AresDeployment:
    """A complete, runnable ARES system."""

    def __init__(self, spec: Optional[DeploymentSpec] = None, **overrides) -> None:
        if spec is None:
            spec = DeploymentSpec(**overrides)
        elif overrides:
            raise ConfigurationError("pass either a DeploymentSpec or keyword overrides, not both")
        self.spec = spec
        self.sim = Simulator(seed=spec.seed)
        self.network = Network(self.sim, latency=spec.latency or UniformLatency(1.0, 2.0))
        self.directory = ConfigurationDirectory()
        self.history = History()
        self.dap_recorder = DapRecorder(self.sim) if spec.record_dap else None
        self.failure_injector = FailureInjector(self.network)
        self._config_counter = 0

        dap_factory = transfer_dap_state_factory if spec.direct_state_transfer else None
        self.servers: Dict[ProcessId, AresServer] = {}
        for index in range(spec.num_servers):
            pid = server_id(index)
            self.servers[pid] = AresServer(pid, self.network, self.directory,
                                           dap_state_factory=dap_factory)
        self._next_server_index = spec.num_servers

        initial_size = spec.initial_config_size or spec.num_servers
        initial_servers = [server_id(i) for i in range(initial_size)]
        self.initial_configuration = self._build_configuration(
            spec.initial_dap, initial_servers, k=spec.k, delta=spec.delta,
        )
        self.directory.register(self.initial_configuration)

        self.writers: List[AresClient] = [
            AresClient(writer_id(i), self.network, self.directory,
                       self.initial_configuration, history=self.history,
                       dap_recorder=self.dap_recorder)
            for i in range(spec.num_writers)
        ]
        self.readers: List[AresClient] = [
            AresClient(reader_id(i), self.network, self.directory,
                       self.initial_configuration, history=self.history,
                       dap_recorder=self.dap_recorder)
            for i in range(spec.num_readers)
        ]
        if spec.retry is not None:
            # Writers and readers only: reconfiguration drives consensus,
            # where blind re-broadcast under the same proposal is not a
            # safe retry unit.
            for client in [*self.writers, *self.readers]:
                client.enable_retries(spec.retry, seed=spec.seed)
        reconfigurer_class = (DirectTransferReconfigurer if spec.direct_state_transfer
                              else AresReconfigurer)
        self.reconfigurers: List[AresReconfigurer] = [
            reconfigurer_class(reconfigurer_id(i), self.network, self.directory,
                               self.initial_configuration, history=self.history,
                               dap_recorder=self.dap_recorder,
                               consensus_delay=spec.consensus_delay,
                               gc=spec.gc)
            for i in range(spec.num_reconfigurers)
        ]

    # --------------------------------------------------------- configuration
    def _build_configuration(self, dap: str, servers: Sequence[ProcessId],
                             k: Optional[int] = None, delta: Optional[int] = None,
                             cfg: Optional[ConfigId] = None) -> Configuration:
        cfg = cfg if cfg is not None else config_id(self._config_counter)
        self._config_counter += 1
        delta = self.spec.delta if delta is None else delta
        dap = dap.lower()
        if dap == "treas":
            return Configuration.treas(cfg, servers, k=k, delta=delta)
        if dap == "abd":
            return Configuration.abd(cfg, servers)
        if dap == "ldr":
            half = len(servers) // 2
            return Configuration.ldr(cfg, servers[:half], servers[half:])
        raise ConfigurationError(f"unknown DAP kind {dap!r}")

    def add_servers(self, count: int) -> List[ProcessId]:
        """Add ``count`` fresh servers to the pool and return their ids."""
        dap_factory = (transfer_dap_state_factory if self.spec.direct_state_transfer
                       else None)
        added = []
        for _ in range(count):
            pid = server_id(self._next_server_index)
            self._next_server_index += 1
            self.servers[pid] = AresServer(pid, self.network, self.directory,
                                           dap_state_factory=dap_factory)
            added.append(pid)
        return added

    def make_configuration(self, dap: str = "treas",
                           servers: Optional[Sequence[ProcessId]] = None,
                           fresh_servers: int = 0,
                           k: Optional[int] = None,
                           delta: Optional[int] = None) -> Configuration:
        """Build (and register server processes for) a candidate next configuration.

        Either pass an explicit ``servers`` list (existing pool members), or a
        number of ``fresh_servers`` to add to the pool, or both.
        """
        chosen: List[ProcessId] = list(servers) if servers else []
        if fresh_servers:
            chosen.extend(self.add_servers(fresh_servers))
        if not chosen:
            chosen = list(self.initial_configuration.servers)
        return self._build_configuration(dap, chosen, k=k, delta=delta)

    # ------------------------------------------------------------ operations
    def write(self, value: Value, writer_index: int = 0):
        """Run one ARES write to completion; returns the written tag."""
        writer = self.writers[writer_index]
        op = writer.spawn(writer.write(value), label=f"{writer.pid}:write")
        return self.sim.run_until_complete(op)

    def read(self, reader_index: int = 0) -> Value:
        """Run one ARES read to completion; returns the value."""
        reader = self.readers[reader_index]
        op = reader.spawn(reader.read(), label=f"{reader.pid}:read")
        return self.sim.run_until_complete(op)

    def reconfig(self, configuration: Configuration, reconfigurer_index: int = 0) -> Configuration:
        """Run one reconfiguration to completion; returns the installed configuration."""
        reconfigurer = self.reconfigurers[reconfigurer_index]
        op = reconfigurer.spawn(reconfigurer.reconfig(configuration),
                                label=f"{reconfigurer.pid}:reconfig")
        return self.sim.run_until_complete(op)

    # ----------------------------------------------------------- async forms
    def spawn_write(self, value: Value, writer_index: int = 0) -> Coroutine:
        """Start a write without driving the simulator."""
        writer = self.writers[writer_index]
        return writer.spawn(writer.write(value), label=f"{writer.pid}:write")

    def spawn_read(self, reader_index: int = 0) -> Coroutine:
        """Start a read without driving the simulator."""
        reader = self.readers[reader_index]
        return reader.spawn(reader.read(), label=f"{reader.pid}:read")

    def spawn_reconfig(self, configuration: Configuration,
                       reconfigurer_index: int = 0) -> Coroutine:
        """Start a reconfiguration without driving the simulator."""
        reconfigurer = self.reconfigurers[reconfigurer_index]
        return reconfigurer.spawn(reconfigurer.reconfig(configuration),
                                  label=f"{reconfigurer.pid}:reconfig")

    def run(self) -> None:
        """Drain the event queue, completing all spawned operations."""
        self.sim.run()

    # ------------------------------------------------------------ accounting
    def total_storage_data_bytes(self) -> int:
        """Object-data bytes stored across every server and configuration."""
        return sum(server.storage_data_bytes() for server in self.servers.values())

    def configs_retired(self) -> int:
        """Configurations reclaimed across the server pool (GC acks)."""
        return sum(server.configs_retired for server in self.servers.values())

    def bytes_reclaimed(self) -> int:
        """Object-data bytes reclaimed by retirement across the server pool."""
        return sum(server.bytes_reclaimed for server in self.servers.values())

    def storage_by_configuration(self) -> Dict[ConfigId, int]:
        """Object-data bytes stored per configuration (summed over servers)."""
        totals: Dict[ConfigId, int] = {}
        for server in self.servers.values():
            for cfg_id, state in server.dap_states.items():
                totals[cfg_id] = totals.get(cfg_id, 0) + state.storage_data_bytes()
        return totals

    @property
    def stats(self):
        """Network traffic statistics."""
        return self.network.stats

    @property
    def latency_model(self) -> LatencyModel:
        """The network's latency model (exposes the ``d``/``D`` bounds)."""
        return self.network.latency
