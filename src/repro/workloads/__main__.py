"""CLI for the workloads package: ``python -m repro.workloads``.

Examples::

    # one line per registered chaos scenario
    python -m repro.workloads --list-scenarios

    # the Markdown scenario catalog (what docs/SCENARIOS.md is generated from)
    python -m repro.workloads --list-scenarios --markdown

    # regenerate the committed catalog in place
    python -m repro.workloads --list-scenarios --markdown --output docs/SCENARIOS.md

Exit status: 0 on success, 2 for usage errors (e.g. ``--markdown`` without
``--list-scenarios``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.workloads.catalog import scenario_catalog_markdown, scenario_listing


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Enumerate the chaos scenario registry.")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list registered chaos scenarios")
    parser.add_argument("--markdown", action="store_true",
                        help="emit the Markdown scenario catalog "
                             "(the source of docs/SCENARIOS.md)")
    parser.add_argument("--output", default=None,
                        help="write the output to this file instead of stdout")
    args = parser.parse_args(argv)

    if not args.list_scenarios:
        parser.print_help()
        return 2
    if args.markdown:
        text = scenario_catalog_markdown()
    else:
        text = scenario_listing() + "\n"

    if args.output is not None:
        path = pathlib.Path(args.output)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
