"""Scenario catalog generation: the registry rendered as Markdown.

``docs/SCENARIOS.md`` is **generated** from the chaos scenario registry by
:func:`scenario_catalog_markdown` (exposed as ``python -m repro.workloads
--list-scenarios --markdown``).  A tier-1 test asserts the committed file
matches this module's output byte-for-byte, so the catalog can never drift
from the code: registering, renaming or re-describing a scenario requires
regenerating the file::

    PYTHONPATH=src python -m repro.workloads --list-scenarios --markdown \
        --output docs/SCENARIOS.md
"""

from __future__ import annotations

from typing import List

from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import SCENARIOS, ChaosScenario

_HEADER = """\
# Chaos scenario catalog

> **Generated file — do not edit by hand.**  Regenerate with
> `PYTHONPATH=src python -m repro.workloads --list-scenarios --markdown --output docs/SCENARIOS.md`
> (a tier-1 test asserts this file matches the registry byte-for-byte).

Every scenario is a named, seed-deterministic adversary experiment from
`repro.workloads.scenarios`: a deployment (single ARES register or sharded
multi-object store), a fault schedule, a closed-loop workload and optional
reconfiguration pressure.  `run_scenario(name, seed)` executes one and
`ChaosRunResult.verify()` asserts liveness, linearizability (per key for
store scenarios) and tag monotonicity.  All scenarios run under every seed
in CI's property battery and can be fanned out in bulk with
`python -m repro.sweep --grid "scenarios=all;seeds=0..3" --jobs 4`.
"""


def _workload_cell(workload: WorkloadSpec) -> str:
    """Compact rendering of the workload mix for the catalog table."""
    parts = [f"{workload.operations_per_writer}w/{workload.operations_per_reader}r",
             f"{workload.value_size}B"]
    if workload.think_time:
        parts.append(f"think {workload.think_time:g}")
    return ", ".join(parts)


def _keyspace_cell(workload: WorkloadSpec) -> str:
    """The keyspace column: `-` for single-register scenarios."""
    if workload.num_keys <= 0:
        return "-"
    cell = f"{workload.num_keys} keys {workload.key_distribution}"
    if workload.key_distribution == "zipf":
        cell += f"(s={workload.zipf_s:g})"
    if workload.batch_size > 1:
        cell += f", batch {workload.batch_size}"
    return cell


def _reconfig_cell(scenario: ChaosScenario) -> str:
    if not scenario.num_reconfigs:
        return "-"
    daps = "/".join(scenario.reconfig_daps) if scenario.reconfig_daps else scenario.dap
    return f"{scenario.num_reconfigs}x {daps}"


def scenario_catalog_markdown() -> str:
    """Render the whole registry as the committed ``docs/SCENARIOS.md``."""
    lines: List[str] = [_HEADER]
    lines.append(f"{len(SCENARIOS)} registered scenarios.\n")
    lines.append("| Scenario | DAP | Fault families | Workload | Keyspace | Reconfigs | Description |")
    lines.append("| --- | --- | --- | --- | --- | --- | --- |")
    for scenario in SCENARIOS.values():
        lines.append(
            f"| `{scenario.name}` "
            f"| {scenario.dap} "
            f"| {', '.join(scenario.faults)} "
            f"| {_workload_cell(scenario.workload)} "
            f"| {_keyspace_cell(scenario.workload)} "
            f"| {_reconfig_cell(scenario)} "
            f"| {scenario.description} |")
    lines.append("")
    lines.append("Columns: *Workload* is operations per writer/reader session, "
                 "value size and mean think time; *Keyspace* is the store "
                 "keyspace (size, key distribution, batch width) or `-` for "
                 "single-register scenarios; *Reconfigs* is the count and DAP "
                 "chain of concurrent reconfigurations.")
    lines.append("")
    return "\n".join(lines)


def scenario_listing() -> str:
    """Plain-text one-line-per-scenario listing (the CLI's default output)."""
    width = max(len(name) for name in SCENARIOS) if SCENARIOS else 0
    return "\n".join(f"{name:<{width}}  {scenario.description}"
                     for name, scenario in SCENARIOS.items())
