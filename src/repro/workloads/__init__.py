"""Workload generation.

Closed-loop client drivers and canned scenarios used by the integration
tests, the examples and the benchmark harness.  A workload drives the
reader/writer (and optionally reconfigurer) clients of a deployment with a
configurable operation mix, value size and think time, all drawn from the
deployment's seeded simulator so runs are reproducible.
"""

from repro.workloads.generator import WorkloadSpec, ClosedLoopDriver, WorkloadResult
from repro.workloads.scenarios import (
    read_heavy_scenario,
    write_heavy_scenario,
    mixed_scenario,
    reconfiguration_storm,
)

__all__ = [
    "WorkloadSpec",
    "ClosedLoopDriver",
    "WorkloadResult",
    "read_heavy_scenario",
    "write_heavy_scenario",
    "mixed_scenario",
    "reconfiguration_storm",
]
