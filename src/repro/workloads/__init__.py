"""Workload generation and the chaos scenario registry.

Closed-loop client drivers and canned scenarios used by the integration
tests, the examples and the benchmark harness.  A workload drives the
reader/writer (and optionally reconfigurer) clients of a deployment with a
configurable operation mix, value size and think time; keyed workloads
additionally sample object keys from a uniform or hot-key Zipf
:class:`~repro.workloads.generator.KeyspaceSampler` to drive sharded store
deployments.  All randomness comes from seeded streams so runs are
reproducible.

The chaos scenario registry (:mod:`repro.workloads.scenarios`) names
seed-deterministic adversary experiments; ``python -m repro.workloads
--list-scenarios`` enumerates them and ``--markdown`` emits the scenario
catalog committed at ``docs/SCENARIOS.md``.
"""

from repro.workloads.generator import (
    ClosedLoopDriver,
    KeyspaceSampler,
    WorkloadResult,
    WorkloadSpec,
)
from repro.workloads.scenarios import (
    mixed_scenario,
    read_heavy_scenario,
    reconfiguration_storm,
    run_scenario,
    scenario_names,
    write_heavy_scenario,
)

__all__ = [
    "WorkloadSpec",
    "ClosedLoopDriver",
    "KeyspaceSampler",
    "WorkloadResult",
    "read_heavy_scenario",
    "write_heavy_scenario",
    "mixed_scenario",
    "reconfiguration_storm",
    "run_scenario",
    "scenario_names",
]
