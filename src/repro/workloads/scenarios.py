"""Canned workload scenarios.

Each scenario builds a deployment, drives it with a specific mix and returns
``(deployment, WorkloadResult)``.  The scenarios correspond to the workload
families the ICDCS'19 evaluation reports on: read-heavy and write-heavy file
access patterns, balanced mixes, and client traffic concurrent with a storm
of reconfigurations.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.workloads.generator import ClosedLoopDriver, WorkloadResult, WorkloadSpec


def read_heavy_scenario(value_size: int = 1024, num_readers: int = 4,
                        seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Many readers, a single writer: the archival / content-serving pattern."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=4, num_writers=1,
        num_readers=num_readers, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=6,
                        value_size=value_size)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def write_heavy_scenario(value_size: int = 1024, num_writers: int = 4,
                         seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Many writers, a single reader: the telemetry-ingestion pattern."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=2 * num_writers, num_writers=num_writers,
        num_readers=1, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=6, operations_per_reader=3,
                        value_size=value_size)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def mixed_scenario(value_size: int = 512, clients_per_role: int = 3,
                   seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Balanced readers and writers."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=2 * clients_per_role,
        num_writers=clients_per_role, num_readers=clients_per_role,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                        value_size=value_size, think_time=1.0)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def reconfiguration_storm(num_reconfigs: int = 3, value_size: int = 512,
                          direct_state_transfer: bool = False,
                          seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Client traffic concurrent with a sequence of reconfigurations.

    Reconfigurations alternate between TREAS and ABD configurations over
    fresh server sets, exercising the DAP-adaptivity of ARES (Remark 22)
    while reads and writes are in flight.
    """
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="treas", delta=8, num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        direct_state_transfer=direct_state_transfer,
    ))
    reconfigurer = deployment.reconfigurers[0]

    def reconfig_session():
        for index in range(num_reconfigs):
            dap = "treas" if index % 2 == 0 else "abd"
            fresh = 5 if dap == "treas" else 3
            configuration = deployment.make_configuration(dap=dap, fresh_servers=fresh)
            yield from reconfigurer.reconfig(configuration)
        return None

    reconfigurer.spawn(reconfig_session(), label="reconfig-storm")
    spec = WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                        value_size=value_size, think_time=2.0)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result
