"""Canned workload scenarios and the chaos scenario registry.

The first half of this module keeps the workload families the ICDCS'19
evaluation reports on (read-heavy, write-heavy, balanced, reconfiguration
storm); each builds a deployment, drives it and returns ``(deployment,
WorkloadResult)``.

The second half is the **chaos scenario registry**: named, seed-deterministic
cross-products of DAP (ABD / LDR / TREAS) x fault schedule x reconfiguration
cadence.  Every registered scenario stays inside the paper's fault-tolerance
envelope (at most ``f`` servers of any configuration lost at a time), so
both safety *and* liveness are asserted: ``run_scenario(name, seed)``
returns a :class:`ChaosRunResult` whose :meth:`~ChaosRunResult.verify`
checks the recorded history against the linearizability spec.  Use
:func:`scenario_names` / :func:`get_scenario` to enumerate, and
:func:`register_scenario` to add new ones (future DAPs and policies get the
whole adversary suite for free).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (
    CpuPressure,
    Crash,
    DiskFull,
    Drop,
    Duplicate,
    Isolate,
    LatencySpike,
    MemoryPressure,
    Reconfigure,
    Reorder,
    Restart,
    SlowServer,
)
from repro.chaos.schedule import At, During, Schedule, Stochastic
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.obs import slo
from repro.obs.registry import install_metrics
from repro.obs.report import MetricsReport
from repro.sim.process import RetryPolicy
from repro.store import ShardSpec, StoreDeployment, StoreSpec
from repro.workloads.generator import ClosedLoopDriver, WorkloadResult, WorkloadSpec


def read_heavy_scenario(value_size: int = 1024, num_readers: int = 4,
                        seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Many readers, a single writer: the archival / content-serving pattern."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=4, num_writers=1,
        num_readers=num_readers, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=6,
                        value_size=value_size)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def write_heavy_scenario(value_size: int = 1024, num_writers: int = 4,
                         seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Many writers, a single reader: the telemetry-ingestion pattern."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=2 * num_writers, num_writers=num_writers,
        num_readers=1, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=6, operations_per_reader=3,
                        value_size=value_size)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def mixed_scenario(value_size: int = 512, clients_per_role: int = 3,
                   seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Balanced readers and writers."""
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=2 * clients_per_role,
        num_writers=clients_per_role, num_readers=clients_per_role,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
    ))
    spec = WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                        value_size=value_size, think_time=1.0)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


def reconfiguration_storm(num_reconfigs: int = 3, value_size: int = 512,
                          direct_state_transfer: bool = False,
                          seed: int = 0) -> Tuple[AresDeployment, WorkloadResult]:
    """Client traffic concurrent with a sequence of reconfigurations.

    Reconfigurations alternate between TREAS and ABD configurations over
    fresh server sets, exercising the DAP-adaptivity of ARES (Remark 22)
    while reads and writes are in flight.
    """
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="treas", delta=8, num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        direct_state_transfer=direct_state_transfer,
    ))
    reconfigurer = deployment.reconfigurers[0]

    def reconfig_session():
        for index in range(num_reconfigs):
            dap = "treas" if index % 2 == 0 else "abd"
            fresh = 5 if dap == "treas" else 3
            configuration = deployment.make_configuration(dap=dap, fresh_servers=fresh)
            yield from reconfigurer.reconfig(configuration)
        return None

    reconfigurer.spawn(reconfig_session(), label="reconfig-storm")
    spec = WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                        value_size=value_size, think_time=2.0)
    result = ClosedLoopDriver(deployment, spec).run()
    return deployment, result


# ======================================================================
# Chaos scenario registry
# ======================================================================

@dataclass(frozen=True)
class ChaosScenario:
    """A named, reproducible adversary experiment.

    Attributes
    ----------
    name / description:
        Registry key and one-line summary (shown by ``scenario_names`` and
        the ``chaos_storm`` example).
    dap:
        DAP kind of the initial configuration (``abd`` / ``ldr`` / ``treas``).
    faults:
        Tags of the fault families exercised (``crash``, ``partition``,
        ``reconfig``, ``gray``, ``drop``, ``duplicate``, ``reorder``,
        ``restart``) -- used for registry queries and coverage assertions.
    deployment:
        ``seed -> AresDeployment`` factory.
    schedule:
        ``deployment -> Schedule`` factory (may inspect the deployment to
        pick victims inside the fault-tolerance envelope).
    workload:
        The closed-loop client mix driven concurrently with the faults.
    num_reconfigs / reconfig_cadence / reconfig_daps / fresh_servers:
        Reconfiguration pressure: how many reconfigurations, the pause
        before each, the DAP kinds to cycle through (empty = scenario DAP)
        and how many fresh servers each new configuration recruits.
    fault_rate / background:
        Continuous background (gray) failure.  ``background`` is a
        ``(deployment, scenario) -> Schedule`` factory whose entries gate
        themselves on ``scenario.fault_rate`` (typically
        :class:`~repro.chaos.schedule.Stochastic` entries); the runner arms
        it on top of the scripted ``schedule``.  ``fault_rate`` is a plain
        scenario field, which is what lets the sweep engine use it as a
        grid axis and :class:`~repro.sweep.adaptive.AdaptiveCampaign`
        bisect each DAP's maximum survivable rate.  At the default 0.0 a
        stochastic background arms nothing, so the run is byte-identical
        to the background-free scenario.
    gc:
        Enable configuration retirement on the deployment's reconfigurers:
        every reconfiguration runs the gc-config phase, retiring superseded
        configurations (server state reclaimed behind tombstone redirects)
        and pruning the local sequences.  A plain scenario field so the
        sweep engine can use it as a grid axis; at the default ``False``
        the run is byte-identical to the retirement-free protocol, which
        the golden-signature suite pins.
    slos:
        Quantitative service-level assertions (:class:`~repro.obs.slo.SLO`)
        evaluated against the run's :class:`~repro.obs.report.MetricsReport`
        when the scenario runs with ``metrics=True`` -- e.g. "p99 read
        latency recovers within a few virtual seconds of heal" or "the
        reconfiguration pipeline never stalls".  SLO verdicts are reported
        alongside (never folded into) the correctness verdict.
    """

    name: str
    description: str
    dap: str
    faults: Tuple[str, ...]
    deployment: Callable[[int], AresDeployment]
    schedule: Callable[[AresDeployment], Schedule]
    workload: WorkloadSpec
    num_reconfigs: int = 0
    reconfig_cadence: float = 8.0
    reconfig_daps: Tuple[str, ...] = ()
    fresh_servers: int = 0
    fault_rate: float = 0.0
    background: Optional[Callable[[AresDeployment, "ChaosScenario"], Schedule]] = None
    gc: bool = False
    slos: Tuple[slo.SLO, ...] = ()


@dataclass
class ChaosRunResult:
    """Everything a test or report needs from one chaos run."""

    scenario: ChaosScenario
    seed: int
    deployment: AresDeployment
    workload: WorkloadResult
    engine: ChaosEngine
    schedule: Schedule
    reconfig_errors: List[str] = dataclass_field(default_factory=list)
    #: cProfile rendering of the run, when ``run_scenario(..., profile=True)``.
    profile_summary: Optional[str] = None
    #: The run's exported metrics, when ``run_scenario(..., metrics=True)``.
    metrics: Optional[MetricsReport] = None

    @property
    def history(self):
        """The recorded operation history."""
        return self.deployment.history

    @property
    def chaos_log(self) -> List[Tuple[float, str]]:
        """The engine's timestamped fault log."""
        return list(self.engine.log)

    def signature(self) -> tuple:
        """Determinism witness: history fingerprint + chaos log.

        Uses the engine's :meth:`~repro.chaos.engine.ChaosEngine.log_signature`,
        which is byte-identical to the full log until the bounded ring
        overflows (and then carries an exact elision marker).
        """
        return (self.history.signature(), self.engine.log_signature())

    def signature_hash(self) -> str:
        """SHA-256 hex digest of ``repr(self.signature())``.

        Works in both modes and produces identical bytes: the batch path
        streams the repr through the hash without materializing the entries
        list, the streaming path reads the fold accumulator (finalizing the
        stream).  This is what the sweep engine and the golden determinism
        fixtures store.
        """
        stream = self.history.stream
        if stream is not None:
            stream.finalize()
            return stream.result_signature_hash(self.engine.log_signature())
        import hashlib

        return hashlib.sha256(repr(self.signature()).encode()).hexdigest()

    def check(self) -> Tuple[Optional[str], str]:
        """Run every property check without raising.

        Returns ``(failure, checker_method)``: ``failure`` is ``None`` when
        liveness, linearizability and tag monotonicity all hold, else the
        first violation's message; ``checker_method`` reports which
        linearizability algorithm decided (``""`` if never reached).  This
        is the single source of truth for scenario verification --
        :meth:`verify` raises on it and the sweep workers record it.

        Keyed (store) histories are checked **per key**: each object is an
        independent atomic register, so linearizability and tag
        monotonicity are asserted on every per-key sub-history (the
        checker-method label becomes e.g. ``per-key(fast)``).
        """
        from repro.spec.linearizability import (check_linearizability,
                                                check_linearizability_per_key,
                                                check_tag_monotonicity,
                                                check_tag_monotonicity_per_key)

        errors = list(self.workload.errors) + list(self.reconfig_errors)
        if errors:
            return (f"scenario {self.scenario.name!r} (seed {self.seed}) lost "
                    f"liveness: {errors}\nchaos log:\n"
                    f"{self.engine.describe_log()}"), ""
        stream = self.history.stream
        if stream is not None:
            stream.finalize()
            method = stream.method()
            lin_failure = stream.linearizability_failure()
            if lin_failure is not None:
                return (f"scenario {self.scenario.name!r} (seed {self.seed}) "
                        f"violated atomicity: {lin_failure}\nchaos log:\n"
                        f"{self.engine.describe_log()}"), method
            tag_violation = stream.tag_failure()
            if tag_violation is not None:
                return (f"scenario {self.scenario.name!r} (seed {self.seed}) "
                        f"violated tag monotonicity: {tag_violation}"), method
            return None, method
        keyed = self.history.is_keyed()
        if keyed:
            result = check_linearizability_per_key(self.history)
        else:
            result = check_linearizability(self.history)
        if not result.ok:
            return (f"scenario {self.scenario.name!r} (seed {self.seed}) violated "
                    f"atomicity: {result.reason}\nchaos log:\n"
                    f"{self.engine.describe_log()}"), result.method
        if keyed:
            monotonic = check_tag_monotonicity_per_key(self.history)
        else:
            monotonic = check_tag_monotonicity(self.history)
        if monotonic is not None:
            return (f"scenario {self.scenario.name!r} (seed {self.seed}) violated "
                    f"tag monotonicity: {monotonic}"), result.method
        return None, result.method

    def verify(self) -> None:
        """Assert liveness (no stalled/errored session) and atomicity.

        Raises ``AssertionError`` with a descriptive message on violation.
        """
        failure, _ = self.check()
        assert failure is None, failure

    def check_slos(self) -> List[str]:
        """Evaluate the scenario's SLO assertions against this run's metrics.

        Returns one failure message per violated SLO (empty list: all SLOs
        hold).  SLO verdicts are deliberately separate from :meth:`check` --
        a run can be perfectly linearizable yet miss its recovery SLO, and
        the sweep records both verdicts side by side.  Raises
        :class:`ValueError` when the run was executed without
        ``metrics=True`` (there is no report to evaluate against).
        """
        if self.metrics is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} ran without metrics=True; "
                "no MetricsReport to evaluate SLOs against")
        failures = []
        for assertion in self.scenario.slos:
            message = assertion.evaluate(self.metrics)
            if message is not None:
                failures.append(message)
        return failures


#: The global registry of named chaos scenarios.
SCENARIOS: Dict[str, ChaosScenario] = {}


def register_scenario(scenario: ChaosScenario) -> ChaosScenario:
    """Add ``scenario`` to the registry (its name must be unused)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"chaos scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; registered: {', '.join(SCENARIOS)}"
        ) from None


def run_scenario(name: str, seed: int = 0, profile: bool = False,
                 streaming: bool = False,
                 window_limit: Optional[int] = None,
                 metrics: bool = False) -> ChaosRunResult:
    """Execute one registered scenario end-to-end, deterministically.

    The run seed fans out into three independent streams -- simulator
    (latencies), chaos engine (drop/duplicate coin flips, jitter) and
    workload (think times) -- so two calls with equal ``(name, seed)``
    produce byte-identical histories and chaos logs.

    With ``profile=True`` the simulation loop runs under :mod:`cProfile`;
    a cumulative-time summary is printed and kept on the result's
    :attr:`~ChaosRunResult.profile_summary`.  Profiling slows the run but
    does not perturb it (the execution stays byte-identical).

    With ``streaming=True`` the deployment's history runs in bounded
    open-window mode (see
    :meth:`~repro.spec.history.History.enable_streaming`): operations are
    verified online and folded away as their windows close, so memory stays
    O(open window) -- the execution itself is byte-identical, which the
    differential streaming tests pin via :meth:`ChaosRunResult.signature_hash`.

    With ``metrics=True`` a :class:`~repro.obs.registry.MetricsRegistry` is
    wired through the deployment, chaos engine and (if streaming) history
    stream; the run's virtual-time series are exported on the result's
    :attr:`~ChaosRunResult.metrics`.  Metrics never schedule events or touch
    any seeded RNG stream, so the execution stays byte-identical -- the
    differential metrics tests pin this against the golden signatures.
    """
    return run_scenario_instance(get_scenario(name), seed=seed, profile=profile,
                                 streaming=streaming, window_limit=window_limit,
                                 metrics=metrics)


def run_scenario_instance(scenario: ChaosScenario, seed: int = 0,
                          profile: bool = False, streaming: bool = False,
                          window_limit: Optional[int] = None,
                          metrics: bool = False) -> ChaosRunResult:
    """Execute a :class:`ChaosScenario` object (registered or derived).

    This is :func:`run_scenario` minus the registry lookup; the sweep engine
    uses it to run parameter-grid variants (``dataclasses.replace`` of a
    registered scenario with an overridden workload).  All three RNG streams
    are keyed by ``scenario.name``, so for registered scenarios the two entry
    points are byte-identical.  ``streaming`` / ``window_limit`` switch the
    fresh deployment's history into bounded open-window mode before any
    operation is recorded.
    """
    name = scenario.name
    deployment = scenario.deployment(seed)
    if scenario.gc:
        # Retirement is a reconfigurer-side switch; flipping it on the built
        # deployment (rather than through every factory) is what lets the
        # sweep engine toggle it per grid cell with dataclasses.replace.
        for reconfigurer in deployment.reconfigurers:
            reconfigurer.gc_enabled = True
    if streaming:
        deployment.history.enable_streaming(window_limit=window_limit)
    # The deployment already seeded its simulator with the bare integer;
    # derive a distinct chaos seed so fault coin flips are not the same
    # Mersenne Twister stream as the latency draws.
    engine = ChaosEngine(deployment.network, seed=f"chaos-{name}-{seed}")
    registry = None
    if metrics:
        # Clear the process-global perf caches first so the exported hit
        # rates are a pure function of this cell -- required for the
        # byte-identical checkpoint/resume guarantee (a warm worker's cache
        # state must not leak into the report).  The caches are performance
        # only; clearing them cannot change the execution.
        from repro.common.values import payload_cache_clear
        from repro.erasure.rs import decode_cache_clear

        payload_cache_clear()
        decode_cache_clear()
        registry = install_metrics(deployment, engine=engine,
                                   stream=deployment.history.stream)
    schedule = scenario.schedule(deployment)
    engine.inject(schedule)
    if scenario.background is not None:
        # Continuous gray failure on top of the scripted incidents; the
        # entries gate themselves on scenario.fault_rate (a Stochastic
        # background at rate 0.0 arms nothing at all).
        engine.inject(scenario.background(deployment, scenario))

    reconfig_session = None
    if scenario.num_reconfigs:
        reconfig_session = _spawn_reconfig_session(deployment, scenario)

    driver = ClosedLoopDriver(deployment, scenario.workload,
                              rng=random.Random(f"workload-{name}-{seed}"))
    profile_summary = None
    if profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        workload = driver.run()
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
        profile_summary = stream.getvalue()
        print(f"--- cProfile of run_scenario({name!r}, seed={seed}) ---")
        print(profile_summary)
    else:
        workload = driver.run()
    reconfig_errors = []
    if reconfig_session is not None:
        if reconfig_session.exception() is not None:
            reconfig_errors.append(repr(reconfig_session.exception()))
        elif not reconfig_session.done():
            reconfig_errors.append("reconfiguration session never completed (stalled)")
    # Schedule-fired operations (Reconfigure migrations) are held to the
    # same liveness standard as the workload sessions.
    reconfig_errors.extend(engine.operation_errors())
    report = None
    if registry is not None:
        report = _collect_final_metrics(registry, deployment, engine)
    return ChaosRunResult(scenario=scenario, seed=seed, deployment=deployment,
                          workload=workload, engine=engine, schedule=schedule,
                          reconfig_errors=reconfig_errors,
                          profile_summary=profile_summary, metrics=report)


def _collect_final_metrics(registry, deployment, engine) -> MetricsReport:
    """End-of-run collection: shard skew, cache hit rates, gate triggers.

    These are whole-run facts that live outside the hot paths (per-shard
    stored bytes, the interning/decode cache counters, stochastic gate
    trigger totals, governor sheds), folded into the report just before it
    freezes.  All reads are of public state; nothing here can perturb the
    already-finished simulation.
    """
    from repro.common.values import payload_cache_info
    from repro.erasure.rs import decode_cache_info

    triggers = sum(gate.triggers for gate in engine.gates)
    if triggers:
        registry.inc("gate_triggers", triggers)
    shed = sum(server.governor.shed for server in deployment.servers.values()
               if server.governor is not None)
    if shed:
        registry.inc("governor_shed", shed)
    if getattr(deployment, "keyed", False):
        by_shard = deployment.storage_by_shard()
        for index, stored in sorted(by_shard.items()):
            registry.set_gauge(f"shard_bytes:{index}", float(stored))
        sizes = list(by_shard.values())
        mean_size = (sum(sizes) / len(sizes)) if sizes else 0.0
        registry.set_gauge("shard_skew",
                           (max(sizes) / mean_size) if mean_size else 0.0)
    extra = {
        "sim": deployment.sim.metrics_snapshot(),
        "payload_cache": payload_cache_info(),
        "decode_cache": decode_cache_info(),
        "network": {
            "sent": deployment.network.messages_sent,
            "delivered": deployment.network.messages_delivered,
            "dropped": deployment.network.messages_dropped,
            "duplicated": deployment.network.messages_duplicated,
        },
    }
    return registry.report(extra=extra)


def _spawn_reconfig_session(deployment, scenario: ChaosScenario):
    """Start the scenario's reconfiguration pressure as a client coroutine.

    Single-register deployments reconfigure the one ARES object; keyed
    (store) deployments instead run *shard migrations* -- each round
    migrates shard ``index % num_shards`` onto ``fresh_servers`` new
    servers (or flips its DAP in place when ``fresh_servers`` is 0),
    cycling through ``reconfig_daps``.  The cadence and round count are
    plain scenario fields, which is what lets the sweep engine use the
    reconfiguration *rate* as a grid axis.
    """
    reconfigurer = deployment.reconfigurers[0]
    daps = scenario.reconfig_daps or (scenario.dap,)

    if getattr(deployment, "keyed", False):
        num_shards = deployment.shard_map.num_shards

        def session():
            for index in range(scenario.num_reconfigs):
                yield reconfigurer.sleep(scenario.reconfig_cadence)
                shard_index = index % num_shards
                dap = daps[index % len(daps)] if scenario.reconfig_daps else None
                servers = (deployment.add_servers(scenario.fresh_servers)
                           if scenario.fresh_servers else None)
                yield from reconfigurer.migrate_shard(shard_index, dap=dap,
                                                      servers=servers)
            return None

        return reconfigurer.spawn(session(), label="chaos-reconfig-session")

    def session():
        for index in range(scenario.num_reconfigs):
            yield reconfigurer.sleep(scenario.reconfig_cadence)
            dap = daps[index % len(daps)]
            configuration = deployment.make_configuration(
                dap=dap, fresh_servers=scenario.fresh_servers)
            yield from reconfigurer.reconfig(configuration)
        return None

    return reconfigurer.spawn(session(), label="chaos-reconfig-session")


# ---------------------------------------------------------------- factories
def _abd_deployment(seed: int) -> AresDeployment:
    """ABD over 5 servers: majority quorums, crash tolerance f = 2."""
    return AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd", num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed))


def _treas_deployment(seed: int) -> AresDeployment:
    """TREAS [6, 4]: quorum ceil((n+k)/2) = 5, crash tolerance f = 1."""
    return AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", k=4, delta=8, num_writers=2,
        num_readers=2, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed))


def _ldr_deployment(seed: int) -> AresDeployment:
    """LDR over 6 servers (3 directories + 3 replicas): directory majority 2, replica f = 1."""
    return AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="ldr", num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed))


_WORKLOAD = WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                         value_size=256, think_time=2.0)


# ----------------------------------------------------------- the registry
# Victim choices below stay inside each configuration's tolerance envelope:
# ABD-5 tolerates 2 crashed/isolated servers, TREAS [6, 4] tolerates 1, and
# LDR 3+3 tolerates 1 directory plus 1 replica.

register_scenario(ChaosScenario(
    name="abd_crash_minority",
    description="ABD-5 loses a 2-server minority mid-traffic (crash-stop)",
    dap="abd", faults=("crash",),
    deployment=_abd_deployment,
    schedule=lambda d: Schedule([At(8, Crash("s3")), At(18, Crash("s4"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="abd_partition_minority",
    description="ABD-5 with a 2-server island partitioned away, then healed",
    dap="abd", faults=("partition",),
    deployment=_abd_deployment,
    schedule=lambda d: Schedule([During(6, 35, Isolate("s3", "s4"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="abd_reconfig_crash",
    description="ABD reconfigures onto fresh servers while an old server crashes",
    dap="abd", faults=("reconfig", "crash"),
    deployment=_abd_deployment,
    schedule=lambda d: Schedule([At(14, Crash("s4"))]),
    workload=_WORKLOAD,
    num_reconfigs=2, reconfig_cadence=6.0, fresh_servers=5,
    # Calibrated at seeds 0..4 (worst reconfig 25.4s, zero NACKs) with
    # ~1.6x headroom; see docs/OBSERVABILITY.md for the recipe.
    slos=(slo.peak("reconfig_duration").within(40.0),
          slo.rate("nacks").below(0.0)),
))

register_scenario(ChaosScenario(
    name="abd_packet_chaos",
    description="ABD under lossy (one server), duplicating, reordering links",
    dap="abd", faults=("drop", "duplicate", "reorder"),
    deployment=_abd_deployment,
    schedule=lambda d: Schedule([
        During(4, 45, Drop(0.4, dst=("s4",)), Duplicate(0.25), Reorder(1.5)),
    ]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="treas_crash_server",
    description="TREAS [6,4] loses its tolerated server (f = 1) mid-traffic",
    dap="treas", faults=("crash",),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([At(10, Crash("s5"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="treas_crash_restart",
    description="TREAS server crash-recovers with stable storage, then another crashes",
    dap="treas", faults=("crash", "restart"),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([
        At(8, Crash("s5")), At(24, Restart("s5")), At(34, Crash("s4")),
    ]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="treas_partition_heal",
    description="TREAS [6,4] with one server partitioned away, then healed",
    dap="treas", faults=("partition",),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([During(8, 40, Isolate("s5"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="treas_reconfig_partition",
    description="TREAS reconfiguration storm with a server isolated during the storm",
    dap="treas", faults=("reconfig", "partition"),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([During(10, 30, Isolate("s5"))]),
    workload=_WORKLOAD,
    num_reconfigs=2, reconfig_cadence=7.0, fresh_servers=6,
    # Calibrated at seeds 0..4 (worst reconfig 26.9s, zero NACKs).
    slos=(slo.peak("reconfig_duration").within(40.0),
          slo.rate("nacks").below(0.0)),
))

register_scenario(ChaosScenario(
    name="treas_gray_failure",
    description="TREAS with a limping (gray) server, global latency spike and duplication",
    dap="treas", faults=("gray", "duplicate", "reorder"),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([
        During(5, 55, SlowServer("s0", factor=4.0), LatencySpike(1.5)),
        During(5, 55, Duplicate(0.3), Reorder(2.0)),
    ]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="ldr_crash_replica",
    description="LDR loses one replica and one directory (both within tolerance)",
    dap="ldr", faults=("crash",),
    deployment=_ldr_deployment,
    schedule=lambda d: Schedule([At(9, Crash("s5")), At(22, Crash("s0"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="ldr_partition_directory",
    description="LDR with one directory server partitioned away, then healed",
    dap="ldr", faults=("partition",),
    deployment=_ldr_deployment,
    schedule=lambda d: Schedule([During(7, 36, Isolate("s2"))]),
    workload=_WORKLOAD,
))

register_scenario(ChaosScenario(
    name="ldr_reconfig_crash",
    description="LDR reconfigures onto fresh servers while an old replica crashes",
    dap="ldr", faults=("reconfig", "crash"),
    deployment=_ldr_deployment,
    schedule=lambda d: Schedule([At(16, Crash("s4"))]),
    workload=_WORKLOAD,
    num_reconfigs=2, reconfig_cadence=7.0, fresh_servers=6,
    # Calibrated at seeds 0..4 (worst reconfig 40.9s -- LDR moves object
    # data through directory quorums, so its pipeline runs the longest).
    slos=(slo.peak("reconfig_duration").within(60.0),
          slo.rate("nacks").below(0.0)),
))

register_scenario(ChaosScenario(
    name="storm_mixed_dap_chaos",
    description=("Kitchen sink: TREAS->ABD->TREAS reconfiguration chain under a "
                 "partition window, a crash, a gray server and message chaos"),
    dap="treas", faults=("reconfig", "partition", "crash", "gray", "duplicate", "reorder"),
    deployment=_treas_deployment,
    schedule=lambda d: Schedule([
        During(9, 26, Isolate("s5")),
        At(32, Crash("s4")),
        During(5, 70, SlowServer("s1", factor=3.0)),
        During(5, 70, Duplicate(0.2), Reorder(1.0)),
    ]),
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=512, think_time=2.5),
    num_reconfigs=3, reconfig_cadence=8.0, fresh_servers=6,
    reconfig_daps=("treas", "abd", "treas"),
))


# --------------------------------------------------------- store scenarios
# Sharded multi-object deployments: every operation addresses a named key,
# keys hash onto shards with per-shard DAP kinds, and verification runs per
# key (ChaosRunResult.check switches automatically on keyed histories).
# Victim choices stay inside each *shard's* tolerance envelope: an ABD-5
# shard tolerates 2 lost servers, a TREAS [6, 4] shard 1, an LDR 3+3 shard
# 1 directory plus 1 replica.

def _store_mixed_deployment(seed: int) -> StoreDeployment:
    """Three shards, one per DAP kind: ABD-5 + TREAS [6,4] + LDR 3+3."""
    return StoreDeployment(StoreSpec(
        shards=(ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="treas", num_servers=6, k=4, delta=8),
                ShardSpec(dap="ldr", num_servers=6)),
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed))


def _store_abd_deployment(seed: int) -> StoreDeployment:
    """Three uniform ABD-5 shards (each tolerates 2 crashed servers)."""
    return StoreDeployment(StoreSpec(
        shards=(ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="abd", num_servers=5)),
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed))


def _hot_shard_crashes(deployment: StoreDeployment) -> Schedule:
    """Crash two servers of the hot key's shard (ABD-5: both tolerated).

    The Zipf sampler makes ``k0`` the hottest key, so its shard carries the
    most traffic; the schedule resolves that shard through the deployment's
    shard map at arm time.
    """
    victims = deployment.shard_map.servers_for_key("k0")
    return Schedule([At(8, Crash(victims[-1])), At(20, Crash(victims[-2]))])


register_scenario(ChaosScenario(
    name="store_mixed_dap_storm",
    description=("Sharded store with ABD+TREAS+LDR shards under batched "
                 "keyed traffic, duplication/reordering and an ABD-shard crash"),
    dap="store", faults=("crash", "duplicate", "reorder"),
    deployment=_store_mixed_deployment,
    schedule=lambda d: Schedule([
        During(4, 45, Duplicate(0.25), Reorder(1.5)),
        At(12, Crash("s2")),
    ]),
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=256, think_time=2.0,
                          num_keys=12, batch_size=2),
))

register_scenario(ChaosScenario(
    name="store_hot_shard_crash",
    description=("Zipf hot-key store traffic while the hot key's shard "
                 "loses both tolerated servers"),
    dap="store", faults=("crash",),
    deployment=_store_abd_deployment,
    schedule=_hot_shard_crashes,
    workload=WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                          value_size=256, think_time=2.0,
                          num_keys=16, key_distribution="zipf", zipf_s=1.4),
))

register_scenario(ChaosScenario(
    name="store_partition_across_shards",
    description=("Sharded ABD+TREAS store with one server of every shard "
                 "partitioned away, then healed"),
    dap="store", faults=("partition",),
    deployment=lambda seed: StoreDeployment(StoreSpec(
        shards=(ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="treas", num_servers=6, k=4, delta=8)),
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed)),
    schedule=lambda d: Schedule([During(6, 36, Isolate("s4", "s10"))]),
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=256, think_time=2.0, num_keys=10),
))


def _dap_flip_store(seed: int) -> StoreDeployment:
    """Two shards: TREAS [6,4] (s0-s5) + ABD-5 (s6-s10)."""
    return StoreDeployment(StoreSpec(
        shards=(ShardSpec(dap="treas", num_servers=6, k=4, delta=8),
                ShardSpec(dap="abd", num_servers=5)),
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed))


def _dap_flip_schedule(deployment: StoreDeployment) -> Schedule:
    """Flip shard 0 TREAS->ABD in place, with a partition and a crash.

    Fault budget: the flip keeps shard 0 on its 6 servers, so before the
    flip the shard tolerates 1 crash (TREAS [6,4]) and after it 2 (ABD-6
    majority); crashing one shard-0 server at t=26 is inside both
    envelopes.  Isolating one ABD-5 shard-1 server (tolerance 2) leaves
    its quorums intact.
    """
    return Schedule([
        At(10, Reconfigure(lambda: deployment.spawn_migrate_shard(0, dap="abd"),
                           note="flip shard 0 treas->abd")),
        During(16, 34, Isolate("s10")),
        At(26, Crash("s4")),
    ])


def _rebalance_schedule(deployment: StoreDeployment) -> Schedule:
    """Move the Zipf-hot key range off its shard, then crash an old server.

    The hot range ``k0..k3`` is rebalanced onto the shard *after* ``k0``'s
    (mod the shard count) at t=10; at t=24 one server of ``k0``'s original
    ABD-5 shard crashes (tolerance 2), so stale readers that still traverse
    the old configuration keep their quorums.
    """
    source = deployment.shard_map.shard_index("k0")
    target = (source + 1) % deployment.shard_map.num_shards
    victims = deployment.shard_map.servers_for_key("k0")
    hot_range = ["k0", "k1", "k2", "k3"]
    return Schedule([
        At(10, Reconfigure(lambda: deployment.spawn_move_keys(hot_range, target),
                           note=f"rebalance hot range -> shard {target}")),
        At(24, Crash(victims[-1])),
    ])


register_scenario(ChaosScenario(
    name="store_shard_migration_storm",
    description=("Sharded ABD+TREAS+LDR store live-migrating two shards onto "
                 "fresh servers (TREAS shard flips to ABD) under packet chaos"),
    dap="store", faults=("reconfig", "duplicate", "reorder"),
    deployment=_store_mixed_deployment,
    schedule=lambda d: Schedule([During(4, 45, Duplicate(0.25), Reorder(1.5))]),
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=256, think_time=2.0, num_keys=10),
    num_reconfigs=2, reconfig_cadence=6.0, fresh_servers=6,
    reconfig_daps=("abd", "abd"),
))

register_scenario(ChaosScenario(
    name="store_dap_flip_under_chaos",
    description=("Store shard flips TREAS->ABD in place while one server of "
                 "the other shard is partitioned away and an old server crashes"),
    dap="store", faults=("reconfig", "partition", "crash"),
    deployment=_dap_flip_store,
    schedule=_dap_flip_schedule,
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=256, think_time=2.0,
                          num_keys=10, batch_size=2),
))

register_scenario(ChaosScenario(
    name="store_rebalance_hot_range",
    description=("Zipf hot-key traffic while the hot key range is rebalanced "
                 "onto another shard and a server of the old shard crashes"),
    dap="store", faults=("reconfig", "crash"),
    deployment=_store_abd_deployment,
    schedule=_rebalance_schedule,
    workload=WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                          value_size=256, think_time=2.0,
                          num_keys=16, key_distribution="zipf", zipf_s=1.4),
))


def _store_gc_crash(deployment: StoreDeployment) -> Schedule:
    """Crash one shard-0 server after its keys migrated off and were retired.

    The reconfiguration session (cadence 6.0) migrates shard 0 onto fresh
    servers first; by t=22 its old configurations are retired, so the crash
    exercises the "retired quorum partially gone" path of best-effort
    retirement *and* leaves stale clients to converge through tombstones on
    a degraded (but within ABD-5 tolerance) old slice.
    """
    victims = deployment.shard_map.servers_for_key("k0")
    return Schedule([At(22, Crash(victims[-1]))])


register_scenario(ChaosScenario(
    name="store_migration_gc",
    description=("Sharded ABD store live-migrating every shard onto fresh "
                 "servers with configuration retirement (gc) on: old-slice "
                 "state is reclaimed behind tombstones while stale clients "
                 "and a crash keep hitting the retired configurations"),
    dap="store", faults=("reconfig", "crash"),
    deployment=_store_abd_deployment,
    schedule=_store_gc_crash,
    workload=WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                          value_size=256, think_time=2.0, num_keys=10),
    num_reconfigs=3, reconfig_cadence=6.0, fresh_servers=5,
    gc=True,
))


# ------------------------------------------------- gray degradation curves
# Continuous stochastic background failure (packet loss + resource
# exhaustion on a server minority) with client retry/backoff enabled, one
# scenario per DAP.  ``fault_rate`` is the sweep axis: 0.0 arms nothing
# (byte-identical to a quiet retry-enabled run) and raising it degrades the
# run until retries exhaust -- ``python -m repro.sweep --bisect
# "fault_rate=0.0..0.5"`` maps each DAP's maximum survivable rate.  Retry
# stays on at every rate so the axis compares like with like; note that
# enabling retry changes the event sequence (per-attempt timeout timers), so
# these deployments are distinct factories rather than reusing the quiet
# ones.

#: Retry/backoff used by the gray scenarios: bounded attempts, exponential
#: backoff, seeded jitter (see RetryPolicy for the exact schedule).  The
#: generous attempt budget sharpens the degradation curve -- failure
#: probability per gather goes like q^attempts, so the pass/fail
#: transition band a fault_rate bisection straddles narrows as the budget
#: grows (empirically, 9 attempts with seeds 0..4 gives a monotone
#: frontier on all three DAPs over the 1/64-quantized rate grid).
GRAY_RETRY = RetryPolicy(attempts=9, timeout=30.0, base_delay=2.0,
                         multiplier=2.0, jitter=0.5)


def _abd_gray_deployment(seed: int) -> AresDeployment:
    """ABD-5 with retrying clients (majority quorums shrug off refusals)."""
    return AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd", num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        retry=GRAY_RETRY))


def _treas_gray_deployment(seed: int) -> AresDeployment:
    """TREAS [6, 4] with retrying clients (quorum 5-of-6: loss-sensitive)."""
    return AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", k=4, delta=8, num_writers=2,
        num_readers=2, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=seed, retry=GRAY_RETRY))


def _ldr_gray_deployment(seed: int) -> AresDeployment:
    """LDR 3+3 with retrying clients."""
    return AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="ldr", num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        retry=GRAY_RETRY))


def _gray_background(*resource_faults):
    """Background factory: gated packet loss plus gated resource pressure.

    Every entry is :class:`~repro.chaos.schedule.Stochastic` at the
    scenario's ``fault_rate``: per-message Bernoulli packet loss across the
    whole fleet, and per-admission resource refusals on a server minority.
    The windows outlast any plausible run length, so the entire execution
    sits under continuous background failure.
    """

    def background(deployment, scenario):
        rate = scenario.fault_rate
        return Schedule([
            Stochastic(2, 10_000, Drop(1.0), rate=rate),
            Stochastic(4, 10_000, *resource_faults, rate=rate),
        ])

    return background


register_scenario(ChaosScenario(
    name="abd_gray_degradation",
    description=("ABD-5 under continuous stochastic packet loss, a disk-full "
                 "server and a CPU-pressured server, with client retry/backoff"),
    dap="abd", faults=("gray", "drop", "resource"),
    deployment=_abd_gray_deployment,
    schedule=lambda d: Schedule([At(30, Crash("s2"))]),
    workload=_WORKLOAD,
    fault_rate=0.02,
    background=_gray_background(DiskFull("s4"),
                                CpuPressure("s3", factor=3.0)),
    # The crash never heals, so the read-latency bound covers the whole
    # run (calibrated at seeds 0..4, worst window p99 14.7s).  The NACK
    # rate bound pins the governor + retry path: resource refusals must
    # stay rare even under continuous background pressure.
    slos=(slo.p99("read_latency").within(25.0),
          slo.rate("nacks").below(0.01)),
))

register_scenario(ChaosScenario(
    name="treas_gray_degradation",
    description=("TREAS [6,4] under continuous stochastic packet loss and a "
                 "disk-full, CPU-pressured server, with client retry/backoff"),
    dap="treas", faults=("gray", "drop", "resource"),
    deployment=_treas_gray_deployment,
    schedule=lambda d: Schedule([During(10, 26, SlowServer("s0", factor=3.0))]),
    workload=_WORKLOAD,
    fault_rate=0.02,
    background=_gray_background(DiskFull("s5"),
                                CpuPressure("s5", factor=3.0)),
    # Recovery SLO: p99 read latency settles within 5 virtual seconds of
    # the scripted heal at t=26 (calibrated at seeds 0..4, worst window
    # p99 after heal 44.9s -- retried operations straddling the fault
    # window land in post-heal windows, hence the headroom).
    slos=(slo.p99("read_latency", after="heal", grace=5.0).within(60.0),
          slo.rate("nacks").below(0.01)),
))

register_scenario(ChaosScenario(
    name="ldr_gray_degradation",
    description=("LDR 3+3 under continuous stochastic packet loss, a "
                 "memory-bounded replica and a CPU-pressured directory, with "
                 "client retry/backoff"),
    dap="ldr", faults=("gray", "drop", "resource"),
    deployment=_ldr_gray_deployment,
    schedule=lambda d: Schedule([During(12, 28, LatencySpike(1.5))]),
    workload=_WORKLOAD,
    fault_rate=0.02,
    background=_gray_background(MemoryPressure(4096, "s5"),
                                CpuPressure("s2", factor=3.0)),
    # Recovery SLO: p99 read latency settles within 5 virtual seconds of
    # the scripted heal at t=28 (calibrated at seeds 0..4, worst window
    # p99 after heal 54.2s).  Removing the heal entry makes this SLO fail
    # -- the negative-control test pins that.
    slos=(slo.p99("read_latency", after="heal", grace=5.0).within(75.0),
          slo.rate("nacks").below(0.01)),
))
