"""Closed-loop workload driver.

Each participating client runs a *session*: a loop of operations separated by
an optional think time.  Writers issue writes of uniquely-labelled values of
the configured size; readers issue reads.  The driver works against both
:class:`~repro.registers.static.StaticRegisterDeployment` and
:class:`~repro.core.deployment.AresDeployment` because both expose clients
with ``read()`` / ``write(value)`` coroutines and a shared history.

Keyspaces: when the workload names a keyspace (``num_keys > 0``) and the
deployment is keyed (a :class:`~repro.store.deployment.StoreDeployment`),
every operation first samples an object key from a
:class:`KeyspaceSampler` -- uniform or hot-key Zipf -- and sessions call the
keyed client surface (``write(key, value)`` / ``read(key)``; batched
``multi_put`` / ``multi_get`` when ``batch_size > 1``).  Key sampling draws
from the workload RNG, so keyed scenarios stay byte-for-byte reproducible.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.values import Value
from repro.spec.history import History, OperationType


class KeyspaceSampler:
    """Deterministic sampler over the keyspace ``k0 .. k<num_keys-1>``.

    Parameters
    ----------
    num_keys:
        Size of the keyspace.
    distribution:
        ``"uniform"`` -- every key equally likely; ``"zipf"`` -- key ``k<i>``
        drawn with probability proportional to ``1 / (i + 1) ** zipf_s``, so
        low-indexed keys are hot (``k0`` hottest).  Zipf keyspaces create
        hot *shards* through the store's hash placement, which is what the
        hot-shard chaos scenarios stress.
    zipf_s:
        The Zipf skew exponent (larger = more skewed).
    """

    DISTRIBUTIONS = ("uniform", "zipf")

    def __init__(self, num_keys: int, distribution: str = "uniform",
                 zipf_s: float = 1.2) -> None:
        if num_keys <= 0:
            raise ValueError("a keyspace needs at least one key")
        if distribution not in self.DISTRIBUTIONS:
            raise ValueError(f"unknown key distribution {distribution!r}; "
                             f"supported: {', '.join(self.DISTRIBUTIONS)}")
        self.num_keys = num_keys
        self.distribution = distribution
        self.zipf_s = zipf_s
        self._cumulative: Optional[List[float]] = None
        if distribution == "zipf":
            total = 0.0
            cumulative = []
            for rank in range(num_keys):
                total += 1.0 / (rank + 1) ** zipf_s
                cumulative.append(total)
            self._cumulative = cumulative

    @staticmethod
    def key_name(index: int) -> str:
        """The conventional name of key ``index`` (``k<index>``)."""
        return f"k{index}"

    def sample_index(self, rng: random.Random) -> int:
        """Draw one key index from the distribution using ``rng``."""
        if self._cumulative is None:
            return rng.randrange(self.num_keys)
        point = rng.random() * self._cumulative[-1]
        return bisect_left(self._cumulative, point)

    def sample(self, rng: random.Random) -> str:
        """Draw one key name from the distribution using ``rng``."""
        return self.key_name(self.sample_index(rng))

    def sample_batch(self, rng: random.Random, count: int) -> List[str]:
        """Draw ``count`` *distinct* keys (for ``multi_get``/``multi_put``).

        Rejection-samples from the distribution; if the keyspace is smaller
        than ``count`` (or skew starves the tail), the batch is completed
        deterministically with the lowest unused indices, so batches always
        have exactly ``min(count, num_keys)`` keys and sampling terminates.
        """
        count = min(count, self.num_keys)
        chosen: List[str] = []
        seen = set()
        for _ in range(8 * count):
            if len(chosen) == count:
                return chosen
            index = self.sample_index(rng)
            if index not in seen:
                seen.add(index)
                chosen.append(self.key_name(index))
        for index in range(self.num_keys):
            if len(chosen) == count:
                break
            if index not in seen:
                seen.add(index)
                chosen.append(self.key_name(index))
        return chosen


@dataclass
class WorkloadSpec:
    """Parameters of a closed-loop workload.

    Attributes
    ----------
    operations_per_writer / operations_per_reader:
        Number of operations each writer/reader session issues.
    value_size:
        Size in bytes of every written value.
    think_time:
        Mean think time between consecutive operations of one session (0
        means back-to-back operations); the actual delay is exponential with
        this mean.
    seed:
        When set, workload randomness (think times) is drawn from a
        dedicated ``random.Random(seed)`` instead of the simulator RNG.
        Decoupling the two streams makes chaos scenarios reproducible
        byte-for-byte: armed faults and latency draws cannot shift the
        workload's arrival pattern and vice versa.  ``None`` keeps the
        historical behaviour of sharing the simulator RNG.
    num_keys:
        Size of the keyspace (``0`` = single-register workload, the
        historical behaviour).  Requires a keyed (store) deployment.
    key_distribution / zipf_s:
        How operations pick keys: ``"uniform"`` or hot-key ``"zipf"`` with
        skew ``zipf_s`` (see :class:`KeyspaceSampler`).
    batch_size:
        When ``> 1`` on a keyed workload, each session step issues one
        pipelined ``multi_put``/``multi_get`` over this many distinct keys
        instead of a single-key operation.
    max_events:
        Simulator event budget for the run (``None`` = the simulator's
        default livelock guard).  Scale benchmarks pushing 10^6+ operations
        need ~50 events per operation, well past the default cap.
    """

    operations_per_writer: int = 5
    operations_per_reader: int = 5
    value_size: int = 256
    think_time: float = 0.0
    seed: Optional[int] = None
    num_keys: int = 0
    key_distribution: str = "uniform"
    zipf_s: float = 1.2
    batch_size: int = 1
    max_events: Optional[int] = None


@dataclass
class WorkloadResult:
    """Summary statistics of a completed workload run."""

    total_operations: int
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    duration: float = 0.0
    errors: List[str] = field(default_factory=list)

    @staticmethod
    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_read_latency(self) -> float:
        """Average read latency in simulated time units."""
        return self._mean(self.read_latencies)

    @property
    def mean_write_latency(self) -> float:
        """Average write latency in simulated time units."""
        return self._mean(self.write_latencies)

    @property
    def throughput(self) -> float:
        """Completed operations per simulated time unit."""
        if self.duration <= 0:
            return 0.0
        return self.total_operations / self.duration


class ClosedLoopDriver:
    """Drives a deployment's clients according to a :class:`WorkloadSpec`.

    Parameters
    ----------
    rng:
        Explicit random source for workload randomness.  Defaults to
        ``random.Random(spec.seed)`` when the spec carries a seed, else to
        the simulator RNG (the historical behaviour).  There is no
        module-level randomness anywhere in this driver.
    """

    def __init__(self, deployment, spec: Optional[WorkloadSpec] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.deployment = deployment
        self.spec = spec or WorkloadSpec()
        self.sim = deployment.sim
        if rng is not None:
            self.rng = rng
        elif self.spec.seed is not None:
            self.rng = random.Random(self.spec.seed)
        else:
            self.rng = self.sim.rng
        # Keyed (store) workloads sample an object key per operation; the
        # workload must agree with the deployment about which surface to
        # drive, so a mismatch is a configuration error, not a silent fall
        # back to the wrong call signature.
        keyed_deployment = bool(getattr(deployment, "keyed", False))
        if self.spec.num_keys > 0 and not keyed_deployment:
            raise ValueError(
                "workload names a keyspace (num_keys="
                f"{self.spec.num_keys}) but the deployment is a "
                "single-register system; use a StoreDeployment")
        if keyed_deployment and self.spec.num_keys <= 0:
            raise ValueError(
                "deployment is a keyed store but the workload has no "
                "keyspace; set WorkloadSpec.num_keys")
        if self.spec.batch_size < 1:
            raise ValueError("WorkloadSpec.batch_size must be >= 1")
        if self.spec.batch_size > 1 and self.spec.num_keys <= 0:
            raise ValueError(
                f"WorkloadSpec.batch_size={self.spec.batch_size} requires a "
                "keyspace (num_keys > 0); batches are multi-key operations")
        self.sampler: Optional[KeyspaceSampler] = None
        if self.spec.num_keys > 0:
            self.sampler = KeyspaceSampler(self.spec.num_keys,
                                           self.spec.key_distribution,
                                           self.spec.zipf_s)

    # ---------------------------------------------------------------- drive
    def run(self) -> WorkloadResult:
        """Run all sessions to completion and return the aggregated result."""
        start_time = self.sim.now
        sessions = []
        for writer in self.deployment.writers:
            sessions.append(writer.spawn(
                self._writer_session(writer), label=f"{writer.pid}:session"))
        for reader in self.deployment.readers:
            sessions.append(reader.spawn(
                self._reader_session(reader), label=f"{reader.pid}:session"))
        if self.spec.max_events is not None:
            self.sim.run(max_events=self.spec.max_events)
        else:
            self.sim.run()
        errors = [repr(s.exception()) for s in sessions if s.exception() is not None]
        # A drained event queue with an unfinished session means the workload
        # cannot make progress (e.g. a fault schedule cut a client off from
        # every quorum and the lost requests are never retransmitted).
        errors.extend(f"session {s.label!r} never completed (stalled)"
                      for s in sessions if not s.done())
        history: History = self.deployment.history
        stream = history.stream
        if stream is not None:
            # Streaming histories fold records away; the stream keeps exact
            # counts and bounded latency reservoirs, so the result never
            # materializes O(run) latency lists.
            return WorkloadResult(
                total_operations=stream.completed_operations,
                read_latencies=stream.read_latencies.sample(),
                write_latencies=stream.write_latencies.sample(),
                duration=self.sim.now - start_time,
                errors=errors,
            )
        result = WorkloadResult(
            total_operations=len(history.operations(complete_only=True)),
            read_latencies=history.latencies(OperationType.READ),
            write_latencies=history.latencies(OperationType.WRITE),
            duration=self.sim.now - start_time,
            errors=errors,
        )
        return result

    # -------------------------------------------------------------- sessions
    def _writer_session(self, writer):
        for _ in range(self.spec.operations_per_writer):
            yield from self._think(writer)
            if self.sampler is None:
                value = writer.next_value(self.spec.value_size)
                yield from writer.write(value)
            elif self.spec.batch_size > 1:
                keys = self.sampler.sample_batch(self.rng, self.spec.batch_size)
                items = {key: writer.next_value(self.spec.value_size)
                         for key in keys}
                yield from writer.multi_put(items)
            else:
                key = self.sampler.sample(self.rng)
                value = writer.next_value(self.spec.value_size)
                yield from writer.write(key, value)
        return None

    def _reader_session(self, reader):
        for _ in range(self.spec.operations_per_reader):
            yield from self._think(reader)
            if self.sampler is None:
                yield from reader.read()
            elif self.spec.batch_size > 1:
                keys = self.sampler.sample_batch(self.rng, self.spec.batch_size)
                yield from reader.multi_get(keys)
            else:
                yield from reader.read(self.sampler.sample(self.rng))
        return None

    def _think(self, client):
        if self.spec.think_time > 0:
            delay = self.rng.expovariate(1.0 / self.spec.think_time)
            yield client.sleep(delay)
        return None
