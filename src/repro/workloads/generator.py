"""Closed-loop workload driver.

Each participating client runs a *session*: a loop of operations separated by
an optional think time.  Writers issue writes of uniquely-labelled values of
the configured size; readers issue reads.  The driver works against both
:class:`~repro.registers.static.StaticRegisterDeployment` and
:class:`~repro.core.deployment.AresDeployment` because both expose clients
with ``read()`` / ``write(value)`` coroutines and a shared history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.values import Value
from repro.spec.history import History, OperationType


@dataclass
class WorkloadSpec:
    """Parameters of a closed-loop workload.

    Attributes
    ----------
    operations_per_writer / operations_per_reader:
        Number of operations each writer/reader session issues.
    value_size:
        Size in bytes of every written value.
    think_time:
        Mean think time between consecutive operations of one session (0
        means back-to-back operations); the actual delay is exponential with
        this mean.
    seed:
        When set, workload randomness (think times) is drawn from a
        dedicated ``random.Random(seed)`` instead of the simulator RNG.
        Decoupling the two streams makes chaos scenarios reproducible
        byte-for-byte: armed faults and latency draws cannot shift the
        workload's arrival pattern and vice versa.  ``None`` keeps the
        historical behaviour of sharing the simulator RNG.
    """

    operations_per_writer: int = 5
    operations_per_reader: int = 5
    value_size: int = 256
    think_time: float = 0.0
    seed: Optional[int] = None


@dataclass
class WorkloadResult:
    """Summary statistics of a completed workload run."""

    total_operations: int
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    duration: float = 0.0
    errors: List[str] = field(default_factory=list)

    @staticmethod
    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_read_latency(self) -> float:
        """Average read latency in simulated time units."""
        return self._mean(self.read_latencies)

    @property
    def mean_write_latency(self) -> float:
        """Average write latency in simulated time units."""
        return self._mean(self.write_latencies)

    @property
    def throughput(self) -> float:
        """Completed operations per simulated time unit."""
        if self.duration <= 0:
            return 0.0
        return self.total_operations / self.duration


class ClosedLoopDriver:
    """Drives a deployment's clients according to a :class:`WorkloadSpec`.

    Parameters
    ----------
    rng:
        Explicit random source for workload randomness.  Defaults to
        ``random.Random(spec.seed)`` when the spec carries a seed, else to
        the simulator RNG (the historical behaviour).  There is no
        module-level randomness anywhere in this driver.
    """

    def __init__(self, deployment, spec: Optional[WorkloadSpec] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.deployment = deployment
        self.spec = spec or WorkloadSpec()
        self.sim = deployment.sim
        if rng is not None:
            self.rng = rng
        elif self.spec.seed is not None:
            self.rng = random.Random(self.spec.seed)
        else:
            self.rng = self.sim.rng

    # ---------------------------------------------------------------- drive
    def run(self) -> WorkloadResult:
        """Run all sessions to completion and return the aggregated result."""
        start_time = self.sim.now
        sessions = []
        for writer in self.deployment.writers:
            sessions.append(writer.spawn(
                self._writer_session(writer), label=f"{writer.pid}:session"))
        for reader in self.deployment.readers:
            sessions.append(reader.spawn(
                self._reader_session(reader), label=f"{reader.pid}:session"))
        self.sim.run()
        errors = [repr(s.exception()) for s in sessions if s.exception() is not None]
        # A drained event queue with an unfinished session means the workload
        # cannot make progress (e.g. a fault schedule cut a client off from
        # every quorum and the lost requests are never retransmitted).
        errors.extend(f"session {s.label!r} never completed (stalled)"
                      for s in sessions if not s.done())
        history: History = self.deployment.history
        result = WorkloadResult(
            total_operations=len(history.operations(complete_only=True)),
            read_latencies=history.latencies(OperationType.READ),
            write_latencies=history.latencies(OperationType.WRITE),
            duration=self.sim.now - start_time,
            errors=errors,
        )
        return result

    # -------------------------------------------------------------- sessions
    def _writer_session(self, writer):
        for _ in range(self.spec.operations_per_writer):
            yield from self._think(writer)
            value = writer.next_value(self.spec.value_size)
            yield from writer.write(value)
        return None

    def _reader_session(self, reader):
        for _ in range(self.spec.operations_per_reader):
            yield from self._think(reader)
            yield from reader.read()
        return None

    def _think(self, client):
        if self.spec.think_time > 0:
            delay = self.rng.expovariate(1.0 / self.spec.think_time)
            yield client.sleep(delay)
        return None
