"""Compact per-run records and campaign-level aggregation.

Workers return :class:`RunRecord` objects -- plain picklable scalars and
small dicts, never histories or deployments -- and :class:`SweepResult`
aggregates them into the views a report needs: the pass/fail matrix,
latency percentiles per cell, checker-method counts and per-cell wall
clock.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sweep.grid import format_cell_id


def latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a latency sample (empty-safe).

    Percentiles use the nearest-rank method on the sorted sample, which is
    exact, deterministic and needs no interpolation policy.
    """
    if not latencies:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies)
    count = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(count - 1, max(0, math.ceil(q * count) - 1))]

    return {
        "count": count,
        "mean": round(sum(ordered) / count, 6),
        "p50": round(rank(0.50), 6),
        "p95": round(rank(0.95), 6),
        "p99": round(rank(0.99), 6),
        "max": round(ordered[-1], 6),
    }


@dataclass(frozen=True)
class RunRecord:
    """Everything one sweep cell reports back across the process boundary."""

    scenario: str
    seed: int
    params: Tuple[Tuple[str, object], ...]
    ok: bool
    #: First verification failure (liveness / atomicity / tag monotonicity)
    #: or crash traceback; ``None`` when the cell passed.
    failure: Optional[str]
    #: SHA-256 of ``repr(ChaosRunResult.signature())`` -- the determinism
    #: witness compared between serial and pooled execution.
    signature_hash: str
    wall_clock_sec: float
    history_ops: int
    events: int
    messages: int
    #: Which linearizability algorithm decided (``fast`` / ``reference``;
    #: empty when the run crashed before checking).
    checker_method: str
    read_latency: Dict[str, float] = field(default_factory=dict)
    write_latency: Dict[str, float] = field(default_factory=dict)
    #: The cell's exported :class:`~repro.obs.report.MetricsReport` dict
    #: (already JSON-ready, passed through serialization verbatim) when the
    #: campaign ran with ``metrics=True``; ``None`` otherwise.  The dict may
    #: carry an extra ``slo`` entry with the scenario's SLO verdicts.
    metrics: Optional[Dict[str, object]] = None

    @property
    def cell_id(self) -> str:
        return format_cell_id(self.scenario, self.seed, self.params)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_json` rendering.

        The round-trip is exact for everything the checkpoint/resume gate
        compares (scenario, seed, canonically ordered params, ok flag,
        signature hash, checker method); ``wall_clock_sec`` keeps the
        original cell's measured time, not the resumed campaign's.
        """
        return cls(
            scenario=payload["scenario"],
            seed=payload["seed"],
            params=tuple(sorted(payload.get("params", {}).items())),
            ok=payload["ok"],
            failure=payload.get("failure"),
            signature_hash=payload["signature_hash"],
            wall_clock_sec=payload["wall_clock_sec"],
            history_ops=payload["history_ops"],
            events=payload["events"],
            messages=payload["messages"],
            checker_method=payload["checker_method"],
            read_latency=dict(payload.get("read_latency", {})),
            write_latency=dict(payload.get("write_latency", {})),
            metrics=payload.get("metrics"),
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable rendering of this cell's record.

        The ``metrics`` key is present only when the cell collected
        metrics, so metrics-free renderings stay byte-identical to older
        journals and reports.
        """
        payload = self._base_json()
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    def _base_json(self) -> Dict[str, object]:
        return {
            "cell": self.cell_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": dict(self.params),
            "ok": self.ok,
            "failure": self.failure,
            "signature_hash": self.signature_hash,
            "wall_clock_sec": round(self.wall_clock_sec, 4),
            "history_ops": self.history_ops,
            "events": self.events,
            "messages": self.messages,
            "checker_method": self.checker_method,
            "read_latency": self.read_latency,
            "write_latency": self.write_latency,
        }


@dataclass
class SweepResult:
    """The aggregated outcome of one campaign.

    ``jobs`` is the worker count the caller *asked* for; ``workers`` the
    pool size the engine actually used (capped at ``usable_cores()`` and
    the pending-cell count; 1 when the campaign ran serially), so a report
    for ``--jobs 16`` on an 8-core host honestly says 8.  ``chunk`` is the
    cells-per-worker-task batch size the engine used (1 when serial),
    ``pool_spinup_sec`` the measured pool start-up cost, ``resumed_cells``
    how many cells were replayed from a checkpoint journal instead of
    executed, and ``complete`` whether every cell of the grid has a record
    (``False`` after an interrupted / ``max_cells``-truncated campaign).
    """

    grid: Dict[str, object]
    jobs: int
    records: List[RunRecord]
    wall_clock_sec: float
    chunk: int = 1
    workers: int = 1
    pool_spinup_sec: float = 0.0
    resumed_cells: int = 0
    complete: bool = True

    # ----------------------------------------------------------- aggregates
    @property
    def passed(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def failed(self) -> int:
        return len(self.records) - self.passed

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def pass_matrix(self) -> Dict[str, Dict[int, bool]]:
        """``scenario -> seed -> all cells passed`` (parameter cells AND-ed)."""
        matrix: Dict[str, Dict[int, bool]] = {}
        for record in self.records:
            row = matrix.setdefault(record.scenario, {})
            row[record.seed] = row.get(record.seed, True) and record.ok
        return matrix

    def checker_method_counts(self) -> Dict[str, int]:
        """How many cells each linearizability algorithm decided."""
        return dict(Counter(record.checker_method for record in self.records))

    def signature_map(self) -> Dict[str, str]:
        """``cell id -> signature hash`` (the serial-vs-parallel gate input)."""
        return {record.cell_id: record.signature_hash for record in self.records}

    def failures(self) -> List[RunRecord]:
        """The failed cells' records, in grid-expansion order."""
        return [record for record in self.records if not record.ok]

    # ------------------------------------------------------------- rendering
    def render_matrix(self) -> str:
        """ASCII pass/fail matrix: one row per scenario, one column per seed."""
        matrix = self.pass_matrix()
        seeds = sorted({seed for row in matrix.values() for seed in row})
        width = max((len(name) for name in matrix), default=8)
        lines = [" " * width + "  " + " ".join(f"s{seed:<4}" for seed in seeds)]
        for name, row in matrix.items():
            cells = " ".join(
                f"{'ok' if row[seed] else 'FAIL':<5}" if seed in row else f"{'-':<5}"
                for seed in seeds)
            lines.append(f"{name:<{width}}  {cells}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable report (the ``cells`` list keeps expansion order)."""
        slowest = max(self.records, key=lambda r: r.wall_clock_sec, default=None)
        return {
            "grid": self.grid,
            "jobs": self.jobs,
            "workers": self.workers,
            "chunk": self.chunk,
            "complete": self.complete,
            "resumed_cells": self.resumed_cells,
            "cells_total": len(self.records),
            "cells_passed": self.passed,
            "cells_failed": self.failed,
            "wall_clock_sec": round(self.wall_clock_sec, 4),
            "pool_spinup_sec": round(self.pool_spinup_sec, 4),
            "cell_wall_clock_sum_sec": round(
                sum(record.wall_clock_sec for record in self.records), 4),
            "slowest_cell": None if slowest is None else slowest.cell_id,
            "checker_methods": self.checker_method_counts(),
            "cells": [record.to_json() for record in self.records],
        }

    def render_html(self) -> str:
        """Self-contained HTML campaign report (no external dependencies).

        Pass/fail matrix, degradation curves over the grid's ``fault_rate``
        axis and per-cell virtual-time sparklines (when the campaign
        collected metrics); see :mod:`repro.sweep.html`.  Works identically
        on a result re-read from ``--output`` JSON, since it renders from
        :meth:`to_json`.
        """
        from repro.sweep.html import render_campaign_html

        return render_campaign_html(self.to_json())
