"""Resumable campaign checkpoints: an append-only JSONL cell journal.

A campaign started with ``checkpoint=PATH`` appends one JSON line per
completed cell as records stream back from the workers; a campaign
restarted over the same grid with ``resume=True`` replays those records
instead of re-running the cells.  Because every cell is a pure function of
its :class:`~repro.sweep.grid.RunSpec`, the merged
:class:`~repro.sweep.result.SweepResult` of an interrupted-and-resumed
campaign is identical -- signature hashes, pass/fail matrix, checker-method
counts -- to an uninterrupted run, which the tier-1 checkpoint tests gate.

The journal is guarded by a *grid fingerprint* (SHA-256 over the grid
description plus the streaming flag): resuming with a different grid, seed
list, parameter axis or verification mode is an explicit
:class:`CheckpointError`, never a silent partial merge.  A final line left
truncated by a hard kill is dropped on load and truncated off the file
before appending resumes (the cell simply re-runs, and the next journaled
record starts on its own line); truncation anywhere else is corruption and
raises.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, TextIO, Tuple, Union

from repro.sweep.grid import SweepGrid
from repro.sweep.result import RunRecord

#: Journal format version (bumped on incompatible schema changes).
CHECKPOINT_SCHEMA = 1


class CheckpointError(ValueError):
    """A checkpoint journal cannot be (re)used: wrong grid, mode or format."""


def grid_fingerprint(grid: SweepGrid, streaming: bool = False,
                     metrics: bool = False) -> str:
    """SHA-256 fingerprint of a grid + verification mode.

    This keys the checkpoint journal (resuming against a different grid is
    an error) and seeds the ``--check-serial`` cell sampler, so it must be
    deterministic across processes and sessions: it hashes the canonical
    JSON of :meth:`SweepGrid.describe` plus the streaming flag.  The
    ``metrics`` flag joins the payload only when set, so every fingerprint
    ever computed before the flag existed is unchanged -- old journals stay
    resumable and the serial-check sampler keeps drawing the same cells.
    """
    payload = {"grid": grid.describe(), "streaming": bool(streaming)}
    if metrics:
        payload["metrics"] = True
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


class Checkpoint:
    """An open campaign journal: completed cells in, completed cells out.

    Use :meth:`open` (not the constructor) to create or resume one; the
    campaign engine appends each :class:`RunRecord` the moment it comes
    back from a worker (flushed per line, so a killed campaign loses at
    most the in-flight cells) and reads :attr:`records` to know which cells
    to skip.
    """

    def __init__(self, path: pathlib.Path, grid_hash: str,
                 records: Dict[str, RunRecord], file: TextIO) -> None:
        self.path = path
        self.grid_hash = grid_hash
        #: ``cell_id -> RunRecord`` for every journaled (completed) cell.
        self.records = records
        self._file: Optional[TextIO] = file

    @classmethod
    def open(cls, path: Union[str, pathlib.Path], grid: SweepGrid,
             streaming: bool = False, metrics: bool = False,
             resume: bool = False) -> "Checkpoint":
        """Create a fresh journal, or (``resume=True``) reopen an existing one.

        An existing journal without ``resume`` is an error -- a stale file
        must never silently masquerade as campaign progress.  ``resume``
        against a missing/empty file simply starts fresh (so a resume
        invocation is idempotent from the first attempt on).  A resumed
        journal's grid fingerprint must match ``grid``/``streaming``/
        ``metrics`` -- a metrics campaign must not merge metrics-free
        records (half the cells would silently lack reports).
        """
        path = pathlib.Path(path)
        grid_hash = grid_fingerprint(grid, streaming, metrics)
        if path.exists() and path.stat().st_size > 0:
            if not resume:
                raise CheckpointError(
                    f"checkpoint {path} already exists; pass resume=True "
                    "(--resume) to continue it, or delete it to start over")
            header, records, good_bytes = cls._load(path)
            if header.get("grid_hash") != grid_hash:
                raise CheckpointError(
                    f"checkpoint {path} was recorded for a different "
                    "grid/streaming/metrics mode; refusing to merge (delete "
                    "it or rerun with the original --grid/--streaming/"
                    "--metrics flags)")
            if good_bytes < path.stat().st_size:
                # A tolerated partial trailing write must not stay in the
                # file: appending after it would concatenate the next record
                # onto the same line, silently dropping it (and poisoning
                # every later resume once more records follow).  Cut the
                # journal back to the last fully-parsed line; the dropped
                # cell simply re-runs.
                os.truncate(path, good_bytes)
            return cls(path, grid_hash, records, path.open("a", encoding="utf-8"))
        file = path.open("w", encoding="utf-8")
        header = {"kind": "sweep-checkpoint", "schema": CHECKPOINT_SCHEMA,
                  "grid_hash": grid_hash, "grid": grid.describe(),
                  "streaming": bool(streaming)}
        if metrics:
            # Key written only when set: metrics-free journal headers stay
            # byte-identical to every journal written before the flag existed.
            header["metrics"] = True
        file.write(json.dumps(header) + "\n")
        file.flush()
        return cls(path, grid_hash, {}, file)

    @staticmethod
    def _load(path: pathlib.Path) -> Tuple[dict, Dict[str, RunRecord], int]:
        """Parse a journal into its header, records and good byte length.

        The returned offset is the end of the last fully-parsed line, so the
        resume path can truncate a partial trailing write away before it
        reopens the file for append.  A malformed (or newline-less) *final*
        line is tolerated and dropped -- that is exactly what a mid-write
        kill leaves behind, and the cell re-runs deterministically.
        Malformed lines elsewhere mean the file was edited or corrupted and
        raise.
        """
        data = path.read_bytes()
        # (line bytes, end offset incl. newline, newline-terminated?); a
        # complete journal write always ends with a newline, so a missing
        # terminator marks a partial write even when the bytes parse.
        lines = []
        start = 0
        while start < len(data):
            newline = data.find(b"\n", start)
            if newline == -1:
                lines.append((data[start:], len(data), False))
                break
            lines.append((data[start:newline], newline + 1, True))
            start = newline + 1
        try:
            raw, good_bytes, terminated = lines[0]
            if not terminated:
                raise ValueError("header write was interrupted")
            header = json.loads(raw)
        except (ValueError, IndexError):
            raise CheckpointError(
                f"checkpoint {path} has no readable header line") from None
        if header.get("kind") != "sweep-checkpoint" or \
                header.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {path} is not a schema-{CHECKPOINT_SCHEMA} "
                "sweep checkpoint")
        records: Dict[str, RunRecord] = {}
        for number, (raw, end, terminated) in enumerate(lines[1:], start=2):
            if not raw.strip():
                continue
            try:
                if not terminated:
                    raise ValueError("record write was interrupted")
                payload = json.loads(raw)
                record = RunRecord.from_json(payload["record"])
            except (ValueError, KeyError, TypeError, AttributeError):
                # ValueError covers json.JSONDecodeError and UnicodeDecodeError
                # (both subclasses); KeyError/TypeError/AttributeError cover
                # valid JSON whose payload is not a RunRecord rendering.
                if number == len(lines):
                    break  # interrupted mid-write: truncated away on reopen
                raise CheckpointError(
                    f"checkpoint {path} line {number} is corrupt (not a "
                    "trailing partial write); refusing to resume") from None
            records[record.cell_id] = record
            good_bytes = end
        return header, records, good_bytes

    def append(self, record: RunRecord) -> None:
        """Journal one completed cell (flushed immediately)."""
        if self._file is None:
            raise CheckpointError(f"checkpoint {self.path} is closed")
        self._file.write(json.dumps({"kind": "record",
                                     "record": record.to_json()}) + "\n")
        self._file.flush()
        self.records[record.cell_id] = record

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
