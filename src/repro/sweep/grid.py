"""Declarative scenario x seed x parameter grids.

A :class:`SweepGrid` names *what* to run -- registered chaos scenarios
(exact names or glob patterns), a seed list, and optional workload-parameter
axes -- and :meth:`SweepGrid.expand` turns it into the deterministic,
ordered list of :class:`RunSpec` cells the campaign engine fans out.

Grids can also be written as a compact one-line string (the ``--grid``
argument of ``python -m repro.sweep``)::

    scenarios=all;seeds=0..3
    scenarios=abd_*,treas_crash_server;seeds=0,7;value_size=256,4096

Clauses are ``key=value`` pairs separated by ``;``.  ``scenarios`` takes a
comma list of names or ``fnmatch`` patterns (``all`` is every registered
scenario); ``seeds`` takes a comma list of integers or an inclusive
``lo..hi`` range; every other key must be a workload field
(:data:`WORKLOAD_PARAM_FIELDS`) or a reconfiguration-rate scenario field
(:data:`SCENARIO_PARAM_FIELDS`) and contributes one axis to the parameter
cross-product::

    scenarios=store_shard_migration_storm;seeds=0..3;num_reconfigs=0,2,4
    scenarios=abd_reconfig_crash;seeds=0;reconfig_cadence=4.0,8.0,16.0
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Sequence, Tuple

#: Workload fields a grid may override, with their parsers.  These are the
#: knobs the ICDCS'19 evaluation grid varies (object size, operation counts,
#: think time) plus the store keyspace axes (keyspace size, batch width);
#: anything else in a scenario (fault schedule, deployment shape, key
#: distribution) is part of the scenario's identity and gets a new
#: registration instead of an override -- except the reconfiguration-rate
#: fields below.  The keyspace axes only apply to store scenarios --
#: overriding ``num_keys`` on a single-register scenario fails the cell
#: with an explicit workload/deployment mismatch error.  ``max_events``
#: caps the simulator event budget: a cell that exhausts it fails with a
#: livelock error, which makes the budget a monotone pass/fail axis (the
#: canonical target for ``AdaptiveCampaign`` bisection -- the minimum
#: event budget at which a scenario still completes and verifies).
WORKLOAD_PARAM_FIELDS: Dict[str, type] = {
    "value_size": int,
    "think_time": float,
    "operations_per_writer": int,
    "operations_per_reader": int,
    "num_keys": int,
    "batch_size": int,
    "max_events": int,
}

#: Scenario-level fields a grid may override, with their parsers.  The
#: reconfiguration-rate trio controls how many reconfigurations run
#: concurrently with the workload, the pause before each, and how many
#: fresh servers every round recruits.  On single-register scenarios they
#: drive the ARES reconfigurer; on store scenarios they drive live shard
#: migrations, so capacity/latency-vs-reconfig-rate curves run as sweep
#: campaigns.  ``fault_rate`` scales a gray-failure scenario's stochastic
#: background (per-message loss and per-admission resource refusals):
#: ``0.0`` arms nothing, and raising it degrades the run until client
#: retries exhaust -- a monotone pass/fail axis, so
#: ``--bisect "fault_rate=0.0..0.5"`` maps the maximum survivable rate.
#: Only scenarios with a stochastic background accept it.  ``gc`` toggles
#: configuration retirement (``gc=0,1`` runs each cell with and without the
#: gc-config phase -- the storage-vs-traffic comparison of the retirement
#: evaluation); only scenarios that actually reconfigure accept it.
def _parse_bool(text: str) -> bool:
    """Parse a grid bool: ``0/1``, ``true/false``, ``yes/no``, ``on/off``.

    ``bool(...)`` is useless as a string parser (``bool("0")`` is True), so
    boolean axes get an explicit vocabulary; anything else is an error.
    """
    if isinstance(text, bool):
        return text
    lowered = str(text).strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"boolean grid value {text!r} (use 0/1, true/false, "
                     "yes/no or on/off)")


SCENARIO_PARAM_FIELDS: Dict[str, type] = {
    "num_reconfigs": int,
    "reconfig_cadence": float,
    "fresh_servers": int,
    "fault_rate": float,
    "gc": _parse_bool,
}

#: Every grid-overridable field (the union the parser and validator accept).
GRID_PARAM_FIELDS: Dict[str, type] = {**WORKLOAD_PARAM_FIELDS,
                                      **SCENARIO_PARAM_FIELDS}


def format_cell_id(scenario: str, seed: int,
                   params: Tuple[Tuple[str, object], ...]) -> str:
    """The one cell-key formatter, e.g. ``abd_crash_minority/s3[value_size=1024]``.

    Specs and records both derive their ``cell_id`` from here; the
    serial-vs-parallel signature gate keys on this string, so there must be
    exactly one formatter.
    """
    base = f"{scenario}/s{seed}"
    if not params:
        return base
    inner = ",".join(f"{key}={value}" for key, value in params)
    return f"{base}[{inner}]"


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep: a scenario, a seed, and workload overrides.

    ``params`` is a canonically ordered (sorted by key) tuple of pairs so
    specs are hashable, picklable and compare equal independent of the axis
    declaration order.
    """

    scenario: str
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def cell_id(self) -> str:
        """Stable human-readable cell key (see :func:`format_cell_id`)."""
        return format_cell_id(self.scenario, self.seed, self.params)


@dataclass(frozen=True)
class SweepGrid:
    """A declarative scenario x seed x parameter grid."""

    scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...]
    #: Parameter axes: ``(field name, tuple of values)`` pairs.
    params: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a sweep grid needs at least one scenario")
        if not self.seeds:
            raise ValueError("a sweep grid needs at least one seed")
        seen_fields = set()
        for field, values in self.params:
            if field not in GRID_PARAM_FIELDS:
                raise ValueError(
                    f"unknown grid parameter {field!r}; allowed: "
                    f"{', '.join(sorted(GRID_PARAM_FIELDS))}")
            if field in seen_fields:
                # Duplicate axes would expand to distinct cell ids that all
                # run the last axis's value (dict(params) keeps one pair).
                raise ValueError(f"duplicate grid parameter axis {field!r}")
            seen_fields.add(field)
            if not values:
                raise ValueError(f"grid parameter {field!r} has no values")

    def expand(self) -> List[RunSpec]:
        """The ordered cell list: scenarios x seeds x parameter combinations.

        The order is deterministic (scenario-major, then seed, then the
        parameter cross-product in axis order), so serial and parallel
        campaigns agree on cell indices.
        """
        axes = [[(field, value) for value in values] for field, values in self.params]
        combos = [tuple(sorted(combo)) for combo in product(*axes)] if axes else [()]
        return [
            RunSpec(scenario=scenario, seed=seed, params=combo)
            for scenario in self.scenarios
            for seed in self.seeds
            for combo in combos
        ]

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable summary of the grid (stored in sweep reports)."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "params": {field: list(values) for field, values in self.params},
            "cells": len(self.scenarios) * len(self.seeds)
            * max(1, _prod(len(values) for _, values in self.params)),
        }


def _prod(iterable) -> int:
    total = 1
    for item in iterable:
        total *= item
    return total


def resolve_scenarios(patterns: Sequence[str]) -> Tuple[str, ...]:
    """Expand names / ``fnmatch`` patterns / ``all`` against the registry.

    Registration order is preserved and duplicates are dropped; a pattern
    that matches nothing is an error (it is almost always a typo).
    """
    from repro.workloads.scenarios import scenario_names

    registered = scenario_names()
    selected: List[str] = []
    for pattern in patterns:
        pattern = pattern.strip()
        if not pattern:
            continue
        if pattern == "all":
            matches = registered
        elif any(ch in pattern for ch in "*?["):
            matches = [name for name in registered if fnmatch.fnmatch(name, pattern)]
        else:
            matches = [name for name in registered if name == pattern]
        if not matches:
            raise ValueError(
                f"scenario pattern {pattern!r} matches nothing; registered: "
                f"{', '.join(registered)}")
        selected.extend(name for name in matches if name not in selected)
    if not selected:
        raise ValueError("no scenarios selected")
    return tuple(selected)


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse ``0..3`` (inclusive range) or ``0,5,9`` into a seed tuple."""
    text = text.strip()
    if ".." in text:
        lo_text, hi_text = text.split("..", 1)
        lo, hi = int(lo_text), int(hi_text)
        if hi < lo:
            raise ValueError(f"empty seed range {text!r}")
        return tuple(range(lo, hi + 1))
    seeds = tuple(int(part) for part in text.split(",") if part.strip())
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def parse_grid(text: str) -> SweepGrid:
    """Parse the compact ``--grid`` string into a :class:`SweepGrid`."""
    scenarios: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    params: List[Tuple[str, Tuple[object, ...]]] = []
    seen = set()
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"grid clause {clause!r} is not key=value")
        key, _, value = clause.partition("=")
        key = key.strip()
        if key in seen:
            raise ValueError(f"duplicate grid clause {key!r}")
        seen.add(key)
        if key == "scenarios":
            scenarios = resolve_scenarios(value.split(","))
        elif key == "seeds":
            seeds = parse_seeds(value)
        elif key in GRID_PARAM_FIELDS:
            parser = GRID_PARAM_FIELDS[key]
            values = tuple(parser(part) for part in value.split(",") if part.strip())
            params.append((key, values))
        else:
            raise ValueError(
                f"unknown grid key {key!r}; allowed: scenarios, seeds, "
                f"{', '.join(sorted(GRID_PARAM_FIELDS))}")
    if not scenarios:
        raise ValueError("grid must name scenarios (e.g. scenarios=all)")
    return SweepGrid(scenarios=scenarios, seeds=seeds, params=tuple(params))
