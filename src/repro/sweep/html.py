"""Self-contained HTML campaign reports: matrix, curves, sparklines.

:func:`render_campaign_html` turns the JSON rendering of a
:class:`~repro.sweep.result.SweepResult` (``SweepResult.to_json()``, or the
same dict re-read from a ``--output`` file) into one static HTML page with
zero external dependencies -- no JavaScript, no CDN fonts, no chart
library; every curve and sparkline is inline SVG built from the record
dicts.  The page has three sections:

* **Pass/fail matrix** -- one row per scenario, one column per seed,
  parameter cells AND-ed, mirroring ``SweepResult.render_matrix()``.
* **Degradation curves** -- when the grid sweeps a ``fault_rate`` axis,
  one curve pair per scenario: pass fraction and mean p99 read latency
  against the fault rate, the quantitative "how does the DAP degrade"
  answer the gray-failure scenarios exist for.
* **Per-cell table** -- every cell's verdict, checker, latency summary,
  SLO verdicts and (for ``--metrics`` campaigns) a virtual-time sparkline
  of per-window mean read latency from the cell's exported
  :class:`~repro.obs.report.MetricsReport`.

The renderer is a pure function of the report dict (no timestamps, no
randomness), so re-rendering an archived campaign JSON reproduces the page
byte-for-byte.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_campaign_html"]

#: Colour palette shared by the matrix, curves and per-cell table.
PASS_COLOR = "#15803d"
FAIL_COLOR = "#b91c1c"
CURVE_COLOR = "#1d4ed8"

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1f2937; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #d1d5db; padding: 0.25em 0.6em; text-align: left; }
th { background: #f3f4f6; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: """ + PASS_COLOR + """; font-weight: 600; }
.fail { color: """ + FAIL_COLOR + """; font-weight: 600; }
.muted { color: #6b7280; }
.summary span { margin-right: 1.6em; }
.chartrow { display: flex; gap: 2em; flex-wrap: wrap; margin: 0.6em 0 1.4em; }
.chart { border: 1px solid #e5e7eb; padding: 0.5em 0.7em; }
.chart figcaption { font-size: 0.85em; color: #6b7280; }
.slo { margin: 0; padding-left: 1.2em; font-size: 0.9em; }
code { background: #f3f4f6; padding: 0 0.25em; }
"""


def _esc(value: object) -> str:
    """HTML-escape any value's string form."""
    return html.escape(str(value), quote=True)


def _fmt(value: float, places: int = 3) -> str:
    """Compact fixed-point rendering without trailing zeros."""
    text = f"{value:.{places}f}".rstrip("0").rstrip(".")
    return text or "0"


def _polyline(points: Sequence[Tuple[float, float]], width: int, height: int,
              color: str, lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """SVG path fragment for a series, normalised into a width x height box.

    ``lo``/``hi`` pin the y-range (e.g. 0..1 for pass fractions); by
    default the range is the series' own min/max.  A flat or single-point
    series renders as a horizontal line rather than dividing by zero.
    """
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if lo is None else lo
    y_hi = max(ys) if hi is None else hi
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    pad = 3.0
    coords = " ".join(
        f"{pad + (x - x_lo) / x_span * (width - 2 * pad):.1f},"
        f"{height - pad - (y - y_lo) / y_span * (height - 2 * pad):.1f}"
        for x, y in points)
    dots = "".join(
        f'<circle cx="{pad + (x - x_lo) / x_span * (width - 2 * pad):.1f}" '
        f'cy="{height - pad - (y - y_lo) / y_span * (height - 2 * pad):.1f}" '
        f'r="2" fill="{color}"/>'
        for x, y in points) if len(points) <= 24 else ""
    return (f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>{dots}')


def _chart(points: Sequence[Tuple[float, float]], caption: str,
           color: str = CURVE_COLOR, lo: Optional[float] = None,
           hi: Optional[float] = None) -> str:
    """A captioned SVG line chart with min/max range annotations."""
    width, height = 260, 80
    ys = [p[1] for p in points]
    y_lo = min(ys) if lo is None else lo
    y_hi = max(ys) if hi is None else hi
    label = (f"x: {_fmt(min(p[0] for p in points))}..{_fmt(max(p[0] for p in points))}"
             f" &middot; y: {_fmt(y_lo)}..{_fmt(y_hi)}") if points else "no data"
    return (f'<figure class="chart"><svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'{_polyline(points, width, height, color, lo=lo, hi=hi)}</svg>'
            f'<figcaption>{_esc(caption)} <span class="muted">({label})'
            f'</span></figcaption></figure>')


def _sparkline(points: Sequence[Tuple[float, float]]) -> str:
    """A bare inline sparkline (virtual time on x) for the per-cell table."""
    if not points:
        return '<span class="muted">-</span>'
    width, height = 140, 26
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'{_polyline(points, width, height, CURVE_COLOR)}</svg>')


def _mean_series(cell: Dict[str, object], series: str
                 ) -> List[Tuple[float, float]]:
    """``(window start, window mean)`` points of one cell's metric histogram."""
    metrics = cell.get("metrics") or {}
    histogram = metrics.get("histograms", {}).get(series)
    if not histogram:
        return []
    return [(float(w[0]), float(w[2])) for w in histogram["windows"] if w[1]]


def _summary_section(report: Dict[str, object]) -> str:
    """The header block: grid description plus campaign-level aggregates."""
    failed = report.get("cells_failed", 0)
    verdict = ('<span class="ok">PASS</span>' if not failed
               else f'<span class="fail">{failed} FAILED</span>')
    incomplete = "" if report.get("complete", True) else \
        ' <span class="fail">(incomplete campaign)</span>'
    grid = _esc(json.dumps(report.get("grid", {}), sort_keys=True))
    return (
        f"<h1>Sweep campaign report</h1>"
        f'<p><code>{grid}</code></p>'
        f'<p class="summary">{verdict}{incomplete} '
        f'<span>{report.get("cells_passed", 0)}/{report.get("cells_total", 0)}'
        f" cells passed</span>"
        f'<span>{_fmt(float(report.get("wall_clock_sec", 0.0)), 2)}s wall'
        f" clock</span>"
        f'<span>workers={report.get("workers", 1)}</span>'
        f'<span>chunk={report.get("chunk", 1)}</span>'
        f'<span>resumed={report.get("resumed_cells", 0)}</span></p>')


def _matrix_section(cells: Sequence[Dict[str, object]]) -> str:
    """Scenario x seed pass/fail table (parameter cells AND-ed per seed)."""
    matrix: Dict[str, Dict[int, bool]] = {}
    for cell in cells:
        row = matrix.setdefault(cell["scenario"], {})
        seed = cell["seed"]
        row[seed] = row.get(seed, True) and bool(cell["ok"])
    seeds = sorted({seed for row in matrix.values() for seed in row})
    head = "".join(f"<th>s{seed}</th>" for seed in seeds)
    body = []
    for name, row in matrix.items():
        rendered = "".join(
            f'<td class="{"ok" if row[seed] else "fail"}">'
            f'{"ok" if row[seed] else "FAIL"}</td>'
            if seed in row else '<td class="muted">-</td>'
            for seed in seeds)
        body.append(f"<tr><td>{_esc(name)}</td>{rendered}</tr>")
    return (f"<h2>Pass/fail matrix</h2><table>"
            f"<tr><th>scenario</th>{head}</tr>{''.join(body)}</table>")


def _curves_section(cells: Sequence[Dict[str, object]]) -> str:
    """Per-scenario degradation curves over the grid's ``fault_rate`` axis."""
    by_scenario: Dict[str, Dict[float, List[Dict[str, object]]]] = {}
    for cell in cells:
        params = cell.get("params") or {}
        if "fault_rate" not in params:
            continue
        rates = by_scenario.setdefault(cell["scenario"], {})
        rates.setdefault(float(params["fault_rate"]), []).append(cell)
    if not by_scenario:
        return ""
    sections = ["<h2>Degradation curves (over <code>fault_rate</code>)</h2>"]
    for scenario, rates in sorted(by_scenario.items()):
        pass_curve = []
        p99_curve = []
        for rate in sorted(rates):
            group = rates[rate]
            pass_curve.append(
                (rate, sum(1 for c in group if c["ok"]) / len(group)))
            p99s = [c["read_latency"]["p99"] for c in group
                    if c.get("read_latency", {}).get("count")]
            if p99s:
                p99_curve.append((rate, sum(p99s) / len(p99s)))
        sections.append(
            f"<h3>{_esc(scenario)}</h3><div class=\"chartrow\">"
            + _chart(pass_curve, "pass fraction", color=PASS_COLOR,
                     lo=0.0, hi=1.0)
            + _chart(p99_curve, "mean p99 read latency (virtual s)")
            + "</div>")
    return "".join(sections)


def _slo_list(cell: Dict[str, object]) -> str:
    """The cell's SLO verdicts as a compact list ('-' when none attached)."""
    verdicts = (cell.get("metrics") or {}).get("slo") or []
    if not verdicts:
        return '<span class="muted">-</span>'
    items = []
    for entry in verdicts:
        if entry["ok"]:
            items.append(f'<li class="ok">&#10003; '
                         f'{_esc(entry["description"])}</li>')
        else:
            items.append(f'<li class="fail">&#10007; '
                         f'{_esc(entry["detail"] or entry["description"])}</li>')
    return f'<ul class="slo">{"".join(items)}</ul>'


def _cells_section(cells: Sequence[Dict[str, object]]) -> str:
    """The per-cell detail table, in grid-expansion order."""
    any_metrics = any(cell.get("metrics") for cell in cells)
    spark_head = "<th>read latency over virtual time</th><th>SLOs</th>" \
        if any_metrics else ""
    rows = []
    for cell in cells:
        status = ('<td class="ok">ok</td>' if cell["ok"]
                  else '<td class="fail">FAIL</td>')
        p99 = cell.get("read_latency", {}).get("p99", 0.0)
        spark = ""
        if any_metrics:
            spark = (f"<td>{_sparkline(_mean_series(cell, 'read_latency'))}"
                     f"</td><td>{_slo_list(cell)}</td>")
        rows.append(
            f"<tr><td><code>{_esc(cell['cell'])}</code></td>{status}"
            f"<td>{_esc(cell.get('checker_method') or '-')}</td>"
            f'<td class="num">{cell.get("history_ops", 0)}</td>'
            f'<td class="num">{_fmt(float(p99))}</td>'
            f'<td class="num">{_fmt(float(cell.get("wall_clock_sec", 0.0)), 2)}'
            f"</td>{spark}</tr>")
    return (f"<h2>Cells</h2><table><tr><th>cell</th><th>verdict</th>"
            f"<th>checker</th><th>ops</th><th>p99 read</th><th>wall s</th>"
            f"{spark_head}</tr>{''.join(rows)}</table>")


def render_campaign_html(report: Dict[str, object]) -> str:
    """Render a ``SweepResult.to_json()`` dict as one self-contained page.

    Accepts the live dict or the same JSON re-read from disk; the output
    depends only on the dict's contents, so archived campaign reports
    re-render byte-identically.
    """
    cells = report.get("cells", [])
    failed_cells = [cell for cell in cells if not cell["ok"]]
    failures = ""
    if failed_cells:
        items = "".join(
            f'<li><code>{_esc(cell["cell"])}</code>: '
            f'<span class="muted">{_esc((cell.get("failure") or "")[:400])}'
            f"</span></li>"
            for cell in failed_cells)
        failures = f"<h2>Failures</h2><ul>{items}</ul>"
    return ("<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
            "<title>Sweep campaign report</title>"
            f"<style>{_CSS}</style></head><body>"
            f"{_summary_section(report)}"
            f"{_matrix_section(cells)}"
            f"{_curves_section(cells)}"
            f"{failures}"
            f"{_cells_section(cells)}"
            "</body></html>\n")
