"""The campaign engine: fan sweep cells out over a warm process pool.

Each worker executes *batches* of ``(scenario, seed, params)`` cells
end-to-end -- run *and* verify -- and streams compact
:class:`~repro.sweep.result.RunRecord` lists back as the batches complete.
Histories, deployments and simulators never cross the process boundary;
only scalars, small dicts and the SHA-256 signature hash do.

Three things make campaigns scale past the 0.67x pooled regression the
pre-chunking engine recorded on small cells:

* **Chunking.**  Cells are milliseconds long but a pool task costs a
  pickle/unpickle round trip, so the engine batches many cells per task.
  The batch size is auto-sized from the *measured* cost of the first cell
  (targeting :data:`TARGET_TASK_SECONDS` of compute per task) and can be
  pinned with ``chunk=N``.
* **Warm workers.**  One persistent pool serves the whole campaign; each
  worker runs :func:`_warm_worker` exactly once (scenario registry,
  checker and value-interning imports), so per-batch work is pure compute.
* **Streaming results.**  Batches return via ``imap_unordered`` the moment
  they finish; checkpoint journaling, progress reporting and aggregation
  are incremental, not end-of-campaign.

Determinism: a cell is a pure function of its
:class:`~repro.sweep.grid.RunSpec` (``run_scenario_instance`` derives every
RNG stream from the scenario name and seed, and nothing in this module
shares mutable state between cells), so a cell's history signature is
byte-identical whether it runs in the parent process, any pool worker, any
batch layout, or another machine.  ``campaign(grid, jobs=1)`` and
``campaign(grid, jobs=N, chunk=M)`` therefore agree hash-for-hash on every
cell -- CI gates on exactly that -- and a checkpoint-resumed campaign
merges to the identical result.
"""

from __future__ import annotations

import functools
import gc
import multiprocessing
import os
import pathlib
import time
import traceback
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.sweep.checkpoint import Checkpoint
from repro.sweep.grid import RunSpec, SweepGrid
from repro.sweep.result import RunRecord, SweepResult, latency_summary

#: Auto-chunking aims for this much *compute* per pool task: large enough
#: to amortize the per-task pickle/dispatch cost (tens of microseconds)
#: down to noise, small enough that a campaign still streams progress and
#: balances across workers.
TARGET_TASK_SECONDS = 0.25

#: Upper bound on the auto-sized chunk so a pathological probe measurement
#: (e.g. a first cell that is 1000x cheaper than the rest) cannot serialise
#: the whole campaign into one task.
MAX_AUTO_CHUNK = 64


def _cgroup_cpu_quota(root: Union[str, pathlib.Path] = "/sys/fs/cgroup"
                      ) -> Optional[float]:
    """The container's CPU quota in cores, or ``None`` when unlimited.

    Reads cgroup v2 (``cpu.max``: ``"<quota> <period>"`` or ``"max ..."``)
    first, then cgroup v1 (``cpu/cpu.cfs_quota_us`` / ``cpu.cfs_period_us``,
    where ``-1`` means unlimited).  Errors and absent files mean "no quota".
    """
    root = pathlib.Path(root)
    try:
        parts = (root / "cpu.max").read_text().split()
        if parts and parts[0] != "max":
            quota = float(parts[0])
            period = float(parts[1]) if len(parts) > 1 else 100000.0
            if quota > 0 and period > 0:
                return quota / period
    except (OSError, ValueError):
        pass
    try:
        quota = float((root / "cpu" / "cpu.cfs_quota_us").read_text())
        period = float((root / "cpu" / "cpu.cfs_period_us").read_text())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def usable_cores() -> int:
    """Cores this process may actually use: affinity AND cgroup quota aware.

    ``os.cpu_count()`` reports the host; a containerised campaign is
    bounded by its CPU affinity mask *and* its cgroup CPU quota (a 16-core
    host with a 2-CPU quota can only ever deliver 2x).  ``default_jobs``
    and the benchmark speedup-floor arming logic both follow this number.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        cores = multiprocessing.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        cores = min(cores, max(1, int(quota)))
    return max(1, cores)


def default_jobs() -> int:
    """A sensible worker count: the usable cores, capped at 8."""
    return max(1, min(8, usable_cores()))


def execute_run(spec: RunSpec, streaming: bool = False,
                metrics: bool = False) -> RunRecord:
    """Run and verify one sweep cell; always returns a record, never raises.

    Verification is :meth:`ChaosRunResult.check` -- the same single source
    of truth ``verify()`` raises on -- recorded as the cell's failure text
    plus which checker algorithm decided.

    ``streaming=True`` runs the cell's history in bounded open-window mode:
    verification happens online, the worker never holds the full history,
    and the recorded ``signature_hash`` is byte-identical to the batch one
    (the ``--check-serial`` gate holds across modes, not just across pool
    layouts).

    ``metrics=True`` instruments the cell with a virtual-time metrics
    registry (see :mod:`repro.obs`) and attaches the exported
    :class:`~repro.obs.report.MetricsReport` dict to ``RunRecord.metrics``,
    plus the scenario's SLO verdicts under its ``slo`` key.  SLO failures
    are *reported, not gated*: ``RunRecord.ok`` stays a pure
    correctness/liveness verdict, because a degradation sweep deliberately
    pushes fault rates past the calibrated SLO envelope.  History
    signatures are byte-identical with metrics on or off (the differential
    tier-1 gate).
    """
    # Imported here so a spawn-start worker pays the import in its own
    # process and the module stays import-light for the CLI --list path.
    from repro.sweep.grid import SCENARIO_PARAM_FIELDS
    from repro.workloads.scenarios import get_scenario, run_scenario_instance

    start = time.perf_counter()
    try:
        scenario = get_scenario(spec.scenario)
        if spec.params:
            overrides = dict(spec.params)
            # Reconfiguration-rate axes override scenario fields; everything
            # else is a workload field.
            scenario_overrides = {field: overrides.pop(field)
                                  for field in SCENARIO_PARAM_FIELDS
                                  if field in overrides}
            if overrides:
                scenario = replace(scenario,
                                   workload=replace(scenario.workload, **overrides))
            if scenario_overrides:
                scenario = replace(scenario, **scenario_overrides)
                reconfig_axes = sorted(scenario_overrides.keys() &
                                       {"reconfig_cadence", "fresh_servers"})
                if scenario.num_reconfigs == 0 and reconfig_axes and \
                        "num_reconfigs" not in scenario_overrides:
                    # Mirror the explicit keyspace-axis mismatch error: a
                    # cadence/fresh-servers axis on a scenario that never
                    # reconfigures would expand to byte-identical cells
                    # presented as a real sweep.  (Sweeping num_reconfigs
                    # itself, including a 0 baseline, stays legitimate.)
                    raise ValueError(
                        f"grid axis {', '.join(reconfig_axes)} has no effect: "
                        f"scenario {spec.scenario!r} runs 0 reconfigurations;"
                        f" add a num_reconfigs axis")
                if "fault_rate" in scenario_overrides and \
                        scenario.background is None:
                    # Same inert-axis rule for the gray-failure knob: the
                    # stochastic background is what reads fault_rate, so on
                    # a scenario without one every cell would be identical.
                    raise ValueError(
                        f"grid axis fault_rate has no effect: scenario "
                        f"{spec.scenario!r} has no stochastic background; "
                        f"use a *_gray_degradation scenario")
                if "gc" in scenario_overrides and scenario.num_reconfigs == 0 \
                        and "num_reconfigs" not in scenario_overrides \
                        and "reconfig" not in scenario.faults:
                    # Retirement only runs as a reconfiguration phase; on a
                    # scenario that never reconfigures (neither a session
                    # nor schedule-fired migrations) a gc axis expands to
                    # byte-identical cells.
                    raise ValueError(
                        f"grid axis gc has no effect: scenario "
                        f"{spec.scenario!r} never reconfigures; add a "
                        f"num_reconfigs axis or pick a reconfig scenario")
        result = run_scenario_instance(scenario, seed=spec.seed,
                                       streaming=streaming, metrics=metrics)

        failure, checker_method = result.check()
        signature_hash = result.signature_hash()
        metrics_payload = None
        if result.metrics is not None:
            metrics_payload = dict(result.metrics.to_json())
            if scenario.slos:
                metrics_payload["slo"] = [
                    {"description": slo.description,
                     "ok": detail is None,
                     "detail": detail}
                    for slo, detail in ((slo, slo.evaluate(result.metrics))
                                        for slo in scenario.slos)]
        # Latency summaries come from the WorkloadResult (full lists in
        # batch mode, deterministic reservoir samples in streaming mode),
        # so the record never needs the folded history.
        return RunRecord(
            scenario=spec.scenario, seed=spec.seed, params=spec.params,
            ok=failure is None, failure=failure, signature_hash=signature_hash,
            wall_clock_sec=time.perf_counter() - start,
            history_ops=len(result.history),
            events=result.deployment.sim.events_processed,
            messages=result.deployment.network.messages_sent,
            checker_method=checker_method,
            read_latency=latency_summary(result.workload.read_latencies),
            write_latency=latency_summary(result.workload.write_latencies),
            metrics=metrics_payload,
        )
    except Exception:
        # One broken cell (unknown scenario, crashed run, checker error) must
        # not poison the campaign: report it as a failed record.
        return RunRecord(
            scenario=spec.scenario, seed=spec.seed, params=spec.params,
            ok=False, failure=f"cell crashed:\n{traceback.format_exc()}",
            signature_hash="", wall_clock_sec=time.perf_counter() - start,
            history_ops=0, events=0, messages=0, checker_method="")


def _warm_worker() -> None:
    """One-time per-worker initialisation (the warm-worker half of chunking).

    Imports the scenario registry, the linearizability checkers and the
    value-interning caches exactly once per worker process, so batch
    execution never pays import cost -- relevant under the ``spawn`` start
    method, and harmless under ``fork`` (the imports are already resolved
    and return instantly).
    """
    import repro.spec.linearizability  # noqa: F401
    import repro.workloads.scenarios  # noqa: F401


def _execute_batch(indexed_batch: Tuple[int, Sequence[RunSpec]],
                   streaming: bool = False,
                   metrics: bool = False) -> Tuple[int, List[RunRecord]]:
    """Worker task: run one batch of cells, return its index and records.

    The index lets the parent stream batches back out of completion order
    (``imap_unordered``) while still reassembling grid-expansion order.
    """
    index, batch = indexed_batch
    return index, [execute_run(spec, streaming=streaming, metrics=metrics)
                   for spec in batch]


def auto_chunk(per_cell_sec: float, pending_cells: int, jobs: int) -> int:
    """Batch size from a measured per-cell cost.

    Targets :data:`TARGET_TASK_SECONDS` of compute per task, keeps at least
    ~2 tasks per worker for dynamic load balance, and never exceeds
    :data:`MAX_AUTO_CHUNK`.
    """
    per_cell = max(per_cell_sec, 1e-5)
    by_cost = int(TARGET_TASK_SECONDS / per_cell)
    by_balance = -(-pending_cells // (2 * max(1, jobs)))  # ceil division
    return max(1, min(by_cost, by_balance, MAX_AUTO_CHUNK))


def _chunked(specs: Sequence[RunSpec], size: int) -> List[List[RunSpec]]:
    """Split ``specs`` into consecutive batches of at most ``size`` cells."""
    return [list(specs[start:start + size])
            for start in range(0, len(specs), size)]


def _pool_context():
    """Prefer fork (no re-import, no pickling of module state); fall back to
    the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def campaign(grid: SweepGrid, jobs: int = 1,
             progress: Optional[Callable[[RunRecord], None]] = None,
             streaming: bool = False,
             chunk: Optional[int] = None,
             checkpoint: Optional[Union[str, pathlib.Path]] = None,
             resume: bool = False,
             max_cells: Optional[int] = None,
             metrics: bool = False) -> SweepResult:
    """Execute every cell of ``grid`` and aggregate into a :class:`SweepResult`.

    ``jobs=1`` runs serially in-process (no pool, no pickling); ``jobs>1``
    fans *batches* of cells out over a persistent ``multiprocessing`` pool
    of warm workers, sized ``min(jobs, pending cells, usable_cores())`` and
    recorded as ``SweepResult.workers`` so reports reflect the pool that
    actually ran.  ``chunk`` pins the cells-per-task batch size; the
    default measures the first cell (run through the pool, so the timing is
    a real warm-worker number) and sizes batches via :func:`auto_chunk`.
    Batches stream back through ``imap_unordered``, so journaling, progress
    and aggregation are incremental; the final record list is reassembled
    in grid-expansion order, making the aggregate report deterministic
    regardless of completion order.

    ``checkpoint=PATH`` journals every completed cell to a JSONL file (see
    :mod:`repro.sweep.checkpoint`); with ``resume=True`` previously
    journaled cells are replayed instead of re-run, and the merged result
    is identical to an uninterrupted campaign.  ``max_cells=N`` stops after
    the first ``N`` not-yet-journaled cells (the scriptable "interrupt at
    50%%" used by the CI resume gate); the partial result has
    ``complete=False``.

    ``streaming=True`` makes every worker verify its cell online with a
    bounded open window (see :func:`execute_run`); cell hashes stay
    byte-identical to batch-mode runs of the same grid.

    ``metrics=True`` collects a per-cell virtual-time metrics report and
    the scenario SLO verdicts (see :func:`execute_run`); the reports ride
    the checkpoint journal, so an interrupted-and-resumed metrics campaign
    merges its per-cell reports byte-identically with an uninterrupted one.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    specs = grid.expand()
    start = time.perf_counter()

    journal: Optional[Checkpoint] = None
    if checkpoint is not None:
        journal = Checkpoint.open(checkpoint, grid, streaming=streaming,
                                  metrics=metrics, resume=resume)

    try:
        records_by_cell = {}
        if journal is not None:
            # Only journaled cells that belong to this grid count; the grid
            # fingerprint already guarantees they all do.
            records_by_cell = {spec.cell_id: journal.records[spec.cell_id]
                               for spec in specs
                               if spec.cell_id in journal.records}
        resumed = len(records_by_cell)
        pending = [spec for spec in specs
                   if spec.cell_id not in records_by_cell]
        if max_cells is not None:
            pending = pending[:max(0, max_cells)]

        def emit(record: RunRecord) -> None:
            # Journal first: a progress callback that raises (or a user
            # interrupt delivered inside it) must not lose the cell.
            if journal is not None:
                journal.append(record)
            records_by_cell[record.cell_id] = record
            if progress is not None:
                progress(record)

        pool_spinup = 0.0
        used_chunk = chunk if chunk is not None else 1
        used_workers = 1
        if jobs == 1 or not pending:
            for spec in pending:
                emit(execute_run(spec, streaming=streaming, metrics=metrics))
        else:
            run_batch = functools.partial(_execute_batch, streaming=streaming,
                                          metrics=metrics)
            ctx = _pool_context()
            spinup_start = time.perf_counter()
            # Forked workers inherit the parent heap copy-on-write; without
            # this, the children's refcount/GC traffic over inherited pages
            # faults-and-copies them and every cell runs measurably slower
            # than serial.  Collect first (smaller inheritance), then freeze
            # survivors into the permanent generation so child GC passes
            # stop rewriting them; the parent unfreezes once workers exist.
            gc.collect()
            gc.freeze()
            try:
                # jobs > 1 always goes through a real pool -- even for one
                # cell -- so a --check-serial gate genuinely compares pooled
                # against serial execution.  Worker processes are capped at
                # usable_cores(): cells are pure CPU, so oversubscribing a
                # host buys scheduler contention, not parallelism.  The cap
                # is recorded as SweepResult.workers so a --jobs 16 report
                # on an 8-core host says which pool size actually ran.
                used_workers = max(1, min(jobs, len(pending), usable_cores()))
                pool_ctx = ctx.Pool(processes=used_workers,
                                    initializer=_warm_worker)
            finally:
                gc.unfreeze()
            with pool_ctx as pool:
                pool_spinup = time.perf_counter() - spinup_start
                remaining = pending
                if chunk is None:
                    # Probe: the first cell runs alone (through the pool, so
                    # the measurement is warm-worker compute) and its cost
                    # sizes the batches for the rest of the campaign.
                    _, probe_records = pool.apply(run_batch,
                                                  ((0, remaining[:1]),))
                    emit(probe_records[0])
                    remaining = remaining[1:]
                    used_chunk = auto_chunk(probe_records[0].wall_clock_sec,
                                            len(remaining), jobs)
                batches = list(enumerate(_chunked(remaining, used_chunk)))
                for _, batch_records in pool.imap_unordered(run_batch, batches):
                    for record in batch_records:
                        emit(record)

        ordered = [records_by_cell[spec.cell_id] for spec in specs
                   if spec.cell_id in records_by_cell]
        return SweepResult(grid=grid.describe(), jobs=jobs, records=ordered,
                           wall_clock_sec=time.perf_counter() - start,
                           chunk=used_chunk, workers=used_workers,
                           pool_spinup_sec=pool_spinup,
                           resumed_cells=resumed,
                           complete=len(ordered) == len(specs))
    finally:
        if journal is not None:
            journal.close()
