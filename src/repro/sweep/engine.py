"""The campaign engine: fan sweep cells out over a process pool.

Each worker executes one ``(scenario, seed, params)`` cell end-to-end --
run *and* verify -- and returns a compact :class:`~repro.sweep.result.RunRecord`.
Histories, deployments and simulators never cross the process boundary;
only scalars, small dicts and the SHA-256 signature hash do.

Determinism: a cell is a pure function of its :class:`~repro.sweep.grid.RunSpec`
(``run_scenario_instance`` derives every RNG stream from the scenario name
and seed, and nothing in this module shares mutable state between cells), so
a cell's history signature is byte-identical whether it runs in the parent
process, a pool worker, or another machine.  ``campaign(grid, jobs=1)`` and
``campaign(grid, jobs=N)`` therefore agree hash-for-hash on every cell --
CI gates on exactly that.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
import traceback
from dataclasses import replace
from typing import Callable, Optional

from repro.sweep.grid import RunSpec, SweepGrid
from repro.sweep.result import RunRecord, SweepResult, latency_summary


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return multiprocessing.cpu_count()


def default_jobs() -> int:
    """A sensible worker count: the usable cores, capped at 8."""
    return max(1, min(8, usable_cores()))


def execute_run(spec: RunSpec, streaming: bool = False) -> RunRecord:
    """Run and verify one sweep cell; always returns a record, never raises.

    Verification is :meth:`ChaosRunResult.check` -- the same single source
    of truth ``verify()`` raises on -- recorded as the cell's failure text
    plus which checker algorithm decided.

    ``streaming=True`` runs the cell's history in bounded open-window mode:
    verification happens online, the worker never holds the full history,
    and the recorded ``signature_hash`` is byte-identical to the batch one
    (the ``--check-serial`` gate holds across modes, not just across pool
    layouts).
    """
    # Imported here so a spawn-start worker pays the import in its own
    # process and the module stays import-light for the CLI --list path.
    from repro.sweep.grid import SCENARIO_PARAM_FIELDS
    from repro.workloads.scenarios import get_scenario, run_scenario_instance

    start = time.perf_counter()
    try:
        scenario = get_scenario(spec.scenario)
        if spec.params:
            overrides = dict(spec.params)
            # Reconfiguration-rate axes override scenario fields; everything
            # else is a workload field.
            scenario_overrides = {field: overrides.pop(field)
                                  for field in SCENARIO_PARAM_FIELDS
                                  if field in overrides}
            if overrides:
                scenario = replace(scenario,
                                   workload=replace(scenario.workload, **overrides))
            if scenario_overrides:
                scenario = replace(scenario, **scenario_overrides)
                if scenario.num_reconfigs == 0 and \
                        "num_reconfigs" not in scenario_overrides:
                    # Mirror the explicit keyspace-axis mismatch error: a
                    # cadence/fresh-servers axis on a scenario that never
                    # reconfigures would expand to byte-identical cells
                    # presented as a real sweep.  (Sweeping num_reconfigs
                    # itself, including a 0 baseline, stays legitimate.)
                    inert = sorted(scenario_overrides)
                    raise ValueError(
                        f"grid axis {', '.join(inert)} has no effect: "
                        f"scenario {spec.scenario!r} runs 0 reconfigurations;"
                        f" add a num_reconfigs axis")
        result = run_scenario_instance(scenario, seed=spec.seed,
                                       streaming=streaming)

        failure, checker_method = result.check()
        signature_hash = result.signature_hash()
        # Latency summaries come from the WorkloadResult (full lists in
        # batch mode, deterministic reservoir samples in streaming mode),
        # so the record never needs the folded history.
        return RunRecord(
            scenario=spec.scenario, seed=spec.seed, params=spec.params,
            ok=failure is None, failure=failure, signature_hash=signature_hash,
            wall_clock_sec=time.perf_counter() - start,
            history_ops=len(result.history),
            events=result.deployment.sim.events_processed,
            messages=result.deployment.network.messages_sent,
            checker_method=checker_method,
            read_latency=latency_summary(result.workload.read_latencies),
            write_latency=latency_summary(result.workload.write_latencies),
        )
    except Exception:
        # One broken cell (unknown scenario, crashed run, checker error) must
        # not poison the campaign: report it as a failed record.
        return RunRecord(
            scenario=spec.scenario, seed=spec.seed, params=spec.params,
            ok=False, failure=f"cell crashed:\n{traceback.format_exc()}",
            signature_hash="", wall_clock_sec=time.perf_counter() - start,
            history_ops=0, events=0, messages=0, checker_method="")


def _pool_context():
    """Prefer fork (no re-import, no pickling of module state); fall back to
    the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def campaign(grid: SweepGrid, jobs: int = 1,
             progress: Optional[Callable[[RunRecord], None]] = None,
             streaming: bool = False) -> SweepResult:
    """Execute every cell of ``grid`` and aggregate into a :class:`SweepResult`.

    ``jobs=1`` runs serially in-process (no pool, no pickling); ``jobs>1``
    fans the cells out over a ``multiprocessing`` pool with ``chunksize=1``
    (cells are seconds-long, so dynamic scheduling beats pre-chunking).
    Records come back in grid-expansion order either way, so the aggregate
    report is deterministic regardless of completion order.

    ``streaming=True`` makes every worker verify its cell online with a
    bounded open window (see :func:`execute_run`); cell hashes stay
    byte-identical to batch-mode runs of the same grid.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = grid.expand()
    run_cell = functools.partial(execute_run, streaming=streaming)
    start = time.perf_counter()
    # jobs > 1 always goes through a real pool -- even for one cell -- so a
    # --check-serial gate genuinely compares pooled against serial execution.
    if jobs == 1:
        records = []
        for spec in specs:
            record = run_cell(spec)
            if progress is not None:
                progress(record)
            records.append(record)
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(specs))) as pool:
            # imap keeps submission order while letting the caller see each
            # record as soon as its worker finishes.
            records = []
            for record in pool.imap(run_cell, specs, chunksize=1):
                if progress is not None:
                    progress(record)
                records.append(record)
    return SweepResult(grid=grid.describe(), jobs=jobs, records=records,
                       wall_clock_sec=time.perf_counter() - start)
