"""CLI for the sweep engine: ``python -m repro.sweep``.

Examples::

    # the full registry, four seeds, four workers, auto-sized batches
    python -m repro.sweep --grid "scenarios=all;seeds=0..3" --jobs 4

    # a parameter grid over two object sizes, written to a report file
    python -m repro.sweep --grid "scenarios=treas_*;seeds=0;value_size=256,4096" \
        --jobs 2 --output sweep.json

    # a long campaign that survives interruption: journal every cell,
    # resume skips the journaled ones
    python -m repro.sweep --grid "scenarios=all;seeds=0..9" --jobs 4 \
        --checkpoint sweep.ckpt
    python -m repro.sweep --grid "scenarios=all;seeds=0..9" --jobs 4 \
        --checkpoint sweep.ckpt --resume

    # CI determinism gate: pooled and serial execution must agree
    # hash-for-hash (a seed-deterministic sample of 8 cells by default;
    # --check-serial=all re-runs the whole grid)
    python -m repro.sweep --grid "scenarios=abd_crash_minority;seeds=0..1" \
        --jobs 2 --check-serial

    # adaptive frontier search: bisect the event budget to the smallest
    # value at which the scenario still completes and verifies
    python -m repro.sweep --grid "scenarios=store_mixed_dap_storm;seeds=0..2" \
        --bisect "max_events=500..60000" --output frontier.json

    # degradation campaign with per-cell virtual-time metrics, SLO
    # verdicts and a self-contained HTML report (--report implies --metrics)
    python -m repro.sweep \
        --grid "scenarios=*_gray_degradation;seeds=0..2;fault_rate=0.0,0.05,0.1" \
        --jobs 4 --metrics --report campaign.html

Exit status: 0 when every cell passed (and every ``--check-serial``
signature matched / every ``--bisect`` monotonicity probe agreed); 1 on
failures; 2 on checkpoint misuse; 3 when a ``--stop-after`` campaign
stopped early with no failures (resume it to finish).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys

from repro.sweep.adaptive import AdaptiveCampaign
from repro.sweep.checkpoint import CheckpointError, grid_fingerprint
from repro.sweep.engine import campaign, default_jobs, execute_run
from repro.sweep.grid import GRID_PARAM_FIELDS, SweepGrid, parse_grid
from repro.sweep.result import RunRecord, SweepResult

#: Bare ``--check-serial`` re-runs this many seed-deterministically sampled
#: cells serially (``--check-serial=all`` for the exhaustive gate).
DEFAULT_SERIAL_SAMPLE = 8


def _print_progress(record: RunRecord) -> None:
    status = "ok" if record.ok else "FAIL"
    print(f"  [{status:>4}] {record.cell_id:<45} {record.wall_clock_sec:6.2f}s "
          f"ops={record.history_ops} checker={record.checker_method or '-'}")


def _compare_signatures(pooled: SweepResult, serial: SweepResult) -> int:
    """Print and count serial-vs-parallel signature mismatches."""
    mismatches = 0
    serial_map = serial.signature_map()
    for cell, pooled_hash in pooled.signature_map().items():
        serial_hash = serial_map.get(cell)
        if serial_hash != pooled_hash:
            mismatches += 1
            print(f"SIGNATURE MISMATCH {cell}: pooled {pooled_hash[:16]}... "
                  f"!= serial {(serial_hash or 'missing')[:16]}...")
    if mismatches == 0:
        print(f"signature gate: all {len(serial_map)} cells byte-identical "
              "between pooled and serial execution")
    return mismatches


def _sampled_serial_check(result: SweepResult, grid: SweepGrid,
                          sample: int) -> dict:
    """Re-run a seed-deterministic sample of cells serially and compare.

    The sample is drawn from an RNG seeded by the grid fingerprint, so
    every invocation over the same grid gates the same cells -- a CI rerun
    cannot dodge a mismatch by sampling differently.  The serial leg calls
    :func:`execute_run` directly in-process (batch verification mode), so
    with ``--streaming`` this also crosses the mode boundary.
    """
    specs = grid.expand()
    rng = random.Random(grid_fingerprint(grid, streaming=False))
    count = min(sample, len(specs))
    chosen = [specs[i] for i in sorted(rng.sample(range(len(specs)), count))]
    pooled_map = result.signature_map()
    print(f"\nsignature gate: re-running {count} of {len(specs)} cells "
          "serially (seed-deterministic sample)...")
    mismatches = 0
    checked = 0
    for spec in chosen:
        pooled_hash = pooled_map.get(spec.cell_id)
        if pooled_hash is None:  # cell not in this (partial) campaign
            continue
        checked += 1
        serial_hash = execute_run(spec).signature_hash
        if serial_hash != pooled_hash:
            mismatches += 1
            print(f"SIGNATURE MISMATCH {spec.cell_id}: pooled "
                  f"{pooled_hash[:16]}... != serial {serial_hash[:16]}...")
    if mismatches == 0:
        print(f"signature gate: all {checked} sampled cells byte-identical "
              "between pooled and serial execution")
    return {"mode": "sample", "cells_checked": checked,
            "mismatches": mismatches}


def _parse_bisect(text: str, parser: argparse.ArgumentParser):
    """Parse ``AXIS=LO..HI`` into a typed (axis, lo, hi) triple."""
    axis, sep, bracket = text.partition("=")
    axis = axis.strip()
    if not sep or axis not in GRID_PARAM_FIELDS:
        parser.error(f"--bisect wants AXIS=LO..HI with AXIS one of "
                     f"{', '.join(sorted(GRID_PARAM_FIELDS))}; got {text!r}")
    lo_text, sep, hi_text = bracket.partition("..")
    caster = GRID_PARAM_FIELDS[axis]
    try:
        if not sep:
            raise ValueError
        lo, hi = caster(lo_text), caster(hi_text)
    except ValueError:
        parser.error(f"--bisect bracket {bracket!r} is not LO..HI "
                     f"{caster.__name__} values")
    return axis, lo, hi


def _run_bisect(args, grid: SweepGrid, parser: argparse.ArgumentParser) -> int:
    """The ``--bisect`` mode: one frontier campaign per grid scenario."""
    axis, lo, hi = _parse_bisect(args.bisect, parser)
    base_params = []
    for field, values in grid.params:
        if len(values) != 1:
            parser.error(f"--bisect pins other axes to single values; grid "
                         f"axis {field!r} has {len(values)}")
        base_params.append((field, values[0]))
    progress = None if args.quiet else _print_progress

    exit_code = 0
    campaigns = []
    for scenario in grid.scenarios:
        print(f"bisect: {scenario} {axis}={lo}..{hi} "
              f"seeds={','.join(str(s) for s in grid.seeds)}")
        frontier = AdaptiveCampaign(
            scenario=scenario, axis=axis, lo=lo, hi=hi, seeds=grid.seeds,
            base_params=tuple(base_params),
            streaming=args.streaming).run(progress=progress)
        campaigns.append(frontier.to_json())
        mono = "monotone" if frontier.monotonic else \
            f"NOT MONOTONE at {[v for v, _, _ in frontier.violations]}"
        print(f"frontier {scenario}/{axis}: {frontier.direction} -> "
              f"{frontier.frontier} ({len(frontier.records)} probe cells, "
              f"{frontier.wall_clock_sec:.2f}s, {mono})")
        if not frontier.monotonic:
            exit_code = 1

    if args.output is not None:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps({"kind": "frontier-report",
                                    "bisect": args.bisect,
                                    "campaigns": campaigns}, indent=1) + "\n")
        print(f"wrote {path}")
    return exit_code


def main(argv=None) -> int:
    """Entry point of ``python -m repro.sweep``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a scenario x seed x parameter campaign over a process pool.")
    parser.add_argument("--grid", default="scenarios=all;seeds=0",
                        help='grid spec, e.g. "scenarios=all;seeds=0..3;value_size=256,1024"')
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool size (default: usable cores, capped at 8)")
    parser.add_argument("--chunk", type=int, default=None, metavar="N",
                        help="cells per worker task (default: auto-sized from "
                             "the measured cost of the first cell)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="journal every completed cell to this JSONL file")
    parser.add_argument("--resume", action="store_true",
                        help="with --checkpoint: skip cells already journaled "
                             "for this exact grid instead of re-running them")
    parser.add_argument("--stop-after", type=int, default=None, metavar="N",
                        help="stop after N not-yet-journaled cells (exit 3 if "
                             "that leaves the campaign incomplete; resume to "
                             "finish)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--check-serial", nargs="?", const=str(DEFAULT_SERIAL_SAMPLE),
                        default=None, metavar="N|all",
                        help="re-run N seed-deterministically sampled cells "
                             f"(default {DEFAULT_SERIAL_SAMPLE}; 'all' for the "
                             "whole grid) serially and fail unless every "
                             "history signature matches the pooled run")
    parser.add_argument("--streaming", action="store_true",
                        help="verify each cell online with a bounded open "
                             "window (O(open window) worker memory; cell "
                             "hashes stay byte-identical to batch mode)")
    parser.add_argument("--metrics", action="store_true",
                        help="instrument every cell with the virtual-time "
                             "metrics registry: per-cell reports and SLO "
                             "verdicts land in the JSON output and the "
                             "checkpoint journal (SLO failures are reported, "
                             "not gated)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write a self-contained HTML campaign report "
                             "(pass/fail matrix, degradation curves, per-cell "
                             "sparklines; implies --metrics)")
    parser.add_argument("--bisect", default=None, metavar="AXIS=LO..HI",
                        help="adaptive mode: bisect this grid axis to the "
                             "pass/fail frontier for each grid scenario "
                             "instead of enumerating cells")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    if args.list:
        from repro.workloads.scenarios import SCENARIOS

        for name, scenario in SCENARIOS.items():
            print(f"{name:<28} {scenario.description}")
        return 0

    if args.resume and args.checkpoint is None:
        parser.error("--resume needs --checkpoint PATH")
    if args.bisect is not None:
        for flag in ("checkpoint", "stop_after", "check_serial", "report"):
            if getattr(args, flag) is not None:
                parser.error(f"--bisect is probe-driven; "
                             f"--{flag.replace('_', '-')} does not apply")
        if args.metrics:
            parser.error("--bisect is probe-driven; --metrics does not apply")
    if args.report is not None:
        args.metrics = True

    grid = parse_grid(args.grid)
    if args.bisect is not None:
        return _run_bisect(args, grid, parser)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    specs = grid.expand()
    print(f"sweep: {len(specs)} cells "
          f"({len(grid.scenarios)} scenarios x {len(grid.seeds)} seeds"
          f"{' x params' if grid.params else ''}), jobs={jobs}")

    progress = None if args.quiet else _print_progress
    try:
        result = campaign(grid, jobs=jobs, progress=progress,
                          streaming=args.streaming, chunk=args.chunk,
                          checkpoint=args.checkpoint, resume=args.resume,
                          max_cells=args.stop_after, metrics=args.metrics)
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2

    print()
    print(result.render_matrix())
    resumed = f", {result.resumed_cells} resumed from checkpoint" \
        if result.resumed_cells else ""
    capped = f" (capped from jobs={result.jobs})" \
        if result.workers < result.jobs else ""
    print(f"\n{result.passed}/{len(result.records)} cells passed in "
          f"{result.wall_clock_sec:.2f}s wall "
          f"(cell time sum {sum(r.wall_clock_sec for r in result.records):.2f}s, "
          f"workers={result.workers}{capped}, chunk={result.chunk}{resumed}, "
          f"checker methods {result.checker_method_counts()})")
    if not result.complete:
        print(f"campaign INCOMPLETE: {len(result.records)}/{len(specs)} cells "
              "have records; resume with --checkpoint ... --resume to finish")
    for record in result.failures():
        print(f"\nFAILED {record.cell_id}:\n{record.failure}")
    if args.metrics:
        # SLO verdicts are informational at the CLI: a degradation sweep
        # deliberately pushes fault rates past the calibrated envelope, so
        # broken SLOs there are the data, not a campaign failure.  The
        # tier-1 SLO regression tests are where verdicts gate.
        slo_failures = [(record.cell_id, entry)
                        for record in result.records
                        for entry in (record.metrics or {}).get("slo", ())
                        if not entry["ok"]]
        cells_with_slos = sum(1 for record in result.records
                              if (record.metrics or {}).get("slo"))
        print(f"SLO verdicts: {len(slo_failures)} failed across "
              f"{cells_with_slos} cells with attached SLOs")
        for cell_id, entry in slo_failures:
            print(f"  SLO BROKEN {cell_id}: {entry['detail']}")

    exit_code = 0 if result.ok else 1

    report = result.to_json()
    if args.check_serial is not None:
        if args.check_serial == "all":
            # The serial leg always runs in batch mode: with --streaming the
            # gate therefore checks streaming-pooled against batch-serial,
            # i.e. both the pool layout AND the streaming fold are
            # byte-identical.
            print("\nre-running the whole grid serially for the signature "
                  "gate...")
            serial = campaign(grid, jobs=1)
            mismatches = _compare_signatures(result, serial)
            report["serial_check"] = {
                "mode": "all",
                "serial_wall_clock_sec": round(serial.wall_clock_sec, 4),
                "mismatches": mismatches,
            }
            if not mismatches and serial.wall_clock_sec > 0 and jobs > 1:
                speedup = serial.wall_clock_sec / result.wall_clock_sec
                report["serial_check"]["speedup"] = round(speedup, 2)
                print(f"parallel speedup at jobs={jobs}: {speedup:.2f}x")
        else:
            try:
                sample = int(args.check_serial)
                if sample < 1:
                    raise ValueError
            except ValueError:
                parser.error(f"--check-serial wants a positive cell count or "
                             f"'all', got {args.check_serial!r}")
            report["serial_check"] = _sampled_serial_check(result, grid, sample)
        if report["serial_check"]["mismatches"]:
            exit_code = 1

    if exit_code == 0 and not result.complete:
        exit_code = 3

    if args.output is not None:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {path}")

    if args.report is not None:
        path = pathlib.Path(args.report)
        path.write_text(result.render_html(), encoding="utf-8")
        print(f"wrote {path}")

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
