"""CLI for the sweep engine: ``python -m repro.sweep``.

Examples::

    # the full registry, four seeds, four workers
    python -m repro.sweep --grid "scenarios=all;seeds=0..3" --jobs 4

    # a parameter grid over two object sizes, written to a report file
    python -m repro.sweep --grid "scenarios=treas_*;seeds=0;value_size=256,4096" \
        --jobs 2 --output sweep.json

    # CI determinism gate: pooled and serial execution must agree
    # hash-for-hash on every cell
    python -m repro.sweep --grid "scenarios=abd_crash_minority;seeds=0..1" \
        --jobs 2 --check-serial

Exit status: 0 when every cell passed (and, with ``--check-serial``, every
signature matched); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.sweep.engine import campaign, default_jobs
from repro.sweep.grid import parse_grid
from repro.sweep.result import RunRecord, SweepResult


def _print_progress(record: RunRecord) -> None:
    status = "ok" if record.ok else "FAIL"
    print(f"  [{status:>4}] {record.cell_id:<45} {record.wall_clock_sec:6.2f}s "
          f"ops={record.history_ops} checker={record.checker_method or '-'}")


def _compare_signatures(pooled: SweepResult, serial: SweepResult) -> int:
    """Print and count serial-vs-parallel signature mismatches."""
    mismatches = 0
    serial_map = serial.signature_map()
    for cell, pooled_hash in pooled.signature_map().items():
        serial_hash = serial_map.get(cell)
        if serial_hash != pooled_hash:
            mismatches += 1
            print(f"SIGNATURE MISMATCH {cell}: pooled {pooled_hash[:16]}... "
                  f"!= serial {(serial_hash or 'missing')[:16]}...")
    if mismatches == 0:
        print(f"signature gate: all {len(serial_map)} cells byte-identical "
              "between pooled and serial execution")
    return mismatches


def main(argv=None) -> int:
    """Entry point of ``python -m repro.sweep``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a scenario x seed x parameter campaign over a process pool.")
    parser.add_argument("--grid", default="scenarios=all;seeds=0",
                        help='grid spec, e.g. "scenarios=all;seeds=0..3;value_size=256,1024"')
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool size (default: available cores, capped at 8)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--check-serial", action="store_true",
                        help="re-run the grid serially and fail unless every "
                             "cell's history signature matches the pooled run")
    parser.add_argument("--streaming", action="store_true",
                        help="verify each cell online with a bounded open "
                             "window (O(open window) worker memory; cell "
                             "hashes stay byte-identical to batch mode)")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    if args.list:
        from repro.workloads.scenarios import SCENARIOS

        for name, scenario in SCENARIOS.items():
            print(f"{name:<28} {scenario.description}")
        return 0

    grid = parse_grid(args.grid)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    specs = grid.expand()
    print(f"sweep: {len(specs)} cells "
          f"({len(grid.scenarios)} scenarios x {len(grid.seeds)} seeds"
          f"{' x params' if grid.params else ''}), jobs={jobs}")

    progress = None if args.quiet else _print_progress
    result = campaign(grid, jobs=jobs, progress=progress,
                      streaming=args.streaming)

    print()
    print(result.render_matrix())
    print(f"\n{result.passed}/{len(result.records)} cells passed in "
          f"{result.wall_clock_sec:.2f}s wall "
          f"(cell time sum {sum(r.wall_clock_sec for r in result.records):.2f}s, "
          f"checker methods {result.checker_method_counts()})")
    for record in result.failures():
        print(f"\nFAILED {record.cell_id}:\n{record.failure}")

    exit_code = 0 if result.ok else 1

    report = result.to_json()
    if args.check_serial:
        # The serial leg always runs in batch mode: with --streaming the
        # gate therefore checks streaming-pooled against batch-serial, i.e.
        # both the pool layout AND the streaming fold are byte-identical.
        print("\nre-running serially for the signature gate...")
        serial = campaign(grid, jobs=1)
        mismatches = _compare_signatures(result, serial)
        report["serial_check"] = {
            "serial_wall_clock_sec": round(serial.wall_clock_sec, 4),
            "mismatches": mismatches,
        }
        if mismatches:
            exit_code = 1
        elif serial.wall_clock_sec > 0 and jobs > 1:
            speedup = serial.wall_clock_sec / result.wall_clock_sec
            report["serial_check"]["speedup"] = round(speedup, 2)
            print(f"parallel speedup at jobs={jobs}: {speedup:.2f}x")

    if args.output is not None:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {path}")

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
