"""Adaptive frontier search: bisect a parameter axis to the pass/fail edge.

Exhaustive grids answer "what happens at these N points"; an
:class:`AdaptiveCampaign` answers "where is the edge" in ``O(log N)``
probes.  It drives one numeric grid axis (any :data:`GRID_PARAM_FIELDS`
field -- the canonical example is ``max_events``, the simulator event
budget, whose exhaustion is a livelock failure) and bisects toward the
frontier between passing and failing cells.

The bisection oracle is *monotonicity-checked*: bisection is only sound if
pass/fail is monotone along the axis, so after locating the frontier the
campaign spends a few extra seed-deterministic probes on each side and
reports any violation (``monotonic=False`` plus the offending values)
instead of silently returning a frontier that does not exist.

Every probe is an ordinary sweep cell -- executed by
:func:`~repro.sweep.engine.execute_run`, verified by the same checker, and
logged as a :class:`~repro.sweep.result.RunRecord` -- so frontier reports
carry the same evidence (signature hashes, failure text, checker method)
as grid campaigns.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sweep.grid import GRID_PARAM_FIELDS, RunSpec
from repro.sweep.result import RunRecord

#: Bisection on a float axis stops when the bracket shrinks below this
#: fraction of the initial range (int axes bisect to an exact step of 1).
FLOAT_RESOLUTION = 1.0 / 256.0


@dataclass
class BisectionOutcome:
    """What :func:`bisect_axis` concluded about one oracle + bracket.

    ``direction`` is one of ``"min_passing"`` (fails at ``lo``, passes at
    ``hi``; ``frontier`` is the smallest passing value found),
    ``"max_passing"`` (the mirror image), ``"all_pass"`` or ``"all_fail"``
    (no frontier inside the bracket; ``frontier`` is ``lo`` resp. ``None``).
    """

    direction: str
    frontier: Optional[object]
    #: Every value the oracle was asked about, in probe order.
    probed: List[Tuple[object, bool]] = field(default_factory=list)


def bisect_axis(oracle: Callable[[object], bool], lo: object, hi: object,
                integer: bool = True) -> BisectionOutcome:
    """Bisect ``[lo, hi]`` to the oracle's pass/fail frontier.

    The oracle must be deterministic and (for the frontier to be
    meaningful) monotone over the bracket; :class:`AdaptiveCampaign`
    verifies the latter with extra probes.  ``integer=True`` bisects on
    whole values down to adjacent points; otherwise the bracket shrinks to
    :data:`FLOAT_RESOLUTION` of its initial width.
    """
    if not lo < hi:
        raise ValueError(f"bisection bracket needs lo < hi, got {lo}..{hi}")
    probed: List[Tuple[object, bool]] = []

    def ask(value: object) -> bool:
        ok = oracle(value)
        probed.append((value, ok))
        return ok

    ok_lo, ok_hi = ask(lo), ask(hi)
    if ok_lo and ok_hi:
        return BisectionOutcome("all_pass", lo, probed)
    if not ok_lo and not ok_hi:
        return BisectionOutcome("all_fail", None, probed)

    # Exactly one end passes: shrink the bracket keeping lo failing-side
    # semantics fixed by direction.
    direction = "min_passing" if ok_hi else "max_passing"
    resolution = 1 if integer else (hi - lo) * FLOAT_RESOLUTION
    while (hi - lo) > resolution:
        mid = (lo + hi) // 2 if integer else (lo + hi) / 2
        if mid == lo or mid == hi:  # integer bracket closed
            break
        if ask(mid) == ok_hi:
            hi = mid
        else:
            lo = mid
    frontier = hi if direction == "min_passing" else lo
    return BisectionOutcome(direction, frontier, probed)


@dataclass
class FrontierResult:
    """The outcome of one adaptive frontier campaign."""

    scenario: str
    axis: str
    lo: object
    hi: object
    seeds: Tuple[int, ...]
    direction: str
    #: The frontier value (smallest passing for ``min_passing``, largest
    #: passing for ``max_passing``, ``lo`` for ``all_pass``) or ``None``
    #: when every probe failed.
    frontier: Optional[object]
    #: Whether the verification probes were consistent with a monotone
    #: pass/fail boundary (bisection is only meaningful if they were).
    monotonic: bool
    #: ``(value, expected_ok, observed_ok)`` for each violated probe.
    violations: List[Tuple[object, bool, bool]]
    #: Every cell executed, in probe order (bisection then verification).
    records: List[RunRecord]
    wall_clock_sec: float

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable frontier report (CI uploads this artifact)."""
        return {
            "scenario": self.scenario,
            "axis": self.axis,
            "bracket": [self.lo, self.hi],
            "seeds": list(self.seeds),
            "direction": self.direction,
            "frontier": self.frontier,
            "monotonic": self.monotonic,
            "violations": [list(item) for item in self.violations],
            "probes": len(self.records),
            "wall_clock_sec": round(self.wall_clock_sec, 4),
            "cells": [record.to_json() for record in self.records],
        }


@dataclass
class AdaptiveCampaign:
    """Bisect one scenario's parameter axis to its pass/fail frontier.

    A probe value *passes* only if the cell verifies for **every** seed in
    ``seeds`` (the frontier of the worst seed is the honest one to report).
    ``base_params`` pins the other grid axes for every probe.  Probes are
    cached by value, so the bracket endpoints, bisection midpoints and
    verification probes never re-run a cell.

    The CLI form is ``python -m repro.sweep --bisect max_events=500..60000``.
    """

    scenario: str
    axis: str
    lo: object
    hi: object
    seeds: Tuple[int, ...] = (0,)
    base_params: Tuple[Tuple[str, object], ...] = ()
    streaming: bool = False
    #: Extra seed-deterministic probes per side of the frontier spent
    #: checking that pass/fail really is monotone over the bracket.
    verify_probes: int = 2

    def __post_init__(self) -> None:
        if self.axis not in GRID_PARAM_FIELDS:
            raise ValueError(
                f"unknown bisection axis {self.axis!r}; allowed: "
                f"{', '.join(sorted(GRID_PARAM_FIELDS))}")
        if any(key == self.axis for key, _ in self.base_params):
            raise ValueError(
                f"axis {self.axis!r} cannot also be a fixed parameter")
        caster = GRID_PARAM_FIELDS[self.axis]
        object.__setattr__(self, "lo", caster(self.lo))
        object.__setattr__(self, "hi", caster(self.hi))
        if not self.lo < self.hi:
            raise ValueError(
                f"bisection bracket needs lo < hi, got {self.lo}..{self.hi}")

    def _integer_axis(self) -> bool:
        return GRID_PARAM_FIELDS[self.axis] is int

    def run(self, progress: Optional[Callable[[RunRecord], None]] = None
            ) -> FrontierResult:
        """Run the bisection plus monotonicity verification."""
        from repro.sweep.engine import execute_run

        start = time.perf_counter()
        records: List[RunRecord] = []
        cache: Dict[object, bool] = {}

        def oracle(value: object) -> bool:
            if value in cache:
                return cache[value]
            ok = True
            for seed in self.seeds:
                params = tuple(sorted(self.base_params
                                      + ((self.axis, value),)))
                record = execute_run(
                    RunSpec(scenario=self.scenario, seed=seed, params=params),
                    streaming=self.streaming)
                records.append(record)
                if progress is not None:
                    progress(record)
                ok = ok and record.ok
            cache[value] = ok
            return ok

        outcome = bisect_axis(oracle, self.lo, self.hi,
                              integer=self._integer_axis())

        monotonic, violations = self._verify_monotone(oracle, outcome)
        return FrontierResult(
            scenario=self.scenario, axis=self.axis, lo=self.lo, hi=self.hi,
            seeds=self.seeds, direction=outcome.direction,
            frontier=outcome.frontier, monotonic=monotonic,
            violations=violations, records=records,
            wall_clock_sec=time.perf_counter() - start)

    def _verify_monotone(self, oracle: Callable[[object], bool],
                         outcome: BisectionOutcome
                         ) -> Tuple[bool, List[Tuple[object, bool, bool]]]:
        """Spend a few extra probes checking the monotone-oracle assumption.

        For a ``min_passing`` frontier every value >= frontier must pass
        and every value < frontier must fail (mirrored for
        ``max_passing``); ``all_pass`` / ``all_fail`` brackets must stay
        uniform at sampled interior points.  Probe values are drawn from an
        RNG seeded by the campaign identity, so reruns probe identically.
        """
        if self.verify_probes <= 0:
            return True, []
        rng = random.Random(
            f"adaptive-{self.scenario}-{self.axis}-{self.lo}-{self.hi}")
        integer = self._integer_axis()

        def draw(lo: object, hi: object) -> Optional[object]:
            if not lo < hi:
                return None
            if integer:
                return rng.randint(lo, hi) if hi >= lo else None
            return rng.uniform(lo, hi)

        # The bisection bracket only converges to adjacent ints (or a float
        # resolution), so failing-side probes must stay at or below the
        # largest value *known* to fail -- not merely below the frontier.
        failed = [value for value, ok in outcome.probed if not ok]
        checks: List[Tuple[object, bool]] = []  # (value, expected_ok)
        for _ in range(self.verify_probes):
            if outcome.direction == "min_passing":
                checks.append((draw(outcome.frontier, self.hi), True))
                if failed:
                    checks.append((draw(self.lo, max(failed)), False))
            elif outcome.direction == "max_passing":
                checks.append((draw(self.lo, outcome.frontier), True))
                if failed:
                    checks.append((draw(min(failed), self.hi), False))
            elif outcome.direction == "all_pass":
                checks.append((draw(self.lo, self.hi), True))
            else:  # all_fail
                checks.append((draw(self.lo, self.hi), False))

        violations: List[Tuple[object, bool, bool]] = []
        for value, expected in checks:
            if value is None:
                continue
            observed = oracle(value)
            if observed != expected:
                violations.append((value, expected, observed))
        return not violations, violations
