"""Scale-out sweep engine: parallel scenario x seed x parameter campaigns.

The ICDCS'19 evaluation is a grid -- every DAP crossed with object sizes,
client counts and fault cadences.  This package expands a declarative
:class:`~repro.sweep.grid.SweepGrid` into run specs, fans them out over a
process pool (:func:`~repro.sweep.engine.campaign`), and aggregates compact
per-run records into a :class:`~repro.sweep.result.SweepResult`.  The CLI::

    PYTHONPATH=src python -m repro.sweep --grid "scenarios=all;seeds=0..3" --jobs 4

runs a campaign, prints the pass/fail matrix and can gate on serial-vs-
parallel signature equality (``--check-serial``).
"""

from repro.sweep.adaptive import AdaptiveCampaign, FrontierResult, bisect_axis
from repro.sweep.checkpoint import Checkpoint, CheckpointError, grid_fingerprint
from repro.sweep.engine import (auto_chunk, campaign, default_jobs,
                                execute_run, usable_cores)
from repro.sweep.grid import (GRID_PARAM_FIELDS, RunSpec, SCENARIO_PARAM_FIELDS,
                              SweepGrid, WORKLOAD_PARAM_FIELDS,
                              parse_grid, parse_seeds, resolve_scenarios)
from repro.sweep.result import RunRecord, SweepResult, latency_summary

__all__ = [
    "AdaptiveCampaign",
    "Checkpoint",
    "CheckpointError",
    "FrontierResult",
    "GRID_PARAM_FIELDS",
    "RunRecord",
    "RunSpec",
    "SCENARIO_PARAM_FIELDS",
    "SweepGrid",
    "SweepResult",
    "WORKLOAD_PARAM_FIELDS",
    "auto_chunk",
    "bisect_axis",
    "campaign",
    "default_jobs",
    "execute_run",
    "grid_fingerprint",
    "latency_summary",
    "parse_grid",
    "parse_seeds",
    "resolve_scenarios",
]
