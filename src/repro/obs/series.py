"""Windowed metric series sampled in virtual time.

Three series types back the observability plane: :class:`Counter` (monotone
event counts), :class:`Gauge` (last-value-wins levels) and
:class:`WindowedHistogram` (latency-style value distributions).  All three
bucket their samples into fixed-width windows of **virtual** time -- the
timestamps come from the simulator clock, never the wall clock -- so a
metric trace is as deterministic as the run that produced it.

Memory is bounded two ways:

* every series keeps at most :data:`DEFAULT_MAX_WINDOWS` closed windows;
  when the cap is hit, adjacent windows are merged pairwise and the window
  width doubles (deterministic coarsening, oldest data gets blurrier);
* histograms keep bounded reservoirs -- one per open window and one for the
  whole run -- filled with Vitter's algorithm R driven by a private
  :class:`random.Random` seeded from the series name, so reservoir contents
  are a pure function of the observation sequence.

Nothing in this module schedules simulator events or touches any of the
run's seeded RNG streams; recording a sample cannot perturb a simulation.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_MAX_WINDOWS",
    "DEFAULT_RESERVOIR",
    "DEFAULT_WINDOW",
    "Counter",
    "Gauge",
    "WindowedHistogram",
    "nearest_rank",
]

#: Default window width, in virtual seconds.  Scenario runs span hundreds
#: to thousands of virtual seconds, so 20s windows still give 25-500 points
#: per series while keeping window rolls (the priciest part of recording a
#: sample) off the common path.
DEFAULT_WINDOW = 20.0

#: Closed windows retained per series before pairwise coarsening kicks in.
DEFAULT_MAX_WINDOWS = 64

#: Capacity of a histogram's whole-run value reservoir.
DEFAULT_RESERVOIR = 512

#: Capacity of the per-open-window sample buffer used for window quantiles.
_WINDOW_RESERVOIR = 128


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sequence.

    Mirrors the sweep layer's ``latency_summary`` convention: the q-th
    quantile is the value at rank ``ceil(q * n)`` (1-based).  Edge cases are
    explicit: an empty sequence yields ``0.0``, a single sample yields that
    sample, and an all-equal sequence yields the common value for every q.
    """
    if not ordered:
        return 0.0
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


class _Windowed:
    """Shared machinery: fixed-width windows with pairwise coarsening.

    Subclasses store one list per closed window (first element: the window
    start time) plus a live window; :meth:`_merge_pair` defines how two
    adjacent windows fold together when the retention cap forces the width
    to double.
    """

    __slots__ = ("name", "width", "max_windows", "_done", "_live")

    def __init__(self, name: str, width: float, max_windows: int) -> None:
        self.name = name
        self.width = float(width)
        self.max_windows = int(max_windows)
        self._done: List[List[float]] = []
        self._live: Optional[List[float]] = None

    def _window_start(self, now: float) -> float:
        """Start time of the window containing virtual time ``now``."""
        return (now // self.width) * self.width

    def _merge_pair(self, into: List[float], other: List[float]) -> None:
        """Fold window ``other`` into ``into`` (same coarsened start)."""
        raise NotImplementedError

    def _roll(self, now: float) -> List[float]:
        """Return the live window for ``now``, closing stale ones."""
        width = self.width
        start = (now // width) * width
        live = self._live
        if live is not None:
            if start <= live[0]:
                return live
            self._close(live)
            done = self._done
            done.append(live)
            if len(done) > self.max_windows:
                self._coarsen()
                # Coarsening doubled the width; recompute the start.
                width = self.width
                start = (now // width) * width
        self._live = live = self._open(start)
        return live

    def _open(self, start: float) -> List[float]:
        """Create an empty live window starting at ``start``."""
        raise NotImplementedError

    def _close(self, live: List[float]) -> None:
        """Finalize a live window before it is archived (default: no-op)."""

    def _coarsen(self) -> None:
        """Halve the closed-window count by doubling the window width."""
        if len(self._done) <= self.max_windows:
            return
        self.width *= 2.0
        merged: List[List[float]] = []
        for window in self._done:
            start = self._window_start(window[0])
            if merged and merged[-1][0] == start:
                self._merge_pair(merged[-1], window)
            else:
                window[0] = start
                merged.append(window)
        self._done = merged

    def windows(self) -> List[List[float]]:
        """All windows in time order, the still-open one included."""
        out = [list(w) for w in self._done]
        if self._live is not None:
            live = list(self._live)
            self._close(live)
            out.append(live)
        return out


class Counter(_Windowed):
    """A monotone event counter with a per-window rate series.

    Each closed window is ``[start, count]``; :attr:`total` is the
    whole-run sum.  Counters answer "how many NACKs after the heal?" by
    summing the windows at or after a mark.
    """

    __slots__ = ("total",)

    def __init__(self, name: str, width: float = DEFAULT_WINDOW,
                 max_windows: int = DEFAULT_MAX_WINDOWS) -> None:
        super().__init__(name, width, max_windows)
        self.total = 0

    def _open(self, start: float) -> List[float]:
        """Open an empty ``[start, count]`` window."""
        return [start, 0]

    def _merge_pair(self, into: List[float], other: List[float]) -> None:
        """Coarsen by summing the two windows' counts."""
        into[1] += other[1]

    def inc(self, now: float, amount: int = 1) -> None:
        """Count ``amount`` events at virtual time ``now``."""
        self.total += amount
        # Fast path: virtual time is monotone, so "still inside the live
        # window" is a single comparison; rolling/coarsening stays out of
        # line for the once-per-window slow case.
        live = self._live
        if live is not None and now - live[0] < self.width:
            live[1] += amount
        else:
            self._roll(now)[1] += amount

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: total, window width and window series."""
        return {"total": self.total, "width": self.width,
                "windows": [[w[0], int(w[1])] for w in self.windows()]}


class Gauge(_Windowed):
    """A last-value-wins level with per-window last/peak tracking.

    Each closed window is ``[start, last, peak]``.  Gauges carry levels
    such as the open streaming-window size or per-shard stored bytes.
    """

    __slots__ = ("last", "peak")

    def __init__(self, name: str, width: float = DEFAULT_WINDOW,
                 max_windows: int = DEFAULT_MAX_WINDOWS) -> None:
        super().__init__(name, width, max_windows)
        self.last = 0.0
        self.peak = 0.0

    def _open(self, start: float) -> List[float]:
        """Open a window seeded with the current level."""
        return [start, self.last, self.last]

    def _merge_pair(self, into: List[float], other: List[float]) -> None:
        """Coarsen: keep the later last-value, the larger peak."""
        into[1] = other[1]
        into[2] = max(into[2], other[2])

    def set(self, now: float, value: float) -> None:
        """Record level ``value`` at virtual time ``now``."""
        self.last = value
        self.peak = max(self.peak, value)
        live = self._live
        if live is None or now - live[0] >= self.width:
            live = self._roll(now)
        live[1] = value
        live[2] = max(live[2], value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: last, peak, window width and series."""
        return {"last": self.last, "peak": self.peak, "width": self.width,
                "windows": self.windows()}


class WindowedHistogram(_Windowed):
    """A value distribution with per-window quantiles and a run reservoir.

    While a window is open its samples collect into a bounded buffer
    (reservoir-sampled past :data:`_WINDOW_RESERVOIR` entries); on close the
    window is finalized to ``[start, count, mean, max, p99]`` and the raw
    samples are dropped, so memory stays O(window) regardless of run
    length.  A second bounded reservoir spans the whole run and feeds the
    overall p50/p95/p99 summary.  Both reservoirs use Vitter's algorithm R
    with a private RNG seeded from the series name -- fully deterministic
    for a given observation sequence.

    Coarsening merges finalized windows with count-weighted means, max of
    maxima, and max of p99s (a conservative upper bound on the merged p99).
    """

    __slots__ = ("count", "total", "max", "_reservoir", "_capacity",
                 "_seen", "_rng", "_live_samples")

    def __init__(self, name: str, width: float = DEFAULT_WINDOW,
                 max_windows: int = DEFAULT_MAX_WINDOWS,
                 reservoir: int = DEFAULT_RESERVOIR) -> None:
        super().__init__(name, width, max_windows)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._reservoir: List[float] = []
        self._capacity = int(reservoir)
        self._seen = 0
        self._rng = random.Random(f"obs:{name}")
        self._live_samples: List[float] = []

    def _open(self, start: float) -> List[float]:
        """Open an empty ``[start, count, total, max]`` live window."""
        # Reuse the sample buffer: closed windows keep only their finalized
        # stats, never a reference to it, and clearing beats reallocating.
        self._live_samples.clear()
        return [start, 0, 0.0, 0.0]

    def _close(self, live: List[float]) -> None:
        """Finalize a live window to ``[start, count, mean, max, p99]``."""
        count = int(live[1])
        mean = (live[2] / count) if count else 0.0
        # Nearest-rank p99 is the maximum whenever fewer than 100 samples
        # are in hand (ceil(0.99 * n) == n for n < 100), which is the
        # common case for a single window -- and the window max is already
        # tracked in live[3] (0.0 when empty), so no scan or sort at all.
        if count < 100:
            p99 = live[3]
        else:
            p99 = nearest_rank(sorted(self._live_samples), 0.99)
        live[1] = count
        live[2] = mean
        # live[3] (max) stays; append the window p99.
        if len(live) == 4:
            live.append(p99)
        else:  # re-finalizing a copy from windows(): already 5-wide
            live[4] = p99

    def _merge_pair(self, into: List[float], other: List[float]) -> None:
        """Coarsen two finalized windows (weighted mean, max-of-p99s)."""
        count = into[1] + other[1]
        if count:
            into[2] = (into[2] * into[1] + other[2] * other[1]) / count
        into[1] = count
        into[3] = max(into[3], other[3])
        into[4] = max(into[4], other[4])

    def observe(self, now: float, value: float) -> None:
        """Record sample ``value`` at virtual time ``now``."""
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        # Whole-run reservoir (algorithm R).  ``seen <= capacity`` is
        # equivalent to ``len(reservoir) < capacity`` because the reservoir
        # only ever grows while below capacity.
        seen = self._seen = self._seen + 1
        if seen <= self._capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(seen)
            if slot < self._capacity:
                self._reservoir[slot] = value
        # Live window aggregates + bounded sample buffer.  Virtual time is
        # monotone, so "still inside the live window" is one comparison.
        live = self._live
        if live is None or now - live[0] >= self.width:
            live = self._roll(now)
        count = live[1] = live[1] + 1
        live[2] += value
        if value > live[3]:
            live[3] = value
        # Same equivalence for the per-window buffer: it is cleared on open
        # and only appended to while ``count`` stays within capacity.
        if count <= _WINDOW_RESERVOIR:
            self._live_samples.append(value)
        else:
            slot = self._rng.randrange(count)
            if slot < _WINDOW_RESERVOIR:
                self._live_samples[slot] = value
        return None

    def quantile(self, q: float) -> float:
        """Whole-run nearest-rank quantile from the bounded reservoir."""
        return nearest_rank(sorted(self._reservoir), q)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: run aggregates, quantiles, window series."""
        mean = (self.total / self.count) if self.count else 0.0
        ordered = sorted(self._reservoir)
        return {
            "count": self.count,
            "mean": mean,
            "max": self.max,
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
            "width": self.width,
            "windows": self.windows(),
        }
