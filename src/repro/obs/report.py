"""The per-run metrics export: a compact, JSON-ready time-series bundle.

A :class:`MetricsReport` freezes a :class:`~repro.obs.registry.MetricsRegistry`
into a plain nested dict (floats rounded to six places) that travels through
``ChaosRunResult``, the sweep's ``RunRecord`` and the checkpoint journal
byte-identically -- ``to_json`` returns the dict itself and ``from_json``
wraps it back, so a report survives any number of serialize/parse round
trips unchanged.  The query helpers (:meth:`last_mark`,
:meth:`worst_window_stat`, :meth:`counter_total`, :meth:`rate`) are the
evaluation surface the SLO DSL in :mod:`repro.obs.slo` runs against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["MetricsReport"]

#: Schema tag embedded in every exported report.
REPORT_SCHEMA = 1

#: Index of a per-window statistic inside a finalized histogram window
#: ``[start, count, mean, max, p99]``.
_HIST_STATS = {"count": 1, "mean": 2, "max": 3, "p99": 4}


def _rounded(value):
    """Recursively round floats to 6 places for a compact, stable export."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, list):
        return [_rounded(v) for v in value]
    if isinstance(value, tuple):
        return [_rounded(v) for v in value]
    if isinstance(value, dict):
        return {k: _rounded(v) for k, v in value.items()}
    return value


def _rounded_snapshot(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Round a series snapshot in place, exploiting its known shape.

    Snapshots are flat dicts of numbers plus a ``windows`` list of numeric
    lists; rounding them directly (``round`` leaves ints alone, exactly
    like :func:`_rounded`) skips a deep recursive walk on the export path.
    """
    for key, value in snapshot.items():
        if key == "windows":
            snapshot[key] = [[round(v, 6) for v in w] for w in value]
        else:
            snapshot[key] = round(value, 6)
    return snapshot


class MetricsReport:
    """An immutable-by-convention view over one run's exported metrics.

    Construct with :meth:`from_registry` at the end of an instrumented run
    or :meth:`from_json` when re-reading a sweep record or checkpoint
    journal entry.  The underlying dict is exposed as :attr:`data` and
    returned verbatim by :meth:`to_json`.
    """

    __slots__ = ("data",)

    def __init__(self, data: Dict[str, object]) -> None:
        self.data = data

    # --------------------------------------------------------- construction
    @classmethod
    def from_registry(cls, registry, duration: float,
                      extra: Optional[Dict[str, object]] = None
                      ) -> "MetricsReport":
        """Snapshot ``registry`` into a rounded, JSON-ready report."""
        data = {
            "schema": REPORT_SCHEMA,
            "duration": round(duration, 6),
            "window": round(registry.window, 6),
            "counters": {name: _rounded_snapshot(series.snapshot())
                         for name, series in sorted(registry.counters.items())},
            "gauges": {name: _rounded_snapshot(series.snapshot())
                       for name, series in sorted(registry.gauges.items())},
            "histograms": {name: _rounded_snapshot(series.snapshot())
                           for name, series in
                           sorted(registry.histograms.items())},
            "marks": {name: [round(t, 6) for t in times]
                      for name, times in sorted(registry.marks.items())},
            # ``meta`` is free-form (sim snapshot, cache info, network
            # totals) so it keeps the recursive walk.
            "meta": _rounded(dict(extra or {})),
        }
        return cls(data)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "MetricsReport":
        """Wrap a previously exported report dict (no copying)."""
        return cls(payload)

    def to_json(self) -> Dict[str, object]:
        """The underlying JSON-ready dict, byte-stable across round trips."""
        return self.data

    # --------------------------------------------------------------- access
    @property
    def duration(self) -> float:
        """Virtual time at which the report was frozen."""
        return float(self.data.get("duration", 0.0))

    def first_mark(self, name: str) -> Optional[float]:
        """Virtual time of the earliest ``name`` mark, if any.

        This is the SLO anchor: scenarios script at most one fault window,
        so the first ``heal`` is the scripted recovery point, while any
        continuous background windows close only at simulator drain (their
        marks land at the far end of virtual time and would make "after
        heal" vacuous).
        """
        times = self.data.get("marks", {}).get(name)
        if not times:
            return None
        return float(times[0])

    def last_mark(self, name: str) -> Optional[float]:
        """Virtual time of the most recent ``name`` mark, if any."""
        times = self.data.get("marks", {}).get(name)
        if not times:
            return None
        return float(times[-1])

    def histogram(self, name: str) -> Optional[Dict[str, object]]:
        """The exported summary of histogram ``name``, if recorded."""
        return self.data.get("histograms", {}).get(name)

    def _hist_windows(self, name: str, after: float) -> List[List[float]]:
        series = self.histogram(name)
        if series is None:
            return []
        return [w for w in series["windows"] if w[0] >= after and w[1]]

    def worst_window_stat(self, name: str, stat: str,
                          after: float = 0.0) -> Optional[float]:
        """Max of a per-window statistic over windows starting at/after ``after``.

        ``stat`` is one of ``count``, ``mean``, ``max`` or ``p99``.
        Returns ``None`` when the histogram is missing or no non-empty
        window starts in the queried range -- callers decide whether that
        is vacuous success or a failed assertion.
        """
        windows = self._hist_windows(name, after)
        if not windows:
            return None
        index = _HIST_STATS[stat]
        return max(float(w[index]) for w in windows)

    def counter_total(self, name: str, after: float = 0.0) -> int:
        """Counter events at/after virtual time ``after`` (0 when absent).

        With ``after=0.0`` this is the exact whole-run total; with a later
        anchor it sums the windows starting at/after the anchor, so events
        inside the anchor's own window count toward the tail.
        """
        series = self.data.get("counters", {}).get(name)
        if series is None:
            return 0
        if after <= 0.0:
            return int(series["total"])
        return int(sum(w[1] for w in series["windows"] if w[0] >= after))

    def rate(self, name: str, after: float = 0.0) -> float:
        """Counter events per virtual second over the queried tail."""
        span = self.duration - after
        if span <= 0.0:
            return 0.0
        return self.counter_total(name, after) / span
