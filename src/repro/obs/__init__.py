"""Observability plane: virtual-time metrics, reports and SLO assertions.

This package is the run-to-report spine of the reproduction.  It provides

* :mod:`repro.obs.series` -- deterministic windowed counters, gauges and
  histograms sampled in virtual time with bounded, coarsening storage;
* :mod:`repro.obs.registry` -- the :class:`MetricsRegistry` the hot paths
  record into (no-op when a component's ``metrics`` attribute is ``None``,
  which is the default everywhere) and :func:`install_metrics` to wire a
  registry through a deployment, chaos engine and history stream;
* :mod:`repro.obs.report` -- the compact :class:`MetricsReport` JSON export
  carried through ``ChaosRunResult``, sweep records and checkpoints;
* :mod:`repro.obs.slo` -- the :class:`SLO` assertion DSL
  (``p99("read_latency", after="heal").within(...)``,
  ``rate("nacks").below(...)``) evaluated against exported reports.

The package is a deliberate leaf: it imports nothing from the simulator,
core or sweep layers, so any layer may depend on it without cycles.
Enabling metrics never perturbs a run -- see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.registry import MetricsRegistry, install_metrics
from repro.obs.report import MetricsReport
from repro.obs.series import Counter, Gauge, WindowedHistogram, nearest_rank
from repro.obs.slo import SLO, mean, p99, peak, rate

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsReport",
    "SLO",
    "WindowedHistogram",
    "install_metrics",
    "mean",
    "nearest_rank",
    "p99",
    "peak",
    "rate",
]
