"""A small SLO assertion DSL evaluated against exported metric reports.

SLOs turn chaos scenarios into quantitative regression tests: instead of
only "linearizable or not", a scenario can assert "p99 read latency
recovers within N virtual seconds of heal" or "zero NACKs at
fault_rate=0".  Assertions are built fluently::

    p99("read_latency", after="heal", grace=10.0).within(12.0)
    rate("nacks").below(0.0)          # inclusive: total must be zero

and evaluated against a :class:`~repro.obs.report.MetricsReport` with
:meth:`SLO.evaluate`, which returns ``None`` on success or a human-readable
failure message.

Anchoring semantics: ``after="heal"`` resolves to the **first** ``heal``
mark in the report -- the moment the scripted fault window closed.  (Later
marks come from continuous background fault windows, which only close at
simulator drain; anchoring on them would make "after heal" vacuous.)  When
the scenario never heals the anchor falls back to virtual time zero, so
the assertion covers the whole degraded run -- which is exactly why
removing a scenario's heal entry makes its recovery SLO fail (the negative
control the test suite exercises).  Quantile assertions are evaluated
window-by-window: every non-empty window starting at or after the anchor
(plus ``grace``) must satisfy the bound, a time-series-native reading of
"recovers and stays recovered".
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

__all__ = ["SLO", "mean", "p99", "peak", "rate"]


class SLO:
    """One named assertion over a :class:`~repro.obs.report.MetricsReport`.

    Instances are immutable value objects safe to embed in the frozen
    :class:`~repro.workloads.scenarios.ChaosScenario` dataclass; equality
    and hashing follow the description string so scenario replacement via
    ``dataclasses.replace`` keeps working.
    """

    __slots__ = ("description", "_check")

    def __init__(self, description: str,
                 check: Callable[[object], Optional[str]]) -> None:
        self.description = description
        self._check = check

    def __repr__(self) -> str:
        return f"SLO({self.description!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SLO) and other.description == self.description

    def __hash__(self) -> int:
        return hash(self.description)

    def evaluate(self, report) -> Optional[str]:
        """``None`` when the report satisfies the SLO, else a failure message."""
        return self._check(report)


def _anchor(report, after: Optional[str], grace: float) -> Tuple[float, bool]:
    """Resolve an ``after`` mark to an absolute anchor time.

    Returns ``(anchor, found)``: the first occurrence of the mark plus
    ``grace``, or ``(grace, False)`` when the mark never fired (whole-run
    coverage -- the negative-control semantics described in the module
    docstring).
    """
    if after is None:
        return grace, True
    at = report.first_mark(after)
    if at is None:
        return grace, False
    return at + grace, True


class _QuantileQuery:
    """Fluent builder for per-window quantile bounds (``.within(limit)``)."""

    __slots__ = ("series", "stat", "after", "grace")

    def __init__(self, series: str, stat: str, after: Optional[str],
                 grace: float) -> None:
        self.series = series
        self.stat = stat
        self.after = after
        self.grace = grace

    def within(self, limit: float) -> SLO:
        """Every queried window's ``stat`` must be at most ``limit``."""
        series, stat, after, grace = (self.series, self.stat, self.after,
                                      self.grace)
        suffix = f", after={after}" if after else ""
        if grace:
            suffix += f"+{grace:g}s"
        description = f"{stat}({series}{suffix}) <= {limit:g}"

        def check(report) -> Optional[str]:
            anchor, found = _anchor(report, after, grace)
            worst = report.worst_window_stat(series, stat, after=anchor)
            if worst is None:
                return (f"{description}: no samples in '{series}' after "
                        f"t={anchor:g}")
            if worst > limit:
                origin = "" if found else f" (mark '{after}' never fired)"
                return (f"{description}: worst window {stat}={worst:g} at "
                        f"t>={anchor:g}{origin}")
            return None

        return SLO(description, check)


class _RateQuery:
    """Fluent builder for counter-rate bounds (``.below(limit)``)."""

    __slots__ = ("series", "after", "grace")

    def __init__(self, series: str, after: Optional[str],
                 grace: float) -> None:
        self.series = series
        self.after = after
        self.grace = grace

    def below(self, limit: float) -> SLO:
        """The counter's events-per-virtual-second must be at most ``limit``.

        The bound is inclusive, so ``rate(...).below(0.0)`` asserts the
        counter never fired in the queried range at all.
        """
        series, after, grace = self.series, self.after, self.grace
        suffix = f", after={after}" if after else ""
        if grace:
            suffix += f"+{grace:g}s"
        description = f"rate({series}{suffix}) <= {limit:g}/s"

        def check(report) -> Optional[str]:
            anchor, found = _anchor(report, after, grace)
            value = report.rate(series, after=anchor)
            if value > limit:
                total = report.counter_total(series, after=anchor)
                origin = "" if found else f" (mark '{after}' never fired)"
                return (f"{description}: {total} events -> {value:g}/s at "
                        f"t>={anchor:g}{origin}")
            return None

        return SLO(description, check)


def mean(series: str, after: Optional[str] = None,
         grace: float = 0.0) -> _QuantileQuery:
    """Per-window mean bound on histogram ``series``."""
    return _QuantileQuery(series, "mean", after, grace)


def p99(series: str, after: Optional[str] = None,
        grace: float = 0.0) -> _QuantileQuery:
    """Per-window p99 bound on histogram ``series``."""
    return _QuantileQuery(series, "p99", after, grace)


def peak(series: str, after: Optional[str] = None,
         grace: float = 0.0) -> _QuantileQuery:
    """Per-window maximum bound on histogram ``series``."""
    return _QuantileQuery(series, "max", after, grace)


def rate(series: str, after: Optional[str] = None,
         grace: float = 0.0) -> _RateQuery:
    """Events-per-virtual-second bound on counter ``series``."""
    return _RateQuery(series, after, grace)
