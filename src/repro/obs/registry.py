"""The metrics registry: named series bound to a simulator clock.

A :class:`MetricsRegistry` is the single object the instrumented hot paths
talk to.  Every hot path holds a ``metrics`` attribute that is ``None`` by
default -- the same no-op-when-disabled idiom as ``AresServer.governor``
and the network's ``_quiet`` fast path -- so a disabled run pays exactly
one attribute test per call site and allocates nothing.  When a registry
*is* installed, every sample is stamped with the simulator's **virtual**
clock; the registry never schedules events, never reads the wall clock and
never touches any of the run's seeded RNG streams, which is what makes the
metrics plane provably invisible to history signatures and chaos logs.

:func:`install_metrics` wires one registry into a deployment (network,
servers, clients), a chaos engine and an optional history stream by plain
attribute assignment -- duck-typed, so the obs package stays a leaf with no
imports from the core layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.series import (DEFAULT_MAX_WINDOWS, DEFAULT_WINDOW, Counter,
                              Gauge, WindowedHistogram)

__all__ = ["MetricsRegistry", "install_metrics"]

#: Hard cap on distinct series per registry; extra names fall into a shared
#: throwaway series so a label-cardinality bug cannot balloon memory.
MAX_SERIES = 160


class MetricsRegistry:
    """Named counters, gauges and windowed histograms in virtual time.

    Parameters
    ----------
    sim:
        The simulator whose ``now`` clock stamps every sample (anything
        with ``now`` and ``events_processed`` attributes works).
    window:
        Initial window width in virtual seconds; per-series widths double
        under coarsening.
    max_windows:
        Closed windows retained per series before coarsening.
    """

    __slots__ = ("sim", "window", "max_windows", "counters", "gauges",
                 "histograms", "marks", "_overflow", "_next_events_at",
                 "_stat_sources", "_events_gauge")

    def __init__(self, sim, window: float = DEFAULT_WINDOW,
                 max_windows: int = DEFAULT_MAX_WINDOWS) -> None:
        self.sim = sim
        self.window = float(window)
        self.max_windows = int(max_windows)
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, WindowedHistogram] = {}
        self.marks: Dict[str, List[float]] = {}
        self._overflow: Dict[type, object] = {}
        self._next_events_at = 0.0
        # [name, read(), last sampled value, Counter] entries, delta-sampled
        # into counters at window boundaries (see add_stat_source).
        self._stat_sources: List[list] = []
        self._events_gauge: Optional[Gauge] = None

    # ------------------------------------------------------------- plumbing
    def _series(self, table: Dict[str, object], factory, name: str):
        """Fetch-or-create a series, overflowing past :data:`MAX_SERIES`."""
        series = table.get(name)
        if series is None:
            if (len(self.counters) + len(self.gauges)
                    + len(self.histograms)) >= MAX_SERIES:
                overflow = self._overflow.get(factory)
                if overflow is None:
                    overflow = factory("obs:overflow", self.window,
                                       self.max_windows)
                    self._overflow[factory] = overflow
                return overflow
            series = factory(name, self.window, self.max_windows)
            table[name] = series
        return series

    def add_stat_source(self, name: str, read) -> None:
        """Register an external monotone counter to delta-sample on ticks.

        ``read()`` must return a cumulative count (e.g. the network's
        ``messages_sent``).  At every window-boundary tick -- and once more
        at report time, so totals come out *exact* -- the registry counts
        the delta since the previous sample into counter ``name``.  This is
        how per-message statistics stay windowed without adding a single
        instruction to the per-message hot path.
        """
        self._stat_sources.append([name, read, 0, None])

    def _tick(self, now: float) -> None:
        """Sample the event-rate gauge and the registered stat sources.

        Runs once per window-boundary crossing (the recording fast paths
        compare against ``_next_events_at``), so per-tick cost is amortised
        over every sample recorded inside the window.
        """
        self._next_events_at = (now // self.window + 1.0) * self.window
        gauge = self._events_gauge
        if gauge is None:
            gauge = self._events_gauge = self._series(self.gauges, Gauge,
                                                      "sim_events")
        gauge.set(now, float(self.sim.events_processed))
        for entry in self._stat_sources:
            value = entry[1]()
            delta = value - entry[2]
            if delta:
                entry[2] = value
                counter = entry[3]
                if counter is None:
                    counter = entry[3] = self._series(self.counters, Counter,
                                                      entry[0])
                counter.inc(now, delta)

    # ------------------------------------------------------------ recording
    # The recording methods run once per message on instrumented hot paths,
    # so each keeps an inlined fast path: one dict probe for the series and
    # one comparison for the event-rate tick, with creation and boundary
    # work pushed out of line.
    def inc(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount`` at the current virtual time."""
        series = self.counters.get(name)
        if series is None:
            series = self._series(self.counters, Counter, name)
        now = self.sim.now
        if now >= self._next_events_at:
            self._tick(now)
        series.inc(now, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` at the current virtual time."""
        series = self.gauges.get(name)
        if series is None:
            series = self._series(self.gauges, Gauge, name)
        now = self.sim.now
        if now >= self._next_events_at:
            self._tick(now)
        series.set(now, value)

    def observe(self, name: str, value: float) -> None:
        """Add ``value`` to histogram ``name`` at the current virtual time."""
        series = self.histograms.get(name)
        if series is None:
            series = self._series(self.histograms, WindowedHistogram, name)
        now = self.sim.now
        if now >= self._next_events_at:
            self._tick(now)
        series.observe(now, value)

    def histogram_handle(self, name: str) -> WindowedHistogram:
        """The histogram series object for ``name``, created if missing.

        Hot paths that observe the same series many times (e.g. the quorum
        round timer) resolve the handle once and feed it through
        :meth:`observe_since`, skipping the per-sample name lookup.
        """
        series = self.histograms.get(name)
        if series is None:
            series = self._series(self.histograms, WindowedHistogram, name)
        return series

    def observe_since(self, series: WindowedHistogram, started: float) -> None:
        """Record ``now - started`` into a pre-resolved histogram handle."""
        now = self.sim.now
        if now >= self._next_events_at:
            self._tick(now)
        series.observe(now, now - started)

    def mark(self, name: str) -> None:
        """Record a point-in-time event (e.g. ``heal``) for SLO anchoring."""
        self.marks.setdefault(name, []).append(self.sim.now)

    # ------------------------------------------------------------ exporting
    def report(self, extra: Optional[Dict[str, object]] = None):
        """Freeze the registry into a :class:`~repro.obs.report.MetricsReport`.

        ``extra`` entries (e.g. the simulator snapshot, cache hit rates)
        are merged into the report's top-level ``meta`` section.
        """
        from repro.obs.report import MetricsReport

        now = self.sim.now
        # Final flush: the boundary tick undershoots by up to one window,
        # so sample the gauge and every stat source once more at freeze
        # time -- stat-source counter totals are exact, not approximate.
        self._tick(now)
        return MetricsReport.from_registry(self, duration=now,
                                           extra=dict(extra or {}))


def install_metrics(deployment, engine=None, stream=None,
                    registry: Optional[MetricsRegistry] = None,
                    window: float = DEFAULT_WINDOW) -> MetricsRegistry:
    """Wire one registry into every hot path of a deployment.

    Assigns the registry to the network, every server, every client
    (writers, readers, reconfigurers), the chaos ``engine`` and the
    streaming history ``stream`` when given.  Returns the registry so the
    caller can keep recording (end-of-run collection) and export a report.
    """
    registry = registry or MetricsRegistry(deployment.sim, window=window)
    network = deployment.network
    network.metrics = registry
    # Per-message statistics come from the network's existing cumulative
    # counters, delta-sampled at window boundaries: the send/deliver hot
    # paths run zero extra instructions even when metrics are enabled.
    registry.add_stat_source("messages", lambda: network.messages_sent)
    registry.add_stat_source("messages_delivered",
                             lambda: network.messages_delivered)
    registry.add_stat_source("messages_dropped",
                             lambda: network.messages_dropped)
    for server in deployment.servers.values():
        server.metrics = registry
    for client in (list(deployment.writers) + list(deployment.readers)
                   + list(deployment.reconfigurers)):
        client.metrics = registry
    if engine is not None:
        engine.metrics = registry
    if stream is not None:
        stream.metrics = registry
    return registry
