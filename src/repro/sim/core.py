"""The discrete-event simulator core.

The simulator maintains a virtual clock and a priority queue of events.
Everything that happens in an execution -- message deliveries, timer
expirations, scheduled crashes -- is an :class:`Event` with a firing time, a
monotonically increasing sequence number (for deterministic tie-breaking)
and a callback.

Determinism
-----------
Given the same seed and the same schedule of API calls, two runs produce the
exact same execution: ties in firing time are broken by insertion order, and
all randomness (link latencies, workload inter-arrival times) is drawn from
the simulator's single seeded :class:`random.Random` instance.

Performance notes
-----------------
This module is the hottest path of the whole emulation (every message
delivery and coroutine resumption is an event), so it trades a little
uniformity for speed:

* The heap stores ``(time, seq, event)`` tuples so ordering is decided by
  native tuple comparison instead of rich-comparison calls on event objects;
  :class:`Event` itself is a ``__slots__`` class.
* :meth:`Simulator.call_soon` bypasses the heap entirely: same-time events
  go through a FIFO lane (a deque) that is merged with the heap by
  ``(time, seq)`` at pop time.  Coroutine resumptions -- the most frequent
  event kind -- therefore cost an append/popleft instead of a heap push/pop.
* Cancellation is lazy: a cancelled event stays queued and is skipped when
  popped.  The simulator counts cancelled-but-queued events (so
  :attr:`Simulator.pending_events` is exact) and compacts the heap when the
  cancelled fraction grows past a threshold, bounding memory in workloads
  that cancel many timers.
* Callbacks can be scheduled with pre-bound positional ``args``, which lets
  callers avoid allocating a fresh closure per event.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError

#: Compact the heap when more than this many queued events are cancelled and
#: they make up over half the heap.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a global insertion
    counter that makes simultaneous events fire in the order they were
    scheduled, which keeps executions deterministic.  The ordering lives in
    the simulator's queue entries, not on the event object.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., None],
                 args: tuple = (), label: str = "", sim: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue but is skipped).

        The owning simulator keeps count of cancelled-but-queued events and
        compacts its heap when they accumulate; cancelling an event that has
        already fired (or was already cancelled) is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} {self.label!r}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed of the simulator-wide random number generator.  All stochastic
        components (latency models, workload generators) must draw from
        :attr:`rng` so that executions are reproducible.

    Notes
    -----
    The virtual clock starts at ``0.0`` and only advances when
    :meth:`run` / :meth:`run_until` / :meth:`step` process events.  Time
    units are abstract; the latency analysis benchmarks interpret them as
    the paper's ``d``/``D`` time units.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._soon: "deque[Event]" = deque()
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled_events: int = 0
        self._cancelled_pending: int = 0
        self._running = False
        self._trace: Optional[List[str]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (a rough measure of work)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Cancelled events linger in the queue until popped or compacted
        (deletion is lazy), but they are not counted here.
        """
        return len(self._queue) + len(self._soon) - self._cancelled_pending

    @property
    def cancelled_events(self) -> int:
        """Total number of queued events whose firing was prevented by
        :meth:`Event.cancel` (cancelling an already-fired event is a no-op
        and is not counted)."""
        return self._cancelled_events

    def metrics_snapshot(self) -> dict:
        """One-shot counters snapshot for the observability plane.

        A plain read of public state -- the metrics layer calls this at
        report time instead of instrumenting the run loop, so the hot loop
        carries zero observability overhead.
        """
        return {
            "now": self.now,
            "events_processed": self.events_processed,
            "pending_events": self.pending_events,
            "cancelled_events": self.cancelled_events,
        }

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., None], label: str = "",
                 args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which can be cancelled.  Pre-binding
        positional ``args`` here is cheaper than allocating a closure per
        event on hot paths (message delivery, coroutine resumption).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, callback, label=label, args=args)

    def schedule_at(self, time: float, callback: Callable[..., None], label: str = "",
                    args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at time {time} before the current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, label, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def call_soon(self, callback: Callable[..., None], label: str = "",
                  args: tuple = ()) -> Event:
        """Schedule ``callback`` at the current time (after already-queued events at this time).

        Same-time events take the FIFO fast lane instead of the heap; the
        two queues are merged by ``(time, seq)`` when events are popped, so
        ordering is exactly as if everything went through the heap.
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now, seq, callback, args, label, self)
        self._soon.append(event)
        return event

    # --------------------------------------------------- lazy-deletion upkeep
    def _note_cancelled(self) -> None:
        """Account for one newly cancelled, still-queued event."""
        self._cancelled_events += 1
        self._cancelled_pending += 1
        if (self._cancelled_pending > _COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 > len(self._queue) + len(self._soon)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from both queues and rebuild the heap.

        Mutates the queues in place so that the inlined run loop's local
        bindings stay valid across a compaction.
        """
        live = [entry for entry in self._queue if not entry[2].cancelled]
        self._queue[:] = live
        heapq.heapify(self._queue)
        if any(event.cancelled for event in self._soon):
            live_soon = [event for event in self._soon if not event.cancelled]
            self._soon.clear()
            self._soon.extend(live_soon)
        self._cancelled_pending = 0

    def _pop_next(self) -> Optional[Event]:
        """Pop the globally next live event, merging the heap and FIFO lanes."""
        queue = self._queue
        soon = self._soon
        while queue or soon:
            if soon:
                if queue:
                    head = queue[0]
                    first = soon[0]
                    if (head[0], head[1]) < (first.time, first.seq):
                        event = heapq.heappop(queue)[2]
                    else:
                        event = soon.popleft()
                else:
                    event = soon.popleft()
            else:
                event = heapq.heappop(queue)[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                event._sim = None
                continue
            return event
        return None

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Process a single event.

        Returns ``True`` if an event was processed, ``False`` if the queue
        was empty.
        """
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        if self._trace is not None and event.label:
            self._trace.append(f"{event.time:.3f} {event.label}")
        event._sim = None  # fired: a later cancel() must not skew counters
        callback = event.callback
        args = event.args
        if args:
            callback(*args)
        else:
            callback()
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains or ``max_events`` events fire.

        Raises
        ------
        SimulationError
            If ``max_events`` is exhausted, which almost always indicates a
            livelock in a protocol under test.
        """
        self._running = True
        # The loop is inlined (no step() call per event, locals for the hot
        # names) because it dispatches every event of every execution.
        queue = self._queue
        soon = self._soon
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                if soon:
                    if queue:
                        head = queue[0]
                        first = soon[0]
                        if (head[0], head[1]) < (first.time, first.seq):
                            event = heappop(queue)[2]
                        else:
                            event = soon.popleft()
                    else:
                        event = soon.popleft()
                elif queue:
                    event = heappop(queue)[2]
                else:
                    break
                if event.cancelled:
                    self._cancelled_pending -= 1
                    event._sim = None
                    continue
                self._now = event.time
                self._events_processed += 1
                if self._trace is not None and event.label:
                    self._trace.append(f"{event.time:.3f} {event.label}")
                event._sim = None
                callback = event.callback
                args = event.args
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"simulation did not quiesce within {max_events} events; "
                        "a protocol is likely livelocked"
                    )
        finally:
            self._running = False

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run events with firing time ``<= time``; the clock ends at ``time``.

        Events scheduled later stay queued so that the simulation can be
        resumed.
        """
        if time < self._now:
            raise SimulationError(f"cannot run until {time}, already at {self._now}")
        processed = 0
        while True:
            queue = self._queue
            soon = self._soon
            # Drop cancelled heads first: the peek below must see the next
            # *live* event, or step() could fire an event past the limit.
            while soon and soon[0].cancelled:
                soon.popleft()
                self._cancelled_pending -= 1
            while queue and queue[0][2].cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
            if soon:
                next_time = soon[0].time
                if queue and (queue[0][0], queue[0][1]) < (next_time, soon[0].seq):
                    next_time = queue[0][0]
            elif queue:
                next_time = queue[0][0]
            else:
                break
            if next_time > time:
                break
            if not self.step():  # pragma: no cover - head exists, so step fires
                break
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events before time {time}"
                )
        self._now = time

    def run_until_complete(self, future, max_events: int = 10_000_000):
        """Run until ``future`` resolves, and return its result.

        Convenience used by tests and examples to drive a single top-level
        operation synchronously.
        """
        processed = 0
        while not future.done():
            if not self.step():
                raise SimulationError(
                    "event queue drained before the awaited future resolved; "
                    "the operation cannot make progress (missing quorum or crashed client?)"
                )
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"future did not resolve within {max_events} events; likely livelock"
                )
        return future.result()

    # ----------------------------------------------------------------- trace
    def enable_trace(self) -> None:
        """Start recording labelled events (used by debugging tests)."""
        self._trace = []

    @property
    def trace(self) -> List[str]:
        """The recorded trace lines (empty unless :meth:`enable_trace` was called)."""
        return list(self._trace or [])

    @property
    def trace_enabled(self) -> bool:
        """Whether labelled events are being recorded.

        Hot paths use this to skip building label strings that nobody will
        ever read.
        """
        return self._trace is not None

    # -------------------------------------------------------------- utilities
    def uniform(self, low: float, high: float) -> float:
        """Draw from the simulator RNG; used by latency models."""
        if high < low:
            raise SimulationError(f"invalid uniform range [{low}, {high}]")
        if low == high:
            return low
        return self.rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Draw an exponential inter-arrival time with the given mean."""
        if mean <= 0:
            raise SimulationError("exponential mean must be positive")
        return self.rng.expovariate(1.0 / mean)

    def choice(self, seq):
        """Deterministically choose an element of ``seq`` using the simulator RNG."""
        return self.rng.choice(list(seq))

    def shuffle(self, seq: list) -> list:
        """Return a new list with the elements of ``seq`` shuffled deterministically."""
        items = list(seq)
        self.rng.shuffle(items)
        return items
