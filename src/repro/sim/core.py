"""The discrete-event simulator core.

The simulator maintains a virtual clock and a priority queue of events.
Everything that happens in an execution -- message deliveries, timer
expirations, scheduled crashes -- is an :class:`Event` with a firing time, a
monotonically increasing sequence number (for deterministic tie-breaking)
and a callback.

Determinism
-----------
Given the same seed and the same schedule of API calls, two runs produce the
exact same execution: ties in firing time are broken by insertion order, and
all randomness (link latencies, workload inter-arrival times) is drawn from
the simulator's single seeded :class:`random.Random` instance.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a global insertion
    counter that makes simultaneous events fire in the order they were
    scheduled, which keeps executions deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue but is skipped)."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed of the simulator-wide random number generator.  All stochastic
        components (latency models, workload generators) must draw from
        :attr:`rng` so that executions are reproducible.

    Notes
    -----
    The virtual clock starts at ``0.0`` and only advances when
    :meth:`run` / :meth:`run_until` / :meth:`step` process events.  Time
    units are abstract; the latency analysis benchmarks interpret them as
    the paper's ``d``/``D`` time units.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        self._trace: Optional[List[str]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (a rough measure of work)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at time {time} before the current time {self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current time (after already-queued events at this time)."""
        return self.schedule(0.0, callback, label=label)

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Process a single event.

        Returns ``True`` if an event was processed, ``False`` if the queue
        was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self._trace is not None and event.label:
                self._trace.append(f"{event.time:.3f} {event.label}")
            event.callback()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains or ``max_events`` events fire.

        Raises
        ------
        SimulationError
            If ``max_events`` is exhausted, which almost always indicates a
            livelock in a protocol under test.
        """
        self._running = True
        processed = 0
        try:
            while self.step():
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"simulation did not quiesce within {max_events} events; "
                        "a protocol is likely livelocked"
                    )
        finally:
            self._running = False

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run events with firing time ``<= time``; the clock ends at ``time``.

        Events scheduled later stay queued so that the simulation can be
        resumed.
        """
        if time < self._now:
            raise SimulationError(f"cannot run until {time}, already at {self._now}")
        processed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.time > time:
                break
            self.step()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events before time {time}"
                )
        self._now = time

    def run_until_complete(self, future, max_events: int = 10_000_000):
        """Run until ``future`` resolves, and return its result.

        Convenience used by tests and examples to drive a single top-level
        operation synchronously.
        """
        processed = 0
        while not future.done():
            if not self.step():
                raise SimulationError(
                    "event queue drained before the awaited future resolved; "
                    "the operation cannot make progress (missing quorum or crashed client?)"
                )
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"future did not resolve within {max_events} events; likely livelock"
                )
        return future.result()

    # ----------------------------------------------------------------- trace
    def enable_trace(self) -> None:
        """Start recording labelled events (used by debugging tests)."""
        self._trace = []

    @property
    def trace(self) -> List[str]:
        """The recorded trace lines (empty unless :meth:`enable_trace` was called)."""
        return list(self._trace or [])

    # -------------------------------------------------------------- utilities
    def uniform(self, low: float, high: float) -> float:
        """Draw from the simulator RNG; used by latency models."""
        if high < low:
            raise SimulationError(f"invalid uniform range [{low}, {high}]")
        if low == high:
            return low
        return self.rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Draw an exponential inter-arrival time with the given mean."""
        if mean <= 0:
            raise SimulationError("exponential mean must be positive")
        return self.rng.expovariate(1.0 / mean)

    def choice(self, seq):
        """Deterministically choose an element of ``seq`` using the simulator RNG."""
        return self.rng.choice(list(seq))

    def shuffle(self, seq: list) -> list:
        """Return a new list with the elements of ``seq`` shuffled deterministically."""
        items = list(seq)
        self.rng.shuffle(items)
        return items
