"""Deterministic discrete-event simulation substrate.

The paper's system model is an asynchronous, reliable message-passing
environment whose only timing assumption (used in the latency analysis of
Section 4.4) is that every message is delivered within ``[d, D]`` time units
of some global clock that no process can read.  This package provides that
environment as a deterministic, seeded discrete-event simulator:

* :class:`~repro.sim.core.Simulator` -- the event loop and virtual clock.
* :class:`~repro.sim.futures.SimFuture` and the coroutine runner -- protocol
  actions (client phases, quorum gathers, consensus rounds) are written as
  generator coroutines that ``yield`` futures.
* :class:`~repro.sim.process.Process` -- the base class for every writer,
  reader, reconfigurer and server.
"""

from repro.sim.core import Simulator, Event
from repro.sim.futures import SimFuture, QuorumFuture, all_of, any_of
from repro.sim.process import Process

__all__ = [
    "Simulator",
    "Event",
    "SimFuture",
    "QuorumFuture",
    "all_of",
    "any_of",
    "Process",
]
