"""Futures and the generator-coroutine runner.

Protocol actions in this library -- e.g. TREAS's ``get-data`` quorum gather,
ARES's ``read-config`` traversal, a Paxos proposer round -- are written as
Python *generator coroutines*: ordinary functions containing ``yield``
expressions whose yielded objects are :class:`SimFuture` instances.  The
runner (:func:`spawn`) drives such a generator on the simulator, resuming it
whenever the awaited future resolves.

This is a deliberately tiny stand-in for ``asyncio``: deterministic, introspectable
and entirely under the control of the seeded :class:`~repro.sim.core.Simulator`.

Typical use inside a protocol::

    def _get_tag(self, cfg):
        fut = self.broadcast_and_gather(cfg.servers, QueryTag(...), quorum=cfg.quorum_size)
        replies = yield fut                      # suspend until the quorum answered
        return max(r.tag for r in replies)

and from the outside::

    op = spawn(sim, client._get_tag(cfg))
    sim.run_until_complete(op)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.common.errors import OperationAborted, QuorumRefusedError, SimulationError
from repro.sim.core import Simulator


class SimFuture:
    """A single-assignment container resolved at some future virtual time.

    A future is either *pending*, *resolved* with a result, or *failed* with
    an exception.  Callbacks added with :meth:`add_done_callback` run
    immediately if the future is already done.
    """

    __slots__ = ("_sim", "_done", "_result", "_exception", "_callbacks", "label")

    def __init__(self, sim: Simulator, label: str = "") -> None:
        self._sim = sim
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []
        self.label = label

    # ------------------------------------------------------------------ state
    def done(self) -> bool:
        """Return ``True`` once the future is resolved or failed."""
        return self._done

    def result(self) -> Any:
        """Return the result, raising the stored exception if the future failed."""
        if not self._done:
            raise SimulationError(f"future {self.label!r} is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception, or ``None``."""
        return self._exception

    # ------------------------------------------------------------- resolution
    def set_result(self, result: Any) -> None:
        """Resolve the future with ``result`` and run callbacks."""
        if self._done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._done = True
        self._result = result
        self._fire_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Fail the future with ``exc`` and run callbacks."""
        if self._done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._done = True
        self._exception = exc
        self._fire_callbacks()

    def try_set_result(self, result: Any) -> bool:
        """Resolve the future if still pending; return whether it was resolved now."""
        if self._done:
            return False
        self.set_result(result)
        return True

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Run ``callback(self)`` when the future completes (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class QuorumFuture(SimFuture):
    """A future that resolves once ``threshold`` responses have been collected.

    Used for every "await replies from a quorum" step in the protocols.  The
    responses collected so far are available as :attr:`responses`; the future
    resolves with the *list of responses present at the moment the threshold
    was reached* (later responses are still appended for diagnostic purposes
    but do not change the result).

    A quorum is a set of *distinct* processes, so when ``distinct_by`` is
    given (the process layer passes the responder id) repeated responses with
    the same key are counted once: the chaos layer's message-duplication
    fault must not let one server satisfy two slots of a threshold, nor feed
    the same coded element twice to an erasure decoder.

    Servers under injected resource pressure answer with explicit NACKs
    (:meth:`add_nack`) instead of staying silent.  When ``expected`` (the
    number of processes contacted) is given and the refusals leave fewer
    than ``threshold`` possible acceptances, the future fails fast with
    :class:`~repro.common.errors.QuorumRefusedError` -- a retriable
    condition -- rather than hanging until a timeout.
    """

    __slots__ = ("threshold", "responses", "distinct_by", "duplicates_ignored",
                 "_seen_keys", "_frozen_result", "expected", "nacks")

    def __init__(self, sim: Simulator, threshold: int, label: str = "",
                 distinct_by: Optional[Callable[[Any], Any]] = None,
                 expected: Optional[int] = None) -> None:
        super().__init__(sim, label=label)
        if threshold < 0:
            raise SimulationError("quorum threshold must be non-negative")
        self.threshold = threshold
        self.responses: List[Any] = []
        self.distinct_by = distinct_by
        self.duplicates_ignored = 0
        self._seen_keys: set = set()
        self._frozen_result: Optional[List[Any]] = None
        self.expected = expected
        self.nacks: List[Any] = []
        if threshold == 0:
            self.set_result([])

    def add_response(self, response: Any) -> None:
        """Record one response; resolves the future at the threshold.

        Responses whose ``distinct_by`` key was already seen are discarded
        (tallied in :attr:`duplicates_ignored`).
        """
        if self.distinct_by is not None:
            key = self.distinct_by(response)
            if key in self._seen_keys:
                self.duplicates_ignored += 1
                return
            self._seen_keys.add(key)
        self.responses.append(response)
        if not self.done() and len(self.responses) >= self.threshold:
            self._frozen_result = list(self.responses)
            self.set_result(self._frozen_result)

    def add_nack(self, response: Any) -> None:
        """Record one explicit refusal; may fail the future fast.

        Refusals dedupe through the same ``distinct_by`` key space as
        acceptances (one process occupies one slot, whichever way it
        answers).  With ``expected`` known, the future fails with
        :class:`~repro.common.errors.QuorumRefusedError` as soon as the
        remaining non-refusing processes cannot reach the threshold.
        """
        if self.distinct_by is not None:
            key = self.distinct_by(response)
            if key in self._seen_keys:
                self.duplicates_ignored += 1
                return
            self._seen_keys.add(key)
        self.nacks.append(response)
        if (not self.done() and self.expected is not None
                and self.expected - len(self.nacks) < self.threshold):
            self.set_exception(QuorumRefusedError(
                f"{self.label or 'quorum'}: {len(self.nacks)} of {self.expected} "
                f"contacted processes refused; threshold {self.threshold} unreachable",
                reasons=self._nack_reasons()))

    def _nack_reasons(self) -> tuple:
        """Distinct refusal reasons collected so far, in first-seen order.

        NACKs arrive as ``(sender, message)`` pairs from the process layer
        (duck-typed: anything with ``.get("error")`` works), so the error
        can carry *why* the quorum refused -- resource pressure vs retired
        configuration -- without changing its message text.
        """
        reasons: List[str] = []
        for nack in self.nacks:
            message = nack[1] if isinstance(nack, tuple) and len(nack) == 2 else nack
            getter = getattr(message, "get", None)
            reason = getter("error") if getter is not None else None
            if reason and reason not in reasons:
                reasons.append(reason)
        return tuple(reasons)


class Timer(SimFuture):
    """A future that resolves after a fixed virtual delay."""

    __slots__ = ("event",)

    def __init__(self, sim: Simulator, delay: float, label: str = "timer") -> None:
        super().__init__(sim, label=label)
        self.event = sim.schedule(delay, self.try_set_result, label=label, args=(None,))

    def cancel(self) -> None:
        """Cancel the underlying event; the future never resolves."""
        self.event.cancel()


def all_of(sim: Simulator, futures: Iterable[SimFuture], label: str = "all_of") -> SimFuture:
    """Return a future resolving with the list of results of ``futures``.

    Fails fast with the first exception raised by any constituent future.
    """
    futures = list(futures)
    combined = SimFuture(sim, label=label)
    if not futures:
        combined.set_result([])
        return combined
    remaining = {"count": len(futures)}

    def on_done(_fut: SimFuture) -> None:
        if combined.done():
            return
        if _fut.exception() is not None:
            combined.set_exception(_fut.exception())
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.set_result([f.result() for f in futures])

    for fut in futures:
        fut.add_done_callback(on_done)
    return combined


def any_of(sim: Simulator, futures: Iterable[SimFuture], label: str = "any_of") -> SimFuture:
    """Return a future resolving with the result of the first future to complete."""
    futures = list(futures)
    combined = SimFuture(sim, label=label)
    if not futures:
        raise SimulationError("any_of requires at least one future")

    def on_done(_fut: SimFuture) -> None:
        if combined.done():
            return
        if _fut.exception() is not None:
            combined.set_exception(_fut.exception())
        else:
            combined.set_result(_fut.result())

    for fut in futures:
        fut.add_done_callback(on_done)
    return combined


class Coroutine:
    """Handle of a running generator coroutine.

    The handle is itself a :class:`SimFuture` that resolves with the
    coroutine's return value (the value of its ``return`` statement) or
    fails with the exception the coroutine raised.
    """

    def __init__(self, sim: Simulator, generator: Generator, label: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.completion = SimFuture(sim, label=label or "coroutine")
        self.label = label
        self._aborted = False

    # -------------------------------------------------------------- stepping
    def start(self) -> "Coroutine":
        """Begin executing the coroutine (runs synchronously until its first yield)."""
        self._advance(None, None)
        return self

    def abort(self, reason: str = "aborted") -> None:
        """Inject :class:`OperationAborted` into the coroutine at its next resume point.

        Used when the owning client crashes: pending operations terminate
        exceptionally instead of lingering.
        """
        self._aborted = True
        if not self.completion.done():
            # If the coroutine is currently suspended on a future we cannot
            # forcibly resume it synchronously without risking re-entrancy,
            # so we just mark it and fail the completion; the generator is
            # closed to run any cleanup (finally blocks).
            try:
                self.generator.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self.completion.set_exception(OperationAborted(reason))

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.completion.done():
            return
        try:
            if exc is not None:
                yielded = self.generator.throw(exc)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self.completion.set_result(getattr(stop, "value", None))
            return
        except BaseException as error:  # noqa: BLE001 - propagate into the future
            self.completion.set_exception(error)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, SimFuture):
            future = yielded
        elif isinstance(yielded, (int, float)):
            future = Timer(self.sim, float(yielded), label=f"{self.label}:sleep")
        else:
            self._advance(
                None,
                SimulationError(
                    f"coroutine {self.label!r} yielded {type(yielded).__name__}; "
                    "only SimFuture instances or numeric delays may be yielded"
                ),
            )
            return

        future.add_done_callback(self._resume)

    def _resume(self, fut: SimFuture) -> None:
        """Schedule the coroutine's next step once an awaited future is done.

        Resumes on a fresh event so that deep chains do not recurse and all
        resumptions are ordered by the simulator.  This is a bound method
        (not a per-yield closure) and the resume event rides the simulator's
        same-time FIFO lane, because one resumption happens per awaited
        future of every operation -- it is among the hottest paths there are.
        """
        if self._aborted or self.completion.done():
            return
        sim = self.sim
        exc = fut.exception()
        if exc is not None:
            sim.call_soon(self._advance, args=(None, exc),
                          label=f"{self.label}:resume-exc" if sim.trace_enabled else "")
        else:
            sim.call_soon(self._advance, args=(fut.result(), None),
                          label=f"{self.label}:resume" if sim.trace_enabled else "")

    # ------------------------------------------------------------ future API
    def done(self) -> bool:
        """Return whether the coroutine has finished."""
        return self.completion.done()

    def result(self) -> Any:
        """Return the coroutine's return value (or raise its exception)."""
        return self.completion.result()

    def exception(self) -> Optional[BaseException]:
        """Return the coroutine's exception, if any."""
        return self.completion.exception()

    def add_done_callback(self, callback: Callable[[SimFuture], None]) -> None:
        """Register a completion callback on the underlying future."""
        self.completion.add_done_callback(callback)


def spawn(sim: Simulator, generator: Generator, label: str = "") -> Coroutine:
    """Run ``generator`` as a coroutine on the simulator and return its handle."""
    return Coroutine(sim, generator, label=label).start()
