"""Process abstraction.

Every participant of the emulation -- writers, readers, reconfiguration
clients and servers -- is a :class:`Process` attached to a
:class:`~repro.net.network.Network`.  A process can:

* send messages (:meth:`Process.send`) and receive them through
  :meth:`Process.on_message`;
* broadcast a request to a set of servers and gather replies into a
  :class:`~repro.sim.futures.QuorumFuture` (:meth:`Process.broadcast_and_gather`)
  -- the building block of every quorum phase in the paper;
* spawn protocol coroutines (:meth:`Process.spawn`);
* crash (:meth:`Process.crash`), after which it neither sends nor receives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, TYPE_CHECKING

from repro.common.errors import (
    QuorumRefusedError,
    QuorumUnavailableError,
    RetriesExhaustedError,
    is_retirement_refusal,
)
from repro.common.ids import ProcessId
from repro.sim.core import Simulator
from repro.sim.futures import Coroutine, QuorumFuture, SimFuture, Timer, any_of, spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.net.network import Network


def _responder(response):
    """Dedup key for quorum gathers: the (server id, reply) pair's sender."""
    return response[0]


#: Interned ``round:{label}`` histogram names; the label set is small and
#: static, so caching avoids a string build per instrumented quorum round.
_ROUND_SERIES: Dict[str, str] = {}


class _RoundTimer:
    """Done-callback for one instrumented quorum round (see ``_observe_round``).

    Combines the pending-gather cleanup with the round timing so an
    instrumented round attaches exactly as many callbacks as a plain one.
    A ``__slots__`` instance is one allocation where a closure needs a
    function object plus a cell per captured variable -- one of these is
    created per round, so the difference shows up directly as
    garbage-collector pressure.  ``handle`` is the pre-resolved histogram
    series object, so firing skips the registry's name lookup entirely.
    """

    __slots__ = ("process", "request_id", "handle", "started")

    def __init__(self, process: "Process", request_id: int, handle,
                 started: float) -> None:
        self.process = process
        self.request_id = request_id
        self.handle = handle
        self.started = started

    def __call__(self, fut: SimFuture) -> None:
        self.process._pending_gathers.pop(self.request_id, None)
        metrics = self.process.metrics
        # Reading the slot directly saves a method call on a path that runs
        # once per round; callbacks fire synchronously inside set_result /
        # set_exception, so _done is always final here.
        if fut._exception is not None:
            metrics.inc("round_failures")
        else:
            metrics.observe_since(self.handle, self.started)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    A process with a policy installed (:meth:`Process.enable_retries`) turns
    each quorum gather into up to ``attempts`` tries: an attempt that times
    out after ``timeout`` virtual seconds, or fails fast because servers
    refused (:class:`~repro.common.errors.QuorumRefusedError`), is abandoned
    and re-issued under a fresh request id after a backoff of
    ``base_delay * multiplier**(attempt-1) * (1 + jitter * U)`` where ``U``
    is drawn from the process's dedicated retry RNG -- seeded, so two runs
    with the same seed back off identically.  Exhausting the budget raises
    :class:`~repro.common.errors.RetriesExhaustedError` into the waiting
    protocol coroutine, which surfaces as a clean operation error.

    Retrying at the gather level is safe for the register protocols: server
    writes apply only if the incoming tag is newer, so a re-broadcast that
    races a late reply can never double-apply a tag.
    """

    attempts: int = 4
    timeout: float = 60.0
    base_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.timeout <= 0 or self.base_delay < 0:
            raise ValueError("retry timeout must be positive and base delay non-negative")
        if self.multiplier < 1.0 or self.jitter < 0:
            raise ValueError("retry multiplier must be >= 1 and jitter non-negative")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The (jittered) delay before re-issuing attempt ``attempt`` (1-based)."""
        base = self.base_delay * self.multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter * rng.random())


class Process:
    """Base class for all simulated processes.

    Parameters
    ----------
    pid:
        The globally unique :class:`~repro.common.ids.ProcessId`.
    network:
        The :class:`~repro.net.network.Network` the process is attached to.
        Registration with the network happens in the constructor.
    """

    def __init__(self, pid: ProcessId, network: "Network") -> None:
        self.pid = pid
        self.network = network
        self.sim: Simulator = network.sim
        self.crashed = False
        self._coroutines: List[Coroutine] = []
        # Pending quorum gathers indexed by a per-process request id so that
        # replies can be routed back to the phase that issued the request.
        self._pending_gathers: Dict[int, QuorumFuture] = {}
        self._next_request_id = 0
        # Retry is strictly opt-in: with no policy installed the gather path
        # (and the simulator event sequence) is byte-identical to older
        # builds -- enabling it schedules per-attempt timeout timers, which
        # shifts event sequence numbers even when no retry ever fires.
        self.retry_policy: Optional[RetryPolicy] = None
        self._retry_rng: Optional[random.Random] = None
        #: How many gather attempts this process re-issued / NACKs it received.
        self.retries = 0
        self.nacks_received = 0
        #: Observability registry; None (the default) keeps every hot path
        #: at a single attribute test, the same idiom as ``retry_policy``.
        self.metrics = None
        #: Per-label ``round:{label}`` histogram handles (see _observe_round).
        self._round_handles: Dict[str, object] = {}
        network.register(self)

    # ----------------------------------------------------------------- state
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def crash(self) -> None:
        """Crash the process.

        A crashed process stops receiving and sending messages and every
        protocol coroutine it owns is aborted.  Crashes are permanent (the
        paper's failure model is crash-stop).
        """
        if self.crashed:
            return
        self.crashed = True
        for coroutine in self._coroutines:
            if not coroutine.done():
                coroutine.abort(f"{self.pid} crashed")
        self._coroutines.clear()
        self._pending_gathers.clear()

    def restart(self) -> None:
        """Bring a crashed process back up (crash-recovery with stable storage).

        The paper's proofs assume crash-stop processes; the chaos layer uses
        restart to model crash-recovery of *servers*, whose entire protocol
        state (DAP states, configuration records) is treated as stable
        storage and therefore survives the outage.  Coroutines aborted by the
        crash stay aborted and in-flight requests from the downtime are lost;
        the process simply resumes receiving and sending.
        """
        self.crashed = False

    # ------------------------------------------------------------- messaging
    def send(self, dest: ProcessId, message: "Message") -> None:
        """Send ``message`` to ``dest`` over the network (no-op if crashed)."""
        if self.crashed:
            return
        self.network.send(self.pid, dest, message)

    def deliver(self, src: ProcessId, message: "Message") -> None:
        """Entry point called by the network when a message arrives."""
        if self.crashed:
            return
        # First give pending quorum gathers a chance to consume the reply.
        request_id = getattr(message, "in_reply_to", None)
        if request_id is not None and request_id in self._pending_gathers:
            gather = self._pending_gathers[request_id]
            if message.get("nack"):
                self.nacks_received += 1
                if self.metrics is not None:
                    self.metrics.inc("nacks")
                gather.add_nack((src, message))
            else:
                gather.add_response((src, message))
            return
        self.on_message(src, message)

    def enable_retries(self, policy: RetryPolicy, seed: object = 0) -> None:
        """Install ``policy`` with a dedicated per-process retry RNG.

        The RNG stream is ``Random(f"retry-{seed}-{name}")``, so backoff
        jitter is deterministic per (seed, process) and independent of the
        simulator, chaos and workload streams.
        """
        self.retry_policy = policy
        self._retry_rng = random.Random(f"retry-{seed}-{self.pid.name}")

    def on_message(self, src: ProcessId, message: "Message") -> None:
        """Handle an unsolicited message.  Subclasses override this."""

    # ------------------------------------------------------- quorum gathering
    def new_request_id(self) -> int:
        """Return a fresh request identifier (scoped to this process)."""
        self._next_request_id += 1
        return self._next_request_id

    def broadcast_and_gather(
        self,
        servers: Iterable[ProcessId],
        make_message: Callable[[int], "Message"],
        threshold: int,
        label: str = "gather",
    ) -> QuorumFuture:
        """Send a request to every server and await ``threshold`` replies.

        Parameters
        ----------
        servers:
            Destination processes (typically ``c.Servers``).
        make_message:
            Called with the fresh request id; must return the request
            message.  The request id is embedded so that replies (which carry
            ``in_reply_to``) are routed to the returned future.
        threshold:
            Number of replies to await (e.g. a majority, or ``⌈(n+k)/2⌉``).
        label:
            Diagnostic label for traces.

        Returns
        -------
        QuorumFuture
            Resolves with a list of ``(server_id, reply_message)`` pairs.

        Raises
        ------
        QuorumUnavailableError
            Immediately, if fewer than ``threshold`` destinations are alive,
            since in a reliable-channel crash-stop model the gather could
            then never complete.  With a retry policy installed
            (:meth:`enable_retries`) the error is retried and surfaces
            through the returned future instead.
        """
        servers = list(servers)
        if self.retry_policy is None:
            return self._open_broadcast(servers, make_message, threshold, label)[1]
        return self._gather_with_retries(
            lambda: self._open_broadcast(servers, make_message, threshold, label),
            label)

    def _open_broadcast(
        self,
        servers: List[ProcessId],
        make_message: Callable[[int], "Message"],
        threshold: int,
        label: str,
    ) -> "tuple[int, QuorumFuture]":
        """One broadcast attempt under a fresh request id (the retry unit)."""
        request_id = self.new_request_id()
        gather = QuorumFuture(self.sim, threshold=threshold,
                              label=f"{self.pid}:{label}#{request_id}",
                              distinct_by=_responder, expected=len(servers))
        alive = [s for s in servers if not self.network.is_crashed(s)]
        if len(alive) < threshold:
            raise QuorumUnavailableError(
                f"{self.pid}: {label} needs {threshold} replies but only "
                f"{len(alive)} of {len(servers)} servers are alive"
            )
        self._pending_gathers[request_id] = gather

        if self.metrics is None:
            def cleanup(_fut: SimFuture) -> None:
                self._pending_gathers.pop(request_id, None)

            gather.add_done_callback(cleanup)
        else:
            self._observe_round(gather, request_id, label)
        for server in servers:
            self.send(server, make_message(request_id))
        return request_id, gather

    def _observe_round(self, gather: QuorumFuture, request_id: int,
                       label: str) -> None:
        """Attach a metrics done-callback timing this quorum round.

        Future callbacks fire synchronously inside ``set_result`` /
        ``set_exception`` -- no event is scheduled -- so observing the round
        cannot perturb the simulation.  Successful rounds record their
        virtual-time duration into the ``round:{label}`` histogram; failed
        rounds (refused / quorum lost) bump the ``round_failures`` counter.
        The callback doubles as the pending-gather cleanup, replacing the
        plain path's closure rather than stacking on top of it.  The
        ``round:{label}`` series handle is resolved once per process and
        label (a registry is installed once per run, so a cached handle can
        never go stale) and fed through the registry's lookup-free
        ``observe_since`` fast path when the round completes.
        """
        handle = self._round_handles.get(label)
        if handle is None:
            name = _ROUND_SERIES.get(label)
            if name is None:
                name = _ROUND_SERIES.setdefault(label, f"round:{label}")
            handle = self._round_handles[label] = \
                self.metrics.histogram_handle(name)
        gather.add_done_callback(
            _RoundTimer(self, request_id, handle, self.sim.now))

    def open_gather(self, threshold: int, label: str = "gather") -> "tuple[int, QuorumFuture]":
        """Register a reply-gathering future without sending any request.

        Used when the replies will come from processes other than the ones
        the request was sent to (e.g. the direct state transfer of Section 5,
        where the request goes to the old configuration's servers but the
        acks come from the new configuration's servers).  Returns the request
        id to embed in outgoing messages and the future to await.
        """
        request_id = self.new_request_id()
        gather = QuorumFuture(self.sim, threshold=threshold,
                              label=f"{self.pid}:{label}#{request_id}",
                              distinct_by=_responder)
        self._pending_gathers[request_id] = gather
        gather.add_done_callback(lambda _f: self._pending_gathers.pop(request_id, None))
        return request_id, gather

    def scatter_and_gather(
        self,
        messages: Dict[ProcessId, Callable[[int], "Message"]],
        threshold: int,
        label: str = "scatter",
    ) -> QuorumFuture:
        """Like :meth:`broadcast_and_gather` but with a per-destination message.

        ``messages`` maps each destination to a factory receiving the request
        id; used by erasure-coded ``put-data`` where every server receives its
        own coded element.
        """
        if self.retry_policy is None:
            return self._open_scatter(messages, threshold, label)[1]
        return self._gather_with_retries(
            lambda: self._open_scatter(messages, threshold, label), label)

    def _open_scatter(
        self,
        messages: Dict[ProcessId, Callable[[int], "Message"]],
        threshold: int,
        label: str,
    ) -> "tuple[int, QuorumFuture]":
        """One scatter attempt under a fresh request id (the retry unit)."""
        request_id = self.new_request_id()
        gather = QuorumFuture(self.sim, threshold=threshold,
                              label=f"{self.pid}:{label}#{request_id}",
                              distinct_by=_responder, expected=len(messages))
        alive = [s for s in messages if not self.network.is_crashed(s)]
        if len(alive) < threshold:
            raise QuorumUnavailableError(
                f"{self.pid}: {label} needs {threshold} replies but only "
                f"{len(alive)} of {len(messages)} servers are alive"
            )
        self._pending_gathers[request_id] = gather
        if self.metrics is None:
            gather.add_done_callback(
                lambda _f: self._pending_gathers.pop(request_id, None))
        else:
            self._observe_round(gather, request_id, label)
        for server, make_message in messages.items():
            self.send(server, make_message(request_id))
        return request_id, gather

    # ---------------------------------------------------------------- retries
    def _gather_with_retries(
        self,
        open_attempt: Callable[[], "tuple[int, QuorumFuture]"],
        label: str,
    ) -> SimFuture:
        """Drive ``open_attempt`` under the installed :class:`RetryPolicy`.

        Returns the completion future of a retry coroutine owned by this
        process (so a crash aborts the loop like any protocol coroutine).
        Each attempt runs under a *fresh* request id; an abandoned attempt's
        pending gather is unregistered, so straggler replies from it fall
        through to :meth:`on_message` as unsolicited no-ops.
        """
        return self.spawn(self._retry_driver(open_attempt, label),
                          label=f"{self.pid}:{label}:retry").completion

    def _retry_driver(self, open_attempt, label: str):
        policy = self.retry_policy
        rng = self._retry_rng
        last_failure: Optional[BaseException] = None
        for attempt in range(1, policy.attempts + 1):
            if attempt > 1:
                self.retries += 1
                if self.metrics is not None:
                    self.metrics.inc("retries")
                yield self.sleep(policy.backoff(attempt - 1, rng))
            try:
                request_id, gather = open_attempt()
            except (QuorumRefusedError, QuorumUnavailableError) as error:
                last_failure = error
                continue
            timer = Timer(self.sim, policy.timeout, label=f"{label}:attempt-timeout")
            try:
                yield any_of(self.sim, [gather, timer], label=f"{label}:attempt")
            except (QuorumRefusedError, QuorumUnavailableError) as error:
                timer.cancel()
                if is_retirement_refusal(error):
                    # The configuration was retired: re-broadcasting the same
                    # gather can never succeed (retirement is permanent, not
                    # pressure that drains).  Surface immediately so the
                    # protocol layer restarts from read-config and converges
                    # through the tombstone instead of burning the budget.
                    raise
                last_failure = error
                continue
            if gather.done():
                timer.cancel()
                return gather.result()
            # Timed out: abandon the attempt so late replies are ignored.
            self._pending_gathers.pop(request_id, None)
            last_failure = QuorumUnavailableError(
                f"{self.pid}: {label} attempt {attempt} timed out "
                f"after {policy.timeout:g}")
        raise RetriesExhaustedError(
            f"{self.pid}: {label} failed after {policy.attempts} attempts: "
            f"{last_failure!r}")

    # ------------------------------------------------------------ coroutines
    def spawn(self, generator: Generator, label: str = "") -> Coroutine:
        """Run a protocol coroutine owned by this process."""
        coroutine = spawn(self.sim, generator, label=label or f"{self.pid}:coroutine")
        self._coroutines.append(coroutine)
        # Drop completed coroutines opportunistically to bound memory in long runs.
        if len(self._coroutines) > 64:
            self._coroutines = [c for c in self._coroutines if not c.done()]
        return coroutine

    def sleep(self, delay: float) -> Timer:
        """Return a future that resolves ``delay`` time units from now."""
        return Timer(self.sim, delay, label=f"{self.pid}:sleep")

    # -------------------------------------------------------------- cosmetics
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.pid} {status}>"
