"""A minimal bounded LRU mapping with hit/miss accounting.

Shared by the interned ``Value.of_size`` payload cache and the
Reed-Solomon decode-inverse cache (and any future memoisation on a hot
path): single-threaded, deterministic, no TTLs -- just ``get`` /
``put`` / LRU eviction at a fixed capacity, with the counters the
benchmarks report.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class BoundedLRU(Generic[K, V]):
    """An ``OrderedDict``-backed LRU cache with a hard entry bound."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LRU maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> Optional[V]:
        """The cached value (refreshed as most-recent) or ``None``; counts."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> V:
        """Insert (or refresh) ``key``, evicting the least-recent overflow."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, int]:
        """The counters every cache-reporting surface exposes."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries), "maxsize": self.maxsize}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:  # no counter traffic
        return key in self._entries
