"""Exception hierarchy for the ARES reproduction.

Every exception raised by library code derives from :class:`ReproError` so
that callers can catch failures of the storage service without accidentally
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    already been closed, or resuming a coroutine that has terminated.
    """


class StreamingHistoryError(ReproError):
    """A streaming history was used outside its contract.

    Streaming mode folds verified operations away as their concurrency
    windows close, so APIs that need the full record set
    (``operations()``, ``signature()``, ``split_by_key()``, ...) are
    unavailable, recording must happen in non-decreasing event-time order,
    and no further records may be added after ``finalize()``.
    """


class StreamingWindowError(StreamingHistoryError):
    """The open concurrency window exceeded the configured bound.

    Streaming histories promise O(open window) memory; an operation that
    never responds keeps the fold frontier pinned, so the window would grow
    without bound.  Raised by :meth:`repro.spec.history.History.invoke` when
    the number of unfolded records passes ``window_limit``.
    """


class StreamingAmbiguityError(StreamingHistoryError):
    """The online checker cannot decide the history without full records.

    The online checker is the streaming variant of the *fast* register
    checker; histories the fast checker hands to the Wing-Gong reference
    search (duplicate value labels, no greedy witness order) need the full
    record set, which streaming mode has already discarded.  Re-run the
    scenario in batch mode to obtain a verdict.
    """


class QuorumUnavailableError(ReproError):
    """Not enough live servers remain to assemble the required quorum.

    Raised by client-side protocol actions when the set of non-crashed
    servers in a configuration can no longer satisfy the quorum the action is
    waiting for.  The paper assumes at most ``f <= (n - k) / 2`` crash
    failures per configuration; this error signals that the assumption has
    been violated for the configuration at hand.
    """


#: Refusal reason servers attach when NACKing a request addressed to a
#: configuration they have retired (see ``AresServer``); clients recognise
#: it via :func:`is_retirement_refusal` and restart from ``read-config``
#: instead of retrying a gather that can never succeed.
RETIRED_CONFIG_REASON = "retired-config"


class QuorumRefusedError(ReproError):
    """Enough servers *refused* the request that the quorum cannot complete.

    Servers under resource pressure (memory budget exceeded, disk full,
    inflight queue exhausted) reply with an explicit NACK instead of
    silently dropping the request.  When the refusals leave fewer than
    ``threshold`` potential acceptances among the processes contacted, the
    phase fails fast with this error -- a *retriable* condition, unlike
    :class:`QuorumUnavailableError` which reflects fail-stop crashes.

    ``reasons`` carries the distinct refusal reason strings collected from
    the NACKs (empty when the refusals carried none), so callers can treat
    e.g. retirement refusals differently from resource pressure without
    parsing the message text.
    """

    def __init__(self, message: str, reasons: "tuple[str, ...]" = ()) -> None:
        super().__init__(message)
        self.reasons = tuple(reasons)


def is_retirement_refusal(error: BaseException) -> bool:
    """Whether ``error`` is a quorum refusal caused by retired configurations.

    True only when *every* collected reason is :data:`RETIRED_CONFIG_REASON`:
    a gather refused partly for resource pressure keeps its ordinary
    retriable semantics (backoff may find the server drained), whereas a
    pure retirement refusal is permanent for that configuration and the
    operation must re-run ``read-config`` to jump past it.
    """
    reasons = getattr(error, "reasons", ())
    return (isinstance(error, QuorumRefusedError) and bool(reasons)
            and all(reason == RETIRED_CONFIG_REASON for reason in reasons))


class RetriesExhaustedError(ReproError):
    """A client exhausted its retry budget without completing a quorum phase.

    Raised by the retry driver in :class:`~repro.sim.process.Process` after
    ``RetryPolicy.attempts`` attempts each either timed out or were refused
    by the contacted quorum.  Surfaces through the workload driver as an
    operation error, so liveness checks report a clean failure instead of a
    stalled session.
    """


class DecodeError(ReproError):
    """An erasure-coded value could not be reconstructed.

    Raised by :mod:`repro.erasure` when fewer than ``k`` distinct coded
    elements are supplied, or when the supplied fragments are inconsistent
    (for instance, fragments of different lengths).
    """


class ConfigurationError(ReproError):
    """A configuration object is malformed or used inconsistently.

    Examples: an ``[n, k]`` code whose ``n`` differs from the number of
    servers in the configuration, a quorum system whose quorums are not
    subsets of the server set, or an attempt to install a configuration with
    an identifier that is already in use.
    """


class OperationAborted(ReproError):
    """A client operation was aborted before completion.

    This is raised into a protocol coroutine when the owning client process
    crashes while the operation is still pending, so that in-flight state is
    unwound instead of silently lingering.
    """


class ConsensusError(ReproError):
    """A consensus instance failed to reach a decision.

    Single-decree Paxos as implemented here always terminates in the
    simulator's failure model (a quorum of acceptors stays alive); this error
    guards against misuse, such as proposing ``None`` or reusing a proposer
    object after its instance decided.
    """
