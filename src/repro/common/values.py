"""Object values with explicit sizes.

The paper's cost model normalises storage and communication costs by the
size of the object value ``v`` ("we compute the costs under the assumption
that v has size 1 unit").  :class:`Value` therefore carries an explicit byte
payload whose length is the size used by the accounting machinery, plus a
human-readable label used by tests and the linearizability checker to
identify which write produced a value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Value:
    """An opaque object value.

    Attributes
    ----------
    payload:
        The raw bytes of the value.  Erasure coding operates on this payload.
    label:
        Optional human-readable identity of the value (e.g. ``"w0:3"`` for
        the third write of writer 0).  Labels are what the linearizability
        checker matches on; they are treated as metadata and never counted
        towards communication or storage cost.
    """

    payload: bytes
    label: Optional[str] = None

    @property
    def size(self) -> int:
        """Size of the value in bytes (the paper's "1 unit" when normalised)."""
        return len(self.payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.label is not None:
            return f"Value({self.label}, {self.size}B)"
        return f"Value({self.size}B)"

    @classmethod
    def of_size(cls, size: int, label: Optional[str] = None, fill: int = 0xAB) -> "Value":
        """Create a synthetic value of exactly ``size`` bytes.

        Used by workload generators and benchmarks where only the size of
        the value matters.
        """
        if size < 0:
            raise ValueError("value size must be non-negative")
        return cls(payload=bytes([fill % 256]) * size, label=label)

    @classmethod
    def from_text(cls, text: str, label: Optional[str] = None) -> "Value":
        """Create a value from a UTF-8 string (handy in examples)."""
        return cls(payload=text.encode("utf-8"), label=label if label is not None else text)

    def as_text(self) -> str:
        """Decode the payload as UTF-8 (inverse of :meth:`from_text`)."""
        return self.payload.decode("utf-8")


#: The initial value ``v0`` associated with the initial tag ``t0``.
BOTTOM_VALUE = Value(payload=b"", label="v0")
