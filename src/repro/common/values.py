"""Object values with explicit sizes.

The paper's cost model normalises storage and communication costs by the
size of the object value ``v`` ("we compute the costs under the assumption
that v has size 1 unit").  :class:`Value` therefore carries an explicit byte
payload whose length is the size used by the accounting machinery, plus a
human-readable label used by tests and the linearizability checker to
identify which write produced a value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.lru import BoundedLRU

#: Interned ``of_size`` payloads: ``(size, fill) -> bytes``.  Workload storms
#: write thousands of values that differ only in their label; sharing the
#: (immutable) payload bytes makes each write O(1) in allocations instead of
#: O(size).  Bounded LRU so sweeping many distinct sizes cannot pin
#: arbitrarily many large buffers.
_PAYLOAD_CACHE: BoundedLRU[Tuple[int, int], bytes] = BoundedLRU(maxsize=64)


def payload_cache_info() -> Dict[str, int]:
    """Counters and occupancy of the interned ``of_size`` payload cache."""
    return _PAYLOAD_CACHE.info()


def payload_cache_clear() -> None:
    """Drop every interned payload (test isolation hook)."""
    _PAYLOAD_CACHE.clear()


@dataclass(frozen=True)
class Value:
    """An opaque object value.

    Attributes
    ----------
    payload:
        The raw bytes of the value.  Erasure coding operates on this payload.
    label:
        Optional human-readable identity of the value (e.g. ``"w0:3"`` for
        the third write of writer 0).  Labels are what the linearizability
        checker matches on; they are treated as metadata and never counted
        towards communication or storage cost.
    """

    payload: bytes
    label: Optional[str] = None

    @property
    def size(self) -> int:
        """Size of the value in bytes (the paper's "1 unit" when normalised)."""
        return len(self.payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.label is not None:
            return f"Value({self.label}, {self.size}B)"
        return f"Value({self.size}B)"

    @classmethod
    def of_size(cls, size: int, label: Optional[str] = None, fill: int = 0xAB) -> "Value":
        """Create a synthetic value of exactly ``size`` bytes.

        Used by workload generators and benchmarks where only the size of
        the value matters.  Payloads are interned by ``(size, fill)``: two
        calls with equal parameters share one immutable ``bytes`` object, so
        a storm of same-size writes allocates payload bytes once per distinct
        size, not once per operation.
        """
        if size < 0:
            raise ValueError("value size must be non-negative")
        key = (size, fill % 256)
        payload = _PAYLOAD_CACHE.get(key)
        if payload is None:
            payload = _PAYLOAD_CACHE.put(key, bytes([fill % 256]) * size)
        return cls(payload=payload, label=label)

    @classmethod
    def from_text(cls, text: str, label: Optional[str] = None) -> "Value":
        """Create a value from a UTF-8 string (handy in examples)."""
        return cls(payload=text.encode("utf-8"), label=label if label is not None else text)

    def as_text(self) -> str:
        """Decode the payload as UTF-8 (inverse of :meth:`from_text`)."""
        return self.payload.decode("utf-8")


#: The initial value ``v0`` associated with the initial tag ``t0``.
BOTTOM_VALUE = Value(payload=b"", label="v0")
