"""Common value types shared by every subsystem.

The module hosts the small, immutable data types the paper's pseudocode is
written in terms of: logical tags ``(z, w)``, tag-value pairs, opaque values
with an explicit size (used for cost accounting), and process/configuration
identifiers.
"""

from repro.common.tags import Tag, TagValue, BOTTOM_TAG
from repro.common.values import Value, BOTTOM_VALUE
from repro.common.ids import ProcessId, ConfigId, Role
from repro.common.errors import (
    ReproError,
    QuorumUnavailableError,
    DecodeError,
    ConfigurationError,
    OperationAborted,
    SimulationError,
)

__all__ = [
    "Tag",
    "TagValue",
    "BOTTOM_TAG",
    "Value",
    "BOTTOM_VALUE",
    "ProcessId",
    "ConfigId",
    "Role",
    "ReproError",
    "QuorumUnavailableError",
    "DecodeError",
    "ConfigurationError",
    "OperationAborted",
    "SimulationError",
]
