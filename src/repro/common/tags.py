"""Logical tags and tag-value pairs.

A tag ``τ`` is a pair ``(z, w)`` where ``z`` is a natural number and ``w`` a
writer identifier (Section 2, "Tags").  Tags are totally ordered: first by
the integer part, ties broken by the writer identifier.  The initial tag of
every object is ``t0 = (0, ⊥)`` which compares smaller than any tag produced
by a writer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.common.ids import ProcessId
    from repro.common.values import Value


@dataclass(frozen=True)
class Tag:
    """A logical timestamp ``(z, w)``.

    Attributes
    ----------
    z:
        Monotonically increasing integer component.
    writer:
        The :class:`~repro.common.ids.ProcessId` of the writer that created
        the tag, or ``None`` for the initial tag ``t0``.
    """

    z: int
    writer: Optional["ProcessId"] = None
    # Tags are compared on every quorum reply (max-tag selection, server
    # updates), so the comparison key is built once at construction instead
    # of twice per comparison.  ``compare=False`` keeps equality and hashing
    # on ``(z, writer)`` exactly as before.
    sort_key: tuple = field(init=False, repr=False, compare=False)
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # ``None`` (the initial writer) sorts below every real writer id.
        writer_key = ("", -1) if self.writer is None else self.writer.sort_key
        object.__setattr__(self, "sort_key", (self.z, writer_key))
        # Tags key the per-server DAP state dictionaries, so they are hashed
        # on nearly every protocol message; same basis as the generated hash.
        object.__setattr__(self, "_hash", hash((self.z, self.writer)))

    def __hash__(self) -> int:
        return self._hash

    def _key(self) -> tuple:
        """The ``(z, writer)`` comparison key (kept for introspection)."""
        return self.sort_key

    def __lt__(self, other: "Tag") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Tag") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "Tag") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "Tag") -> bool:
        return self.sort_key >= other.sort_key

    def increment(self, writer: "ProcessId") -> "Tag":
        """Return the tag ``(z + 1, writer)`` used by a write operation.

        This is the ``inc(t)`` step of template A1: the writer bumps the
        integer part of the maximum tag it discovered and stamps it with its
        own identifier.
        """
        return Tag(z=self.z + 1, writer=writer)

    def is_initial(self) -> bool:
        """Return ``True`` if this is the initial tag ``t0``."""
        return self.z == 0 and self.writer is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        owner = self.writer.name if self.writer is not None else "⊥"
        return f"({self.z},{owner})"


#: The initial tag ``t0`` carried by every object before the first write.
BOTTOM_TAG = Tag(z=0, writer=None)


@dataclass(frozen=True)
class TagValue:
    """An immutable ``(tag, value)`` pair as exchanged by the DAPs."""

    tag: Tag
    value: "Value"

    def __lt__(self, other: "TagValue") -> bool:
        return self.tag < other.tag

    def __le__(self, other: "TagValue") -> bool:
        return self.tag <= other.tag

    def __gt__(self, other: "TagValue") -> bool:
        return self.tag > other.tag

    def __ge__(self, other: "TagValue") -> bool:
        return self.tag >= other.tag

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.tag}, {self.value}>"


def max_tag(tags: "list[Tag]", default: Optional[Tag] = None) -> Tag:
    """Return the maximum of ``tags``.

    Parameters
    ----------
    tags:
        Possibly empty list of tags.
    default:
        Value to return when ``tags`` is empty; defaults to
        :data:`BOTTOM_TAG`.
    """
    if not tags:
        return BOTTOM_TAG if default is None else default
    best = tags[0]
    for tag in tags[1:]:
        if tag > best:
            best = tag
    return best


def max_tag_value(pairs: "list[TagValue]", default: Optional[TagValue] = None) -> Optional[TagValue]:
    """Return the pair with the maximum tag, or ``default`` if empty."""
    if not pairs:
        return default
    best = pairs[0]
    for pair in pairs[1:]:
        if pair.tag > best.tag:
            best = pair
    return best
