"""Process and configuration identifiers.

The paper distinguishes four kinds of processes -- writers ``W``, readers
``R``, reconfiguration clients ``G`` and servers ``S`` -- and a countable set
``C`` of configuration identifiers.  Identifiers are small immutable objects
that are totally ordered so they can be embedded in tags and used as
dictionary keys throughout the protocol stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Role(enum.Enum):
    """The role a process plays in the emulation."""

    WRITER = "writer"
    READER = "reader"
    RECONFIGURER = "reconfigurer"
    SERVER = "server"
    AUXILIARY = "auxiliary"

    def is_client(self) -> bool:
        """Return ``True`` for processes in ``I = W ∪ R ∪ G``."""
        return self in (Role.WRITER, Role.READER, Role.RECONFIGURER)


@dataclass(frozen=True, order=True)
class ProcessId:
    """Globally unique identifier of a process.

    Ordering is (role-name, index) which gives writers a deterministic total
    order; the writer order is what breaks ties between equal integer parts
    of tags (Section 2, "Tags").

    Attributes
    ----------
    role:
        The :class:`Role` the process plays.
    index:
        A small integer distinguishing processes of the same role.
    """

    sort_key: tuple = field(init=False, repr=False, compare=True)
    role: Role = field(compare=False)
    index: int = field(compare=False)
    # Identifiers are used as dictionary keys (process registries, traffic
    # accounting, quorum dedup) on every message of every execution, so the
    # hash and display name are computed once at construction.  The hash
    # basis is unchanged, keeping set/dict layouts identical to older builds.
    _hash: int = field(init=False, repr=False, compare=False)
    _name: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sort_key", (self.role.value, self.index))
        object.__setattr__(self, "_hash", hash((self.role, self.index)))
        object.__setattr__(self, "_name", f"{self.role.value}-{self.index}")

    @property
    def name(self) -> str:
        """Short human-readable name, e.g. ``writer-0`` or ``server-3``."""
        return self._name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self._name

    def __hash__(self) -> int:
        return self._hash


def writer_id(index: int) -> ProcessId:
    """Return the :class:`ProcessId` of writer ``index``."""
    return ProcessId(role=Role.WRITER, index=index)


def reader_id(index: int) -> ProcessId:
    """Return the :class:`ProcessId` of reader ``index``."""
    return ProcessId(role=Role.READER, index=index)


def reconfigurer_id(index: int) -> ProcessId:
    """Return the :class:`ProcessId` of reconfiguration client ``index``."""
    return ProcessId(role=Role.RECONFIGURER, index=index)


def server_id(index: int) -> ProcessId:
    """Return the :class:`ProcessId` of server ``index``."""
    return ProcessId(role=Role.SERVER, index=index)


@dataclass(frozen=True, order=True)
class ConfigId:
    """Unique identifier of a configuration (an element of the set ``C``).

    Configuration identifiers need only be unique and hashable; a total order
    is provided for determinism of data structures, it carries no protocol
    meaning.
    """

    name: str
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Same basis as the dataclass-generated hash (the compare fields).
        object.__setattr__(self, "_hash", hash((self.name,)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def config_id(index: int) -> ConfigId:
    """Return a conventional configuration identifier ``c<index>``."""
    return ConfigId(name=f"c{index}")


def parse_any_id(value: Any) -> Any:
    """Best-effort normalisation used by diagnostic tooling.

    Accepts an existing :class:`ProcessId`/:class:`ConfigId` (returned as-is)
    or a string of the form ``"writer-3"`` / ``"c2"`` and converts it to the
    appropriate identifier object.  Raises :class:`ValueError` for anything
    else.
    """
    if isinstance(value, (ProcessId, ConfigId)):
        return value
    if isinstance(value, str):
        if value.startswith("c") and value[1:].isdigit():
            return ConfigId(name=value)
        for role in Role:
            prefix = role.value + "-"
            if value.startswith(prefix) and value[len(prefix):].isdigit():
                return ProcessId(role=role, index=int(value[len(prefix):]))
    raise ValueError(f"cannot interpret {value!r} as a process or configuration id")
