"""Abstract erasure-code interface and the coded-element type.

Every configuration in ARES carries a code (Reed-Solomon for TREAS-backed
configurations, replication for ABD-backed ones).  The code maps a
:class:`~repro.common.values.Value` to ``n`` :class:`CodedElement` objects
(``Φ_i(v)`` in the paper) and reconstructs the value from any ``k`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.common.values import Value


@dataclass(frozen=True)
class CodedElement:
    """One coded element ``c_i = Φ_i(v)``.

    Attributes
    ----------
    index:
        The output component ``i`` (0-based); the paper associates coded
        element ``c_i`` with server ``i``.
    payload:
        The fragment bytes; for an ``[n, k]`` code the accounted size is
        ``ceil(|v| / k)`` (plus negligible padding bookkeeping).
    original_size:
        The size of the original value in bytes, needed to strip padding at
        decode time.  Treated as metadata for cost purposes.
    label:
        The label of the encoded value, carried for test observability only.
    """

    index: int
    payload: bytes
    original_size: int
    label: Optional[str] = None

    @property
    def size(self) -> int:
        """Fragment size in bytes (the paper's ``1/k`` units)."""
        return len(self.payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CodedElement(i={self.index}, {self.size}B, of {self.label})"


class ErasureCode:
    """Abstract ``[n, k]`` code.

    Concrete subclasses: :class:`~repro.erasure.rs.ReedSolomonCode` and
    :class:`~repro.erasure.replication.ReplicationCode`.
    """

    #: Total number of coded elements (one per server).
    n: int
    #: Number of elements sufficient (and necessary) to reconstruct the value.
    k: int

    def encode(self, value: Value) -> List[CodedElement]:
        """Encode ``value`` into ``n`` coded elements (index ``0 .. n-1``)."""
        raise NotImplementedError

    def encode_one(self, value: Value, index: int) -> CodedElement:
        """Encode only the element for server ``index`` (convenience)."""
        return self.encode(value)[index]

    def decode(self, elements: Iterable[CodedElement]) -> Value:
        """Reconstruct the value from at least ``k`` distinct coded elements.

        Raises
        ------
        repro.common.errors.DecodeError
            If fewer than ``k`` distinct indices are provided or the
            fragments are inconsistent.
        """
        raise NotImplementedError

    def is_decodable(self, elements: Iterable[CodedElement]) -> bool:
        """Whether the given elements contain ``k`` distinct indices."""
        indices = {e.index for e in elements if e is not None}
        return len(indices) >= self.k

    # ------------------------------------------------------------ cost model
    def fragment_size(self, value_size: int) -> int:
        """Size in bytes of one coded element for a value of ``value_size`` bytes."""
        if self.k == 1:
            return value_size
        return -(-value_size // self.k)  # ceil division

    def storage_overhead(self) -> float:
        """Total storage across all servers in units of the value size (``n/k``)."""
        return self.n / self.k

    def parameters(self) -> Dict[str, int]:
        """The ``(n, k)`` parameters as a dict (used in reports)."""
        return {"n": self.n, "k": self.k}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}[n={self.n}, k={self.k}]"
