"""Arithmetic over the Galois field GF(2^8).

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the conventional choice for
Reed-Solomon codes.  Multiplication and division use log/antilog tables of
the generator ``α = 2``; numpy vectorised versions are provided for bulk
encoding and decoding of byte arrays.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D
#: The multiplicative generator used to build the log tables.
GENERATOR = 2
#: Field order.
FIELD_SIZE = 256


def _build_tables() -> tuple:
    """Build exponentiation and logarithm tables for GF(2^8)."""
    exp = [0] * (2 * FIELD_SIZE)
    log = [0] * FIELD_SIZE
    x = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so that exp[log[a] + log[b]] needs no modular reduction.
    for i in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp[i] = exp[i - (FIELD_SIZE - 1)]
    return exp, log


_EXP_LIST, _LOG_LIST = _build_tables()
EXP_TABLE = np.array(_EXP_LIST, dtype=np.uint8)
LOG_TABLE = np.array(_LOG_LIST, dtype=np.int32)


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) (XOR)."""
    return (a ^ b) & 0xFF


def gf_sub(a: int, b: int) -> int:
    """Subtraction in GF(2^8) (identical to addition)."""
    return (a ^ b) & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) via log tables."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + int(LOG_TABLE[b])])


def gf_div(a: int, b: int) -> int:
    """Division in GF(2^8); raises ``ZeroDivisionError`` for ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) - int(LOG_TABLE[b])) % (FIELD_SIZE - 1)])


def gf_pow(a: int, power: int) -> int:
    """Exponentiation ``a ** power`` in GF(2^8)."""
    if power == 0:
        return 1
    if a == 0:
        return 0
    log_a = int(LOG_TABLE[a])
    return int(EXP_TABLE[(log_a * power) % (FIELD_SIZE - 1)])


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of ``a``; raises for ``a == 0``."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(EXP_TABLE[(FIELD_SIZE - 1) - int(LOG_TABLE[a])])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorised).

    Parameters
    ----------
    scalar:
        A field element in ``[0, 255]``.
    data:
        A ``uint8`` numpy array.
    """
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_scalar = int(LOG_TABLE[scalar])
    result = np.zeros_like(data)
    nonzero = data != 0
    logs = LOG_TABLE[data[nonzero].astype(np.int32)]
    result[nonzero] = EXP_TABLE[logs + log_scalar]
    return result


def gf_matmul_vec(matrix: np.ndarray, shards: List[np.ndarray]) -> List[np.ndarray]:
    """Multiply a GF(2^8) matrix by a "vector" of byte shards.

    ``matrix`` has shape ``(rows, cols)``; ``shards`` is a list of ``cols``
    equal-length ``uint8`` arrays.  Returns ``rows`` output arrays, each the
    GF-linear combination of the shards with the matrix row as coefficients.
    This is the workhorse of Reed-Solomon encoding and decoding.
    """
    rows, cols = matrix.shape
    if cols != len(shards):
        raise ValueError(f"matrix has {cols} columns but {len(shards)} shards were given")
    if not shards:
        return [np.zeros(0, dtype=np.uint8) for _ in range(rows)]
    length = len(shards[0])
    outputs = []
    for r in range(rows):
        acc = np.zeros(length, dtype=np.uint8)
        for c in range(cols):
            coeff = int(matrix[r, c])
            if coeff == 0:
                continue
            acc ^= gf_mul_bytes(coeff, shards[c])
        outputs.append(acc)
    return outputs
