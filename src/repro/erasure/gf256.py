"""Arithmetic over the Galois field GF(2^8).

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the conventional choice for
Reed-Solomon codes.  Multiplication and division use log/antilog tables of
the generator ``α = 2``; numpy vectorised versions are provided for bulk
encoding and decoding of byte arrays.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D
#: The multiplicative generator used to build the log tables.
GENERATOR = 2
#: Field order.
FIELD_SIZE = 256


def _build_tables() -> tuple:
    """Build exponentiation and logarithm tables for GF(2^8)."""
    exp = [0] * (2 * FIELD_SIZE)
    log = [0] * FIELD_SIZE
    x = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so that exp[log[a] + log[b]] needs no modular reduction.
    for i in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp[i] = exp[i - (FIELD_SIZE - 1)]
    return exp, log


_EXP_LIST, _LOG_LIST = _build_tables()
EXP_TABLE = np.array(_EXP_LIST, dtype=np.uint8)
LOG_TABLE = np.array(_LOG_LIST, dtype=np.int32)

# Tables for the fully vectorised matrix multiply: the log of zero maps to a
# sentinel so large that any sum involving it lands in the zeroed tail of the
# extended exp table -- multiplication by zero then needs no masking pass.
_ZERO_SENTINEL = 1024
_VLOG_TABLE = LOG_TABLE.astype(np.int16)
_VLOG_TABLE[0] = _ZERO_SENTINEL
_VEXP_TABLE = np.zeros(2 * _ZERO_SENTINEL + 1, dtype=np.uint8)
_VEXP_TABLE[: 2 * (FIELD_SIZE - 1)] = EXP_TABLE[: 2 * (FIELD_SIZE - 1)]


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) (XOR)."""
    return (a ^ b) & 0xFF


def gf_sub(a: int, b: int) -> int:
    """Subtraction in GF(2^8) (identical to addition)."""
    return (a ^ b) & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) via log tables."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + int(LOG_TABLE[b])])


def gf_div(a: int, b: int) -> int:
    """Division in GF(2^8); raises ``ZeroDivisionError`` for ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) - int(LOG_TABLE[b])) % (FIELD_SIZE - 1)])


def gf_pow(a: int, power: int) -> int:
    """Exponentiation ``a ** power`` in GF(2^8)."""
    if power == 0:
        return 1
    if a == 0:
        return 0
    log_a = int(LOG_TABLE[a])
    return int(EXP_TABLE[(log_a * power) % (FIELD_SIZE - 1)])


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of ``a``; raises for ``a == 0``."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(EXP_TABLE[(FIELD_SIZE - 1) - int(LOG_TABLE[a])])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorised).

    Parameters
    ----------
    scalar:
        A field element in ``[0, 255]``.
    data:
        A ``uint8`` numpy array.
    """
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_scalar = int(LOG_TABLE[scalar])
    result = np.zeros_like(data)
    nonzero = data != 0
    logs = LOG_TABLE[data[nonzero].astype(np.int32)]
    result[nonzero] = EXP_TABLE[logs + log_scalar]
    return result


def gf_matmul_vec_reference(matrix: np.ndarray, shards: List[np.ndarray]) -> List[np.ndarray]:
    """Row-by-row scalar reference of :func:`gf_matmul_vec`.

    Kept for the equivalence test and the vectorisation speedup benchmark
    (``benchmarks/bench_erasure.py``); production code uses
    :func:`gf_matmul_vec`.
    """
    rows, cols = matrix.shape
    if cols != len(shards):
        raise ValueError(f"matrix has {cols} columns but {len(shards)} shards were given")
    if not shards:
        return [np.zeros(0, dtype=np.uint8) for _ in range(rows)]
    length = len(shards[0])
    outputs = []
    for r in range(rows):
        acc = np.zeros(length, dtype=np.uint8)
        for c in range(cols):
            coeff = int(matrix[r, c])
            if coeff == 0:
                continue
            acc ^= gf_mul_bytes(coeff, shards[c])
        outputs.append(acc)
    return outputs


def gf_matmul(matrix: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Multiply a ``(rows, cols)`` GF(2^8) matrix by a ``(cols, length)`` block.

    The 2D form of :func:`gf_matmul_vec`: one table-lookup expression over
    the whole block, no per-row dispatch.  ``EXP[L[r, c] + S[c, i]]`` is
    XOR-reduced over the column axis (zero operands map to a sentinel log
    whose sums index the zeroed tail of the extended exp table).  Used by
    the erasure data path where the caller already holds the shards as a
    single matrix (:func:`repro.erasure.striping.split_into_matrix`), so
    encode is a single matmul over the parity rows and decode a single
    matmul over the cached inverse.
    """
    rows, cols = matrix.shape
    if block.shape[0] != cols:
        raise ValueError(
            f"matrix has {cols} columns but the shard block has {block.shape[0]} rows")
    length = block.shape[1]
    if rows == 0 or length == 0:
        return np.zeros((rows, length), dtype=np.uint8)
    coeffs = np.ascontiguousarray(matrix, dtype=np.uint8)
    shard_block = np.asarray(block, dtype=np.uint8)
    log_sum = _VLOG_TABLE[coeffs][:, :, None] + _VLOG_TABLE[shard_block][None, :, :]
    return np.bitwise_xor.reduce(_VEXP_TABLE[log_sum], axis=1)


def gf_matmul_vec(matrix: np.ndarray, shards: List[np.ndarray]) -> List[np.ndarray]:
    """Multiply a GF(2^8) matrix by a "vector" of byte shards.

    ``matrix`` has shape ``(rows, cols)``; ``shards`` is a list of ``cols``
    equal-length ``uint8`` arrays.  Returns ``rows`` output arrays, each the
    GF-linear combination of the shards with the matrix row as coefficients.
    This is the workhorse of Reed-Solomon encoding and decoding.

    Dense rows (two or more non-zero coefficients: the parity rows of a
    systematic generator, every row of a decode matrix that mixes parity
    fragments) are computed in a single table-lookup expression over the 2D
    shard matrix: with ``L = log(matrix)`` broadcast against
    ``S = log(shards)`` (zero operands mapped to a sentinel log whose sums
    index the zeroed tail of the extended exp table), the 3D tensor
    ``EXP[L[r, c] + S[c, i]]`` is XOR-reduced over the column axis.  No
    Python-level loop or masking pass touches a byte.  Rows with at most
    one non-zero coefficient (the identity part of a systematic generator)
    reduce to a single scaled copy.  ``benchmarks/bench_erasure.py``
    measures the speedup over the per-row/per-col reference.  Peak scratch
    memory is ``~3 * dense_rows * cols * shard_len`` bytes (a few hundred
    KiB for the [n, k] ranges the experiments use).
    """
    rows, cols = matrix.shape
    if cols != len(shards):
        raise ValueError(f"matrix has {cols} columns but {len(shards)} shards were given")
    if not shards:
        return [np.zeros(0, dtype=np.uint8) for _ in range(rows)]
    coeffs = np.ascontiguousarray(matrix, dtype=np.uint8)
    stacked = np.stack([np.asarray(shard, dtype=np.uint8) for shard in shards])
    length = stacked.shape[1]
    outputs: List[np.ndarray] = [None] * rows  # type: ignore[list-item]
    nonzero_per_row = np.count_nonzero(coeffs, axis=1)
    for r in np.flatnonzero(nonzero_per_row == 0):
        outputs[r] = np.zeros(length, dtype=np.uint8)
    for r in np.flatnonzero(nonzero_per_row == 1):
        c = int(np.flatnonzero(coeffs[r])[0])
        outputs[r] = gf_mul_bytes(int(coeffs[r, c]), stacked[c])
    dense = np.flatnonzero(nonzero_per_row > 1)
    if dense.size:
        # (d, cols, 1) + (1, cols, length) -> (d, cols, length) log-sums.
        log_sum = _VLOG_TABLE[coeffs[dense]][:, :, None] + _VLOG_TABLE[stacked][None, :, :]
        reduced = np.bitwise_xor.reduce(_VEXP_TABLE[log_sum], axis=1)
        for position, r in enumerate(dense):
            outputs[r] = reduced[position]
    return outputs
