"""Replication as the degenerate ``[n, 1]`` erasure code.

Replication-based configurations (ABD, LDR) store the whole value at every
server.  Expressing replication through the :class:`~repro.erasure.interface.ErasureCode`
interface lets the rest of the stack (DAPs, cost accounting, reconfiguration)
treat replicated and erasure-coded configurations uniformly: a "coded
element" is simply a full copy of the value and ``k = 1`` copies suffice to
"decode".
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.errors import DecodeError
from repro.common.values import Value
from repro.erasure.interface import CodedElement, ErasureCode


class ReplicationCode(ErasureCode):
    """Full replication across ``n`` servers (an ``[n, 1]`` MDS code)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("replication needs at least one server")
        self.n = n
        self.k = 1

    def encode(self, value: Value) -> List[CodedElement]:
        """Return ``n`` identical full copies of the value."""
        return [
            CodedElement(index=i, payload=value.payload,
                         original_size=value.size, label=value.label)
            for i in range(self.n)
        ]

    def decode(self, elements: Iterable[CodedElement]) -> Value:
        """Return the value from any single copy."""
        for element in elements:
            if element is None:
                continue
            return Value(payload=element.payload[: element.original_size],
                         label=element.label)
        raise DecodeError("no replica available to decode from")
