"""Systematic Reed-Solomon ``[n, k]`` MDS code over GF(2^8).

Encoding multiplies the ``k`` data shards by a systematic ``n x k`` generator
matrix built from a Vandermonde matrix (:func:`repro.erasure.matrix.systematic_generator`);
decoding inverts the ``k x k`` submatrix corresponding to the ``k`` surviving
fragments.  Any ``k`` of the ``n`` coded elements reconstruct the value,
which is exactly the MDS property the paper relies on.

This is the stand-in for pyeclib/liberasurecode in the original deployment;
the storage and communication accounting (fragment size ``|v|/k``) is
identical, only raw encode/decode throughput differs (see
``benchmarks/bench_erasure.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.common.errors import DecodeError
from repro.common.values import Value
from repro.erasure.gf256 import gf_matmul_vec
from repro.erasure.interface import CodedElement, ErasureCode
from repro.erasure.matrix import matrix_invert, systematic_generator
from repro.erasure.striping import join_shards, split_into_shards

# Generator matrices only depend on (n, k); cache them across code instances
# because deployments create one code object per configuration.
_GENERATOR_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


class ReedSolomonCode(ErasureCode):
    """A systematic Reed-Solomon ``[n, k]`` code.

    Parameters
    ----------
    n:
        Number of coded elements (must equal the configuration's server count).
    k:
        Number of elements required to decode.  TREAS liveness requires
        ``k > n/3``; the constructor enforces only ``1 <= k <= n <= 255`` and
        leaves protocol-level constraints to the configuration validation.
    """

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"invalid Reed-Solomon parameters [n={n}, k={k}]")
        if n > 255:
            raise ValueError("GF(2^8) Reed-Solomon supports at most 255 fragments")
        self.n = n
        self.k = k
        key = (n, k)
        if key not in _GENERATOR_CACHE:
            _GENERATOR_CACHE[key] = systematic_generator(n, k)
        self.generator = _GENERATOR_CACHE[key]

    # ---------------------------------------------------------------- encode
    def encode(self, value: Value) -> List[CodedElement]:
        """Encode ``value`` into ``n`` coded elements ``Φ_1(v) ... Φ_n(v)``."""
        shards = split_into_shards(value.payload, self.k)
        coded = gf_matmul_vec(self.generator, shards)
        return [
            CodedElement(index=i, payload=coded[i].tobytes(),
                         original_size=value.size, label=value.label)
            for i in range(self.n)
        ]

    # ---------------------------------------------------------------- decode
    def decode(self, elements: Iterable[CodedElement]) -> Value:
        """Reconstruct the value from any ``k`` distinct coded elements."""
        unique: Dict[int, CodedElement] = {}
        for element in elements:
            if element is None:
                continue
            if not 0 <= element.index < self.n:
                raise DecodeError(
                    f"coded element index {element.index} out of range for [n={self.n}, k={self.k}]"
                )
            unique.setdefault(element.index, element)
        if len(unique) < self.k:
            raise DecodeError(
                f"need {self.k} distinct coded elements to decode, got {len(unique)}"
            )
        chosen = [unique[i] for i in sorted(unique)][: self.k]
        sizes = {e.size for e in chosen}
        if len(sizes) > 1:
            raise DecodeError(f"inconsistent fragment sizes {sorted(sizes)}")
        original_sizes = {e.original_size for e in chosen}
        if len(original_sizes) > 1:
            raise DecodeError(
                f"fragments disagree on the original value size {sorted(original_sizes)}"
            )
        original_size = chosen[0].original_size

        indices = [e.index for e in chosen]
        submatrix = self.generator[indices, :]
        decode_matrix = matrix_invert(submatrix)
        fragments = [np.frombuffer(e.payload, dtype=np.uint8).copy() for e in chosen]
        data_shards = gf_matmul_vec(decode_matrix, fragments)
        payload = join_shards(data_shards, original_size)
        label = chosen[0].label
        return Value(payload=payload, label=label)
