"""Systematic Reed-Solomon ``[n, k]`` MDS code over GF(2^8).

Encoding multiplies the ``k`` data shards by a systematic ``n x k`` generator
matrix built from a Vandermonde matrix (:func:`repro.erasure.matrix.systematic_generator`);
decoding inverts the ``k x k`` submatrix corresponding to the ``k`` surviving
fragments.  Any ``k`` of the ``n`` coded elements reconstruct the value,
which is exactly the MDS property the paper relies on.

The data path is allocation-lean:

* the payload is striped into a ``(k, shard_len)`` reshape *view* (no
  per-shard copy; see :mod:`repro.erasure.striping`);
* because the generator is systematic, the first ``k`` coded elements are
  the data shards themselves and only the ``n - k`` parity rows go through
  one dense GF matmul (:func:`repro.erasure.gf256.gf_matmul`);
* decode inverses are memoised in a bounded LRU keyed by the sorted
  surviving-index tuple -- TREAS reads repeatedly decode from the same
  quorum, so after the first decode the Gauss-Jordan elimination disappears
  from the hot path entirely (and the all-data-shards subset skips the
  matmul too, since its decode matrix is the identity).

This is the stand-in for pyeclib/liberasurecode in the original deployment;
the storage and communication accounting (fragment size ``|v|/k``) is
identical, only raw encode/decode throughput differs (see
``benchmarks/bench_erasure.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.common.errors import DecodeError
from repro.common.lru import BoundedLRU
from repro.common.values import Value
from repro.erasure.gf256 import gf_matmul
from repro.erasure.interface import CodedElement, ErasureCode
from repro.erasure.matrix import matrix_invert, systematic_generator
from repro.erasure.striping import join_matrix, split_into_matrix

# Generator matrices only depend on (n, k); cache them across code instances
# because deployments create one code object per configuration.
_GENERATOR_CACHE: Dict[Tuple[int, int], np.ndarray] = {}

#: Memoised decode matrices: ``(n, k, surviving indices) -> inverse``.
#: Shared across code instances (the key pins the generator) and bounded so
#: a sweep over many [n, k] settings cannot grow it without limit.
_DECODE_CACHE: BoundedLRU[Tuple[int, int, Tuple[int, ...]], np.ndarray] = (
    BoundedLRU(maxsize=256))


def decode_cache_info() -> Dict[str, int]:
    """Hit/miss counters and occupancy of the decode-inverse cache."""
    return _DECODE_CACHE.info()


def decode_cache_clear() -> None:
    """Drop every memoised decode inverse and reset the counters."""
    _DECODE_CACHE.clear()


class ReedSolomonCode(ErasureCode):
    """A systematic Reed-Solomon ``[n, k]`` code.

    Parameters
    ----------
    n:
        Number of coded elements (must equal the configuration's server count).
    k:
        Number of elements required to decode.  TREAS liveness requires
        ``k > n/3``; the constructor enforces only ``1 <= k <= n <= 255`` and
        leaves protocol-level constraints to the configuration validation.
    """

    def __init__(self, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"invalid Reed-Solomon parameters [n={n}, k={k}]")
        if n > 255:
            raise ValueError("GF(2^8) Reed-Solomon supports at most 255 fragments")
        self.n = n
        self.k = k
        key = (n, k)
        if key not in _GENERATOR_CACHE:
            _GENERATOR_CACHE[key] = systematic_generator(n, k)
        self.generator = _GENERATOR_CACHE[key]
        # The generator is systematic: rows [0, k) are the identity, so only
        # the parity rows ever need a matmul.
        self._parity_rows = self.generator[k:, :]
        self._identity_indices = tuple(range(k))

    # ---------------------------------------------------------------- encode
    def encode(self, value: Value) -> List[CodedElement]:
        """Encode ``value`` into ``n`` coded elements ``Φ_1(v) ... Φ_n(v)``."""
        block = split_into_matrix(value.payload, self.k)
        size, label = value.size, value.label
        elements = [
            CodedElement(index=i, payload=block[i].tobytes(),
                         original_size=size, label=label)
            for i in range(self.k)
        ]
        if self.n > self.k:
            parity = gf_matmul(self._parity_rows, block)
            elements.extend(
                CodedElement(index=self.k + j, payload=parity[j].tobytes(),
                             original_size=size, label=label)
                for j in range(self.n - self.k)
            )
        return elements

    # ---------------------------------------------------------------- decode
    def _decode_matrix(self, indices: Tuple[int, ...]) -> np.ndarray:
        """The inverse of the generator rows at ``indices`` (memoised)."""
        key = (self.n, self.k, indices)
        cached = _DECODE_CACHE.get(key)
        if cached is not None:
            return cached
        return _DECODE_CACHE.put(key, matrix_invert(self.generator[list(indices), :]))

    def decode(self, elements: Iterable[CodedElement]) -> Value:
        """Reconstruct the value from any ``k`` distinct coded elements."""
        unique: Dict[int, CodedElement] = {}
        for element in elements:
            if element is None:
                continue
            if not 0 <= element.index < self.n:
                raise DecodeError(
                    f"coded element index {element.index} out of range for [n={self.n}, k={self.k}]"
                )
            unique.setdefault(element.index, element)
        if len(unique) < self.k:
            raise DecodeError(
                f"need {self.k} distinct coded elements to decode, got {len(unique)}"
            )
        chosen = [unique[i] for i in sorted(unique)][: self.k]
        sizes = {e.size for e in chosen}
        if len(sizes) > 1:
            raise DecodeError(f"inconsistent fragment sizes {sorted(sizes)}")
        original_sizes = {e.original_size for e in chosen}
        if len(original_sizes) > 1:
            raise DecodeError(
                f"fragments disagree on the original value size {sorted(original_sizes)}"
            )
        original_size = chosen[0].original_size

        indices = tuple(e.index for e in chosen)
        fragments = np.stack(
            [np.frombuffer(e.payload, dtype=np.uint8) for e in chosen])
        if indices == self._identity_indices:
            # All k data shards survived: the decode matrix is the identity.
            block = fragments
        else:
            block = gf_matmul(self._decode_matrix(indices), fragments)
        payload = join_matrix(block, original_size)
        label = chosen[0].label
        return Value(payload=payload, label=label)
