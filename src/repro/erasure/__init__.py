"""Erasure coding substrate.

The paper stores values with an ``[n, k]`` linear MDS code over a finite
field (Section 2, "Background on Erasure coding"): a value ``v`` is split
into ``k`` elements, encoded into ``n`` coded elements of size ``|v|/k``
each, and any ``k`` coded elements suffice to reconstruct ``v``.

This package implements that substrate from scratch:

* :mod:`repro.erasure.gf256` -- arithmetic over GF(2^8) with log/antilog tables.
* :mod:`repro.erasure.matrix` -- matrix operations (multiply, invert) over GF(2^8).
* :mod:`repro.erasure.rs` -- a systematic Reed-Solomon ``[n, k]`` MDS code.
* :mod:`repro.erasure.replication` -- replication expressed as the degenerate
  ``[n, 1]`` code, so ABD-style configurations use the same interface.
* :mod:`repro.erasure.striping` -- padding/striping of byte strings into ``k``
  equal shards.
"""

from repro.erasure.interface import ErasureCode, CodedElement
from repro.erasure.rs import ReedSolomonCode
from repro.erasure.replication import ReplicationCode

__all__ = [
    "ErasureCode",
    "CodedElement",
    "ReedSolomonCode",
    "ReplicationCode",
]
