"""Splitting byte strings into ``k`` equal shards.

Before Reed-Solomon encoding a value is divided into ``k`` data shards of
equal length (the paper: "v is divided into k elements v_1 ... v_k with each
element having size 1/k").  Values whose length is not a multiple of ``k``
are padded with zero bytes; the original length travels with every coded
element so decoding can strip the padding.

Striping is zero-copy: :func:`split_into_matrix` wraps the payload bytes in
a ``(k, shard_len)`` ``uint8`` view (one padded buffer is allocated only when
the length is not a multiple of ``k``), and :func:`split_into_shards` returns
the rows of that matrix as views.  Bytes are copied exactly once per
encode/decode -- at the final ``tobytes`` serialisation.
"""

from __future__ import annotations

from typing import List

import numpy as np


def shard_length(value_size: int, k: int) -> int:
    """Length of each of the ``k`` shards for a ``value_size``-byte value."""
    if k <= 0:
        raise ValueError("k must be positive")
    if value_size == 0:
        return 0
    return -(-value_size // k)  # ceil division


def split_into_matrix(payload: bytes, k: int) -> np.ndarray:
    """View ``payload`` as a ``(k, shard_len)`` ``uint8`` matrix (zero padded).

    When ``len(payload)`` is a positive multiple of ``k`` the result is a
    read-only reshape view of the payload's own buffer -- no bytes are
    copied.  Otherwise a single padded buffer is allocated and filled once.
    """
    length = shard_length(len(payload), k)
    if length == 0:
        return np.zeros((k, 0), dtype=np.uint8)
    total = length * k
    if len(payload) == total:
        return np.frombuffer(payload, dtype=np.uint8).reshape(k, length)
    padded = np.zeros(total, dtype=np.uint8)
    padded[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
    return padded.reshape(k, length)


def split_into_shards(payload: bytes, k: int) -> List[np.ndarray]:
    """Split ``payload`` into ``k`` equal-length ``uint8`` arrays (zero padded).

    The arrays are reshape *views* into one shared buffer (see
    :func:`split_into_matrix`); treat them as read-only.
    """
    return list(split_into_matrix(payload, k))


def join_matrix(block: np.ndarray, original_size: int) -> bytes:
    """Serialise a ``(k, shard_len)`` data-shard matrix back into bytes.

    The row-major serialisation *is* the concatenation of the shards, so no
    intermediate concatenated array is built; when the padding is zero the
    single ``tobytes`` copy is the whole cost, otherwise the trailing pad is
    sliced off the serialised bytes.
    """
    if original_size == 0:
        return b""
    data = block.tobytes()
    if len(data) == original_size:
        return data
    return data[:original_size]


def join_shards(shards: List[np.ndarray], original_size: int) -> bytes:
    """Concatenate data shards and strip padding back to ``original_size`` bytes."""
    if not shards or original_size == 0:
        return b""
    total = sum(len(shard) for shard in shards)
    if total == original_size:
        # No padding: serialise shard-by-shard, skipping the concatenate+slice.
        return b"".join(np.ascontiguousarray(shard).tobytes() for shard in shards)
    joined = np.concatenate(shards)
    return joined.tobytes()[:original_size]
