"""Splitting byte strings into ``k`` equal shards.

Before Reed-Solomon encoding a value is divided into ``k`` data shards of
equal length (the paper: "v is divided into k elements v_1 ... v_k with each
element having size 1/k").  Values whose length is not a multiple of ``k``
are padded with zero bytes; the original length travels with every coded
element so decoding can strip the padding.
"""

from __future__ import annotations

from typing import List

import numpy as np


def shard_length(value_size: int, k: int) -> int:
    """Length of each of the ``k`` shards for a ``value_size``-byte value."""
    if k <= 0:
        raise ValueError("k must be positive")
    if value_size == 0:
        return 0
    return -(-value_size // k)  # ceil division


def split_into_shards(payload: bytes, k: int) -> List[np.ndarray]:
    """Split ``payload`` into ``k`` equal-length ``uint8`` arrays (zero padded)."""
    length = shard_length(len(payload), k)
    padded = np.zeros(length * k, dtype=np.uint8)
    if payload:
        padded[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
    return [padded[i * length:(i + 1) * length].copy() for i in range(k)]


def join_shards(shards: List[np.ndarray], original_size: int) -> bytes:
    """Concatenate data shards and strip padding back to ``original_size`` bytes."""
    if not shards:
        return b""
    joined = np.concatenate(shards)
    return joined.tobytes()[:original_size]
