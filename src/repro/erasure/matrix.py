"""Matrix operations over GF(2^8).

Reed-Solomon decoding reduces to inverting the submatrix of the generator
matrix formed by the rows of the surviving coded elements.  This module
provides that inversion (Gauss-Jordan elimination in the field), plus the
Vandermonde construction used to build a systematic generator matrix.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DecodeError
from repro.erasure.gf256 import gf_div, gf_inverse, gf_mul, gf_pow


def identity_matrix(size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over GF(2^8)."""
    return np.eye(size, dtype=np.uint8)


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix ``V[i, j] = (i+1)^j`` over GF(2^8).

    Using evaluation points ``1, 2, ..., rows`` (all distinct and non-zero for
    ``rows <= 255``) guarantees every ``cols x cols`` submatrix is invertible,
    which is the MDS property.
    """
    if rows > 255:
        raise ValueError("GF(2^8) Vandermonde construction supports at most 255 rows")
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            matrix[i, j] = gf_pow(i + 1, j)
    return matrix


def matrix_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(2^8) matrices."""
    rows, inner = a.shape
    inner2, cols = b.shape
    if inner != inner2:
        raise ValueError(f"cannot multiply {a.shape} by {b.shape}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


def matrix_invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(2^8) matrix by Gauss-Jordan elimination.

    Raises
    ------
    DecodeError
        If the matrix is singular (which for Reed-Solomon means the chosen
        fragment subset cannot decode -- impossible for a true MDS generator,
        so it indicates corrupted input).
    """
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"cannot invert non-square matrix of shape {matrix.shape}")
    work = matrix.astype(np.uint8).copy()
    inverse = identity_matrix(size)

    for col in range(size):
        # Find a pivot row with a non-zero entry in this column.
        pivot = None
        for row in range(col, size):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise DecodeError("singular matrix: fragment subset is not decodable")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        # Normalise the pivot row.
        pivot_value = int(work[col, col])
        if pivot_value != 1:
            inv_pivot = gf_inverse(pivot_value)
            for j in range(size):
                work[col, j] = gf_mul(int(work[col, j]), inv_pivot)
                inverse[col, j] = gf_mul(int(inverse[col, j]), inv_pivot)
        # Eliminate the column from every other row.
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(size):
                work[row, j] ^= gf_mul(factor, int(work[col, j]))
                inverse[row, j] ^= gf_mul(factor, int(inverse[col, j]))
    return inverse


def systematic_generator(n: int, k: int) -> np.ndarray:
    """Build a systematic ``n x k`` MDS generator matrix.

    The first ``k`` rows are the identity (so the first ``k`` coded elements
    are the data shards themselves) and the remaining ``n - k`` rows are
    parity rows derived from a Vandermonde matrix.  Systematisation is done
    by right-multiplying the full Vandermonde matrix with the inverse of its
    top ``k x k`` block, which preserves the MDS property.
    """
    if k <= 0 or n < k:
        raise ValueError(f"invalid code parameters [n={n}, k={k}]")
    vander = vandermonde_matrix(n, k)
    top = vander[:k, :]
    top_inverse = matrix_invert(top)
    generator = matrix_multiply(vander, top_inverse)
    # Clean up: the top block must be exactly the identity.
    generator[:k, :] = identity_matrix(k)
    return generator
