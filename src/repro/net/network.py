"""The simulated network.

:class:`Network` owns the registry of processes, delivers messages with a
delay drawn from its :class:`~repro.net.latency.LatencyModel`, feeds the
traffic accountant, and applies failure rules (crashes, partitions, message
loss) injected through :mod:`repro.net.failures`.

Channels are reliable and FIFO-less by default, exactly matching the paper's
model: messages may be arbitrarily reordered (each draws an independent
delay) but are never lost unless a loss rule is explicitly installed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.common.errors import SimulationError
from repro.common.ids import ProcessId
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Message
from repro.net.stats import TrafficStats
from repro.sim.core import Simulator
from repro.sim.process import Process


class Network:
    """Point-to-point asynchronous network over a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulator providing the clock and RNG.
    latency:
        The latency model; defaults to :class:`FixedLatency(1.0)`.
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(1.0)
        self.stats = TrafficStats()
        self.processes: Dict[ProcessId, Process] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        # Filters return True if the message should be DROPPED.
        self._drop_filters: List[Callable[[ProcessId, ProcessId, Message], bool]] = []
        # Adjusters rewrite the sampled delivery delay (latency spikes, gray
        # failures, reordering jitter); they compose left to right.
        self._delay_adjusters: List[Callable[[ProcessId, ProcessId, Message, float], float]] = []
        # Duplicators return how many EXTRA copies of the message to deliver.
        self._duplicators: List[Callable[[ProcessId, ProcessId, Message], int]] = []
        # Observers see every (src, dest, message, deliver_time) tuple accepted for delivery.
        self._observers: List[Callable[[ProcessId, ProcessId, Message, float], None]] = []
        # True while no hook of any kind is installed; send() then takes a
        # zero-chaos fast path that skips every hook loop.
        self._quiet = True
        # Observability registry.  None (the default) costs nothing; an
        # installed registry reads the message counters above as delta
        # stat-sources at window boundaries, so even instrumented runs add
        # zero work to the per-message send path.
        self.metrics = None

    # -------------------------------------------------------------- registry
    def register(self, process: Process) -> None:
        """Register a process; its id must be unique."""
        if process.pid in self.processes:
            raise SimulationError(f"process id {process.pid} registered twice")
        self.processes[process.pid] = process

    def process(self, pid: ProcessId) -> Process:
        """Look up a registered process."""
        try:
            return self.processes[pid]
        except KeyError:
            raise SimulationError(f"unknown process {pid}") from None

    def is_crashed(self, pid: ProcessId) -> bool:
        """Whether ``pid`` has crashed (unknown processes count as crashed)."""
        process = self.processes.get(pid)
        return process is None or process.crashed

    def alive(self, pids: Iterable[ProcessId]) -> List[ProcessId]:
        """Filter ``pids`` down to those that are registered and not crashed."""
        return [p for p in pids if not self.is_crashed(p)]

    # ------------------------------------------------------------ fault hooks
    def _refresh_quiet(self) -> None:
        self._quiet = not (self._drop_filters or self._delay_adjusters
                           or self._duplicators or self._observers)

    def add_drop_filter(self, rule: Callable[[ProcessId, ProcessId, Message], bool]) -> None:
        """Install a rule; messages for which it returns ``True`` are dropped."""
        self._drop_filters.append(rule)
        self._quiet = False

    def remove_drop_filter(self, rule: Callable[[ProcessId, ProcessId, Message], bool]) -> None:
        """Remove a previously installed drop rule (no error if absent)."""
        if rule in self._drop_filters:
            self._drop_filters.remove(rule)
        self._refresh_quiet()

    def add_delay_adjuster(self, adjuster: Callable[[ProcessId, ProcessId, Message, float], float]) -> None:
        """Install a rule rewriting the delivery delay of every message.

        Adjusters receive ``(src, dest, message, delay)`` and return the new
        delay; they compose in installation order.  Negative results are
        clamped to zero.  Used by the chaos layer for latency spikes, slow
        ("gray") servers and reordering jitter.
        """
        self._delay_adjusters.append(adjuster)
        self._quiet = False

    def remove_delay_adjuster(self, adjuster: Callable[[ProcessId, ProcessId, Message, float], float]) -> None:
        """Remove a previously installed delay adjuster (no error if absent)."""
        if adjuster in self._delay_adjusters:
            self._delay_adjusters.remove(adjuster)
        self._refresh_quiet()

    def add_duplicator(self, rule: Callable[[ProcessId, ProcessId, Message], int]) -> None:
        """Install a rule returning how many extra copies of a message to deliver.

        Each extra copy draws its own latency sample, so duplicates arrive at
        independent times (and may overtake the original).  Quorum gathers
        deduplicate replies per responder, so protocols stay correct.
        """
        self._duplicators.append(rule)
        self._quiet = False

    def remove_duplicator(self, rule: Callable[[ProcessId, ProcessId, Message], int]) -> None:
        """Remove a previously installed duplication rule (no error if absent)."""
        if rule in self._duplicators:
            self._duplicators.remove(rule)
        self._refresh_quiet()

    def add_observer(self, observer: Callable[[ProcessId, ProcessId, Message, float], None]) -> None:
        """Install a passive observer of all sent messages (for tests/traces)."""
        self._observers.append(observer)
        self._quiet = False

    # --------------------------------------------------------------- delivery
    def send(self, src: ProcessId, dest: ProcessId, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dest``.

        The message is charged to the traffic accountant at send time (a
        dropped message still consumed bandwidth at the sender; a duplicated
        one is charged once per copy) and delivered after a latency-model
        delay, unless a drop filter discards it or the destination has
        crashed by delivery time.

        When no fault hook of any kind is installed (the common, chaos-free
        case) the hook loops are skipped entirely and the single delivery
        event is scheduled with pre-bound arguments -- no per-message closure
        or label allocation.  The RNG draw sequence is identical on both
        paths, so executions stay byte-for-byte deterministic.
        """
        self.messages_sent += 1
        sim = self.sim
        self.stats.record(src, dest, message.kind, message.data_bytes, message.metadata_bytes)
        # Messages addressed to a crashed process are lost even if the
        # process restarts before they would arrive: a rebooted machine
        # never sees requests sent during its outage.
        dest_process = self.processes.get(dest)
        sent_while_down = dest_process is not None and dest_process.crashed
        if self._quiet:
            delay = self.latency.sample(sim, src, dest)
            if delay < 0.0:
                delay = 0.0
            sim.schedule(
                delay, self._deliver, args=(src, dest, message, sent_while_down),
                label=f"deliver {message.kind} {src}->{dest}" if sim.trace_enabled else "")
            return
        for rule in self._drop_filters:
            if rule(src, dest, message):
                self.messages_dropped += 1
                return
        extra_copies = 0
        for duplicator in self._duplicators:
            extra_copies += max(0, int(duplicator(src, dest, message)))
        label = (f"deliver {message.kind} {src}->{dest}" if sim.trace_enabled else "")
        for copy_index in range(1 + extra_copies):
            delay = self.latency.sample(sim, src, dest)
            for adjuster in self._delay_adjusters:
                delay = adjuster(src, dest, message, delay)
            delay = max(0.0, delay)
            for observer in self._observers:
                observer(src, dest, message, sim.now + delay)
            if copy_index:
                self.messages_duplicated += 1
                # Each extra copy occupies the wire too; without this the
                # communication-cost benchmarks under-report under packet
                # chaos.
                self.stats.record(src, dest, message.kind,
                                  message.data_bytes, message.metadata_bytes)
            sim.schedule(delay, self._deliver,
                         args=(src, dest, message, sent_while_down), label=label)

    def _deliver(self, src: ProcessId, dest: ProcessId, message: Message,
                 sent_while_down: bool = False) -> None:
        process = self.processes.get(dest)
        if process is None or process.crashed or sent_while_down:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        process.deliver(src, message)

    # -------------------------------------------------------------- lifecycle
    def crash(self, pid: ProcessId) -> None:
        """Crash the process ``pid`` immediately."""
        self.process(pid).crash()

    def crash_at(self, pid: ProcessId, time: float) -> None:
        """Schedule a crash of ``pid`` at absolute virtual time ``time``."""
        self.sim.schedule_at(time, lambda: self.crash(pid), label=f"crash {pid}")

    def restart(self, pid: ProcessId) -> None:
        """Restart the crashed process ``pid`` (crash-recovery with stable storage)."""
        self.process(pid).restart()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Network processes={len(self.processes)} sent={self.messages_sent} "
                f"delivered={self.messages_delivered} dropped={self.messages_dropped}>")
