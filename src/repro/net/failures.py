"""Failure injection utilities.

The protocols are proved correct under crash-stop failures of clients and a
bounded number of servers per configuration.  The helpers here script such
failures (and harsher ones, for substrate robustness tests):

* :class:`FailureInjector` -- schedule crashes at given times, crash random
  subsets of servers respecting the per-configuration tolerance, crash a
  client in the middle of an operation.
* :class:`PartitionController` -- temporarily partition the process set into
  groups that cannot exchange messages; used only by substrate tests since
  the paper's channels are reliable.

For scripted, composable, reproducible fault *schedules* (crash/restart
cycles, partition windows, gray failures, message duplication/reordering)
use the chaos subsystem (:mod:`repro.chaos`) instead; these helpers remain
as the low-level imperative API they are built on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.common.ids import ProcessId
from repro.net.message import Message
from repro.net.network import Network


class FailureInjector:
    """Scripted crash failures on a :class:`~repro.net.network.Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sim = network.sim
        self.scheduled: List[tuple] = []

    def crash_now(self, pid: ProcessId) -> None:
        """Crash ``pid`` at the current virtual time."""
        self.network.crash(pid)
        self.scheduled.append((self.sim.now, pid))

    def crash_at(self, pid: ProcessId, time: float) -> None:
        """Crash ``pid`` at absolute time ``time``."""
        self.network.crash_at(pid, time)
        self.scheduled.append((time, pid))

    def crash_after(self, pid: ProcessId, delay: float) -> None:
        """Crash ``pid`` after ``delay`` time units from now."""
        self.crash_at(pid, self.sim.now + delay)

    def crash_random_servers(
        self,
        servers: Sequence[ProcessId],
        count: int,
        at: Optional[float] = None,
    ) -> List[ProcessId]:
        """Crash ``count`` servers chosen uniformly at random from ``servers``.

        Returns the chosen victims.  The caller is responsible for keeping
        ``count`` within the failure tolerance of the configuration
        (``f <= (n - k) / 2`` for TREAS, a minority for ABD).
        """
        pool = list(servers)
        if count > len(pool):
            raise ValueError(f"cannot crash {count} of {len(pool)} servers")
        victims = []
        for _ in range(count):
            victim = self.sim.choice(pool)
            pool.remove(victim)
            victims.append(victim)
            if at is None:
                self.crash_now(victim)
            else:
                self.crash_at(victim, at)
        return victims

    def max_tolerated_failures(self, n: int, k: int) -> int:
        """The paper's crash tolerance for an ``[n, k]`` configuration: ``⌊(n-k)/2⌋``."""
        return (n - k) // 2


class PartitionController:
    """Temporarily partition the network into disjoint groups.

    While a partition is active, messages crossing group boundaries are
    dropped.  The paper's model has reliable channels, so partitions are only
    used to test the substrate and to demonstrate (in examples) that ARES
    operations stall rather than violate safety when quorums are unreachable.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._groups: Optional[List[Set[ProcessId]]] = None
        self._rule_installed = False

    def _group_of(self, pid: ProcessId) -> int:
        assert self._groups is not None
        for index, group in enumerate(self._groups):
            if pid in group:
                return index
        return -1

    def _drop_rule(self, src: ProcessId, dest: ProcessId, message: Message) -> bool:
        if self._groups is None:
            return False
        return self._group_of(src) != self._group_of(dest)

    def partition(self, *groups: Iterable[ProcessId]) -> None:
        """Install a partition; each argument is one side."""
        self._groups = [set(group) for group in groups]
        if not self._rule_installed:
            self.network.add_drop_filter(self._drop_rule)
            self._rule_installed = True

    def heal(self) -> None:
        """Remove the partition; future messages flow normally."""
        self._groups = None

    def partition_for(self, duration: float, *groups: Iterable[ProcessId]) -> None:
        """Partition now and automatically heal after ``duration`` time units."""
        self.partition(*groups)
        self.network.sim.schedule(duration, self.heal, label="heal partition")


class MessageLossModel:
    """Drop each message independently with a fixed probability.

    Not part of the paper's model (channels are reliable); exists so that
    substrate tests can show the quorum machinery's behaviour is well-defined
    when the reliability assumption is broken.
    """

    def __init__(self, network: Network, loss_probability: float) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self.network = network
        self.loss_probability = loss_probability
        network.add_drop_filter(self._rule)

    def _rule(self, src: ProcessId, dest: ProcessId, message: Message) -> bool:
        return self.network.sim.rng.random() < self.loss_probability

    def remove(self) -> None:
        """Stop dropping messages."""
        self.network.remove_drop_filter(self._rule)
