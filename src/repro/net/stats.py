"""Traffic accounting.

The communication-cost experiments (E2, E7) need to attribute bytes on the
wire to individual operations.  The network reports every delivered message
to a :class:`TrafficStats` instance; protocol code can open *accounting
scopes* (one per client operation) so that all traffic generated while an
operation is in flight is attributed to it.

Two figures are kept for every record, mirroring the paper's cost model:

``data_bytes``
    Bytes of object value / coded elements -- the quantity the paper's
    theorems bound (normalised by the value size this is ``n/k`` and friends).
``metadata_bytes``
    Estimated bytes of tags, ids and statuses -- "negligible" in the paper,
    reported separately here for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import ProcessId


@dataclass
class TrafficRecord:
    """Aggregated traffic counters."""

    messages: int = 0
    data_bytes: int = 0
    metadata_bytes: int = 0

    def add(self, data_bytes: int, metadata_bytes: int) -> None:
        """Accumulate one message."""
        self.messages += 1
        self.data_bytes += data_bytes
        self.metadata_bytes += metadata_bytes

    @property
    def total_bytes(self) -> int:
        """Data plus metadata bytes."""
        return self.data_bytes + self.metadata_bytes

    def normalised(self, value_size: int) -> float:
        """Data bytes divided by the object value size (the paper's units)."""
        if value_size <= 0:
            return 0.0
        return self.data_bytes / value_size

    def __add__(self, other: "TrafficRecord") -> "TrafficRecord":
        return TrafficRecord(
            messages=self.messages + other.messages,
            data_bytes=self.data_bytes + other.data_bytes,
            metadata_bytes=self.metadata_bytes + other.metadata_bytes,
        )


@dataclass
class OperationScope:
    """An open accounting scope attributed to one client operation."""

    name: str
    owner: ProcessId
    record: TrafficRecord = field(default_factory=TrafficRecord)
    open: bool = True


class TrafficStats:
    """Network-wide traffic accounting.

    The global counters are always maintained.  Per-operation attribution
    works by scope: :meth:`open_scope` returns a handle; every message whose
    *sender or receiver* is the scope owner is charged to the scope while it
    is open.  Scopes are cheap, and multiple concurrent scopes (one per
    in-flight operation of different clients) are supported.
    """

    def __init__(self) -> None:
        self.global_record = TrafficRecord()
        self.per_kind: Dict[str, TrafficRecord] = {}
        self.per_link: Dict[Tuple[ProcessId, ProcessId], TrafficRecord] = {}
        self._scopes: List[OperationScope] = []
        self._per_process_scopes: Dict[ProcessId, List[OperationScope]] = {}

    # -------------------------------------------------------------- recording
    def record(self, src: ProcessId, dest: ProcessId, kind: str,
               data_bytes: int, metadata_bytes: int) -> None:
        """Record one delivered message.

        Called once per message on the wire (the network's hottest path), so
        the counter updates are inlined rather than routed through
        :meth:`TrafficRecord.add`, and the ``setdefault``-with-fresh-record
        idiom is avoided -- it would allocate a throwaway
        :class:`TrafficRecord` per call.
        """
        record = self.global_record
        record.messages += 1
        record.data_bytes += data_bytes
        record.metadata_bytes += metadata_bytes
        record = self.per_kind.get(kind)
        if record is None:
            record = self.per_kind[kind] = TrafficRecord()
        record.messages += 1
        record.data_bytes += data_bytes
        record.metadata_bytes += metadata_bytes
        link = (src, dest)
        record = self.per_link.get(link)
        if record is None:
            record = self.per_link[link] = TrafficRecord()
        record.messages += 1
        record.data_bytes += data_bytes
        record.metadata_bytes += metadata_bytes
        scopes = self._per_process_scopes
        if scopes:
            for owner in (src, dest):
                for scope in scopes.get(owner, ()):
                    if scope.open:
                        scope.record.add(data_bytes, metadata_bytes)

    # ---------------------------------------------------------------- scopes
    def open_scope(self, name: str, owner: ProcessId) -> OperationScope:
        """Open an accounting scope charging traffic to/from ``owner``."""
        scope = OperationScope(name=name, owner=owner)
        self._scopes.append(scope)
        self._per_process_scopes.setdefault(owner, []).append(scope)
        return scope

    def close_scope(self, scope: OperationScope) -> TrafficRecord:
        """Close the scope and return its accumulated record."""
        scope.open = False
        owner_scopes = self._per_process_scopes.get(scope.owner, [])
        if scope in owner_scopes:
            owner_scopes.remove(scope)
        return scope.record

    # --------------------------------------------------------------- queries
    def by_kind(self, kind: str) -> TrafficRecord:
        """Traffic for one message kind (e.g. ``"PUT-DATA"``)."""
        return self.per_kind.get(kind, TrafficRecord())

    def link(self, src: ProcessId, dest: ProcessId) -> TrafficRecord:
        """Traffic on one directed link."""
        return self.per_link.get((src, dest), TrafficRecord())

    def to_and_from(self, pid: ProcessId) -> TrafficRecord:
        """All traffic sent or received by ``pid``."""
        total = TrafficRecord()
        for (src, dest), record in self.per_link.items():
            if src == pid or dest == pid:
                total = total + record
        return total

    def reset(self) -> None:
        """Zero all counters (open scopes are preserved but also reset)."""
        self.global_record = TrafficRecord()
        self.per_kind.clear()
        self.per_link.clear()
        for scope in self._scopes:
            scope.record = TrafficRecord()

    def summary(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines = [
            f"messages:       {self.global_record.messages}",
            f"data bytes:     {self.global_record.data_bytes}",
            f"metadata bytes: {self.global_record.metadata_bytes}",
            "per message kind:",
        ]
        for kind in sorted(self.per_kind):
            record = self.per_kind[kind]
            lines.append(
                f"  {kind:<22} {record.messages:>8} msgs  {record.data_bytes:>12} data B"
            )
        return "\n".join(lines)
