"""Simulated asynchronous message-passing network.

Provides the point-to-point channels of the paper's model: asynchronous,
reliable (by default), with per-message delivery delay drawn from a
configurable latency model bounded by ``[d, D]``.  The network also keeps the
byte-level traffic accounting that the communication-cost experiments use,
and exposes hooks for crash/partition/loss injection used in robustness
tests.
"""

from repro.net.message import Message, request, reply
from repro.net.latency import LatencyModel, FixedLatency, UniformLatency, AsymmetricLatency
from repro.net.network import Network
from repro.net.stats import TrafficStats, TrafficRecord
from repro.net.failures import FailureInjector, PartitionController

__all__ = [
    "Message",
    "request",
    "reply",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "AsymmetricLatency",
    "Network",
    "TrafficStats",
    "TrafficRecord",
    "FailureInjector",
    "PartitionController",
]
