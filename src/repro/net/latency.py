"""Link latency models.

The paper's latency analysis (Section 4.4) assumes every message takes
between ``d`` (minimum) and ``D`` (maximum) time units to be delivered.  The
models here make that assumption concrete and configurable per experiment:

* :class:`FixedLatency` -- every message takes exactly ``delay`` units.
* :class:`UniformLatency` -- delays drawn uniformly from ``[d, D]``.
* :class:`AsymmetricLatency` -- different models per (source-role,
  destination-role) pair; used to reproduce the worst-case constructions in
  which reconfigurers enjoy the minimum delay ``d`` while readers/writers
  suffer the maximum ``D`` (Section 4.4, Fig. 2).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.common.ids import ProcessId, Role
from repro.sim.core import Simulator


class LatencyModel:
    """Base class: maps a (source, destination) pair to a delivery delay."""

    #: Minimum possible delay (the paper's ``d``); used by analytic formulas.
    d: float = 0.0
    #: Maximum possible delay (the paper's ``D``); used by analytic formulas.
    D: float = 0.0

    def sample(self, sim: Simulator, src: ProcessId, dest: ProcessId) -> float:
        """Return the delivery delay for one message from ``src`` to ``dest``."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message is delivered after exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay
        self.d = delay
        self.D = delay

    def sample(self, sim: Simulator, src: ProcessId, dest: ProcessId) -> float:
        return self.delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly at random from ``[d, D]`` (seeded by the simulator)."""

    def __init__(self, d: float = 1.0, D: float = 2.0) -> None:
        if d < 0 or D < d:
            raise ValueError(f"invalid latency bounds [{d}, {D}]")
        self.d = d
        self.D = D

    def sample(self, sim: Simulator, src: ProcessId, dest: ProcessId) -> float:
        return sim.uniform(self.d, self.D)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLatency(d={self.d}, D={self.D})"


class AsymmetricLatency(LatencyModel):
    """Per-role latency: different models for different (src-role, dst-role) pairs.

    Parameters
    ----------
    default:
        Model used when no override matches.
    overrides:
        Mapping from ``(src_role, dst_role)`` to a model.  ``None`` in either
        position of the key acts as a wildcard.

    Example -- the worst-case execution of the latency analysis, where
    reconfiguration traffic is fast (``d``) and client data traffic is slow
    (``D``)::

        AsymmetricLatency(
            default=FixedLatency(D),
            overrides={(Role.RECONFIGURER, None): FixedLatency(d),
                       (None, Role.RECONFIGURER): FixedLatency(d)},
        )
    """

    def __init__(
        self,
        default: LatencyModel,
        overrides: Optional[Dict[Tuple[Optional[Role], Optional[Role]], LatencyModel]] = None,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        all_models = [default, *self.overrides.values()]
        self.d = min(m.d for m in all_models)
        self.D = max(m.D for m in all_models)

    def _lookup(self, src: ProcessId, dest: ProcessId) -> LatencyModel:
        keys = [
            (src.role, dest.role),
            (src.role, None),
            (None, dest.role),
        ]
        for key in keys:
            if key in self.overrides:
                return self.overrides[key]
        return self.default

    def sample(self, sim: Simulator, src: ProcessId, dest: ProcessId) -> float:
        return self._lookup(src, dest).sample(sim, src, dest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsymmetricLatency(default={self.default!r}, overrides={len(self.overrides)})"


class CallableLatency(LatencyModel):
    """Adapter turning an arbitrary callable into a latency model.

    The callable receives ``(sim, src, dest)`` and returns the delay.  The
    caller must supply the ``d``/``D`` bounds used by analytic formulas.
    """

    def __init__(self, fn: Callable[[Simulator, ProcessId, ProcessId], float], d: float, D: float) -> None:
        self.fn = fn
        self.d = d
        self.D = D

    def sample(self, sim: Simulator, src: ProcessId, dest: ProcessId) -> float:
        return self.fn(sim, src, dest)
