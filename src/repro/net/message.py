"""Message envelopes and size accounting.

The paper's cost model distinguishes the *data* carried by a message (value
bytes or coded-element bytes, counted towards communication cost) from
*metadata* (tags, configuration identifiers, process ids, statuses -- ignored
by the cost model).  :class:`Message` therefore carries both a ``data_bytes``
figure and a ``metadata_bytes`` estimate, so experiments can report either
the paper's normalised cost or raw wire bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


_MESSAGE_COUNTER = itertools.count()

#: Nominal byte size charged for one metadata field (tag, id, status flag...).
METADATA_FIELD_BYTES = 16


@dataclass
class Message:
    """A protocol message.

    Attributes
    ----------
    kind:
        Message type, e.g. ``"QUERY-TAG"``, ``"PUT-DATA"``, ``"READ-CONFIG"``.
        The kinds used by each protocol mirror the names in the paper's
        pseudo-code.
    body:
        Arbitrary keyword payload (tags, values, coded elements, configuration
        records).  The body is never serialised -- the simulation passes
        references -- but its *accounted* size is given by ``data_bytes``.
    data_bytes:
        Number of object-value bytes carried (full value, or one coded
        element of size ``value_size / k``).  This is what the paper's
        communication-cost theorems count.
    metadata_bytes:
        Estimated size of metadata fields; excluded from the paper's cost but
        reported separately by :class:`~repro.net.stats.TrafficStats`.
    request_id:
        When this message *initiates* a quorum phase, the id the recipient
        must echo back in ``in_reply_to``.
    in_reply_to:
        Set on replies; routes the message to the originating
        :class:`~repro.sim.futures.QuorumFuture`.
    config_id:
        The configuration in whose context the message is sent, if any.
    """

    kind: str
    body: Dict[str, Any] = field(default_factory=dict)
    data_bytes: int = 0
    metadata_bytes: int = METADATA_FIELD_BYTES
    request_id: Optional[int] = None
    in_reply_to: Optional[int] = None
    config_id: Optional[Any] = None
    uid: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``message.body.get(key, default)``."""
        return self.body.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.body[key]

    @property
    def total_bytes(self) -> int:
        """Raw bytes on the wire: data plus metadata estimate."""
        return self.data_bytes + self.metadata_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        direction = f"re:{self.in_reply_to}" if self.in_reply_to is not None else f"req:{self.request_id}"
        return f"Message({self.kind}, {direction}, data={self.data_bytes}B)"


def request(
    kind: str,
    request_id: int,
    *,
    config_id: Any = None,
    data_bytes: int = 0,
    metadata_fields: int = 1,
    **body: Any,
) -> Message:
    """Build a request message initiating a quorum phase."""
    return Message(
        kind=kind,
        body=dict(body),
        data_bytes=data_bytes,
        metadata_bytes=metadata_fields * METADATA_FIELD_BYTES,
        request_id=request_id,
        config_id=config_id,
    )


def reply(
    to: Message,
    kind: Optional[str] = None,
    *,
    data_bytes: int = 0,
    metadata_fields: int = 1,
    **body: Any,
) -> Message:
    """Build a reply to ``to``, echoing its request id."""
    return Message(
        kind=kind if kind is not None else f"{to.kind}-ACK",
        body=dict(body),
        data_bytes=data_bytes,
        metadata_bytes=metadata_fields * METADATA_FIELD_BYTES,
        in_reply_to=to.request_id,
        config_id=to.config_id,
    )
