"""Analytic formulas and measured-cost extraction.

* :mod:`repro.analysis.costs`   -- the storage/communication cost formulas of
  Theorem 3 (TREAS) and their ABD counterparts, plus helpers measuring the
  same quantities on a live deployment.
* :mod:`repro.analysis.latency` -- the latency bounds of Section 4.4
  (Lemmas 55-60).
* :mod:`repro.analysis.report`  -- small plain-text table renderer used by the
  benchmark harness to print paper-style tables.
"""

from repro.analysis.costs import (
    treas_storage_cost,
    treas_write_cost,
    treas_read_cost,
    abd_storage_cost,
    abd_write_cost,
    abd_read_cost,
    measure_operation_traffic,
)
from repro.analysis.latency import (
    read_config_bounds,
    rw_operation_upper_bound,
    reconfig_pipeline_lower_bound,
    min_delay_for_termination,
)
from repro.analysis.report import Table

__all__ = [
    "treas_storage_cost",
    "treas_write_cost",
    "treas_read_cost",
    "abd_storage_cost",
    "abd_write_cost",
    "abd_read_cost",
    "measure_operation_traffic",
    "read_config_bounds",
    "rw_operation_upper_bound",
    "reconfig_pipeline_lower_bound",
    "min_delay_for_termination",
    "Table",
]
