"""The latency bounds of Section 4.4 (Lemmas 55-60).

All bounds are expressed in terms of the minimum (``d``) and maximum (``D``)
message delay and the consensus decision time ``T(CN)``, matching the
notation of the paper.  The benchmark harness prints these bounds next to
the latencies measured on the simulator, so the "shape" claims of the
analysis (which quantity grows with what) can be checked directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


def put_config_bounds(d: float, D: float) -> Tuple[float, float]:
    """Lemma 55(i): ``2d ≤ T(put-config) ≤ 2D``."""
    return 2 * d, 2 * D


def read_next_config_bounds(d: float, D: float) -> Tuple[float, float]:
    """Lemma 55(ii): ``2d ≤ T(read-next-config) ≤ 2D``."""
    return 2 * d, 2 * D


def dap_bounds(d: float, D: float) -> Tuple[float, float]:
    """Lemma 58: every two-phase DAP action takes between ``2d`` and ``2D``."""
    return 2 * d, 2 * D


def read_config_bounds(d: float, D: float, mu: int, nu: int) -> Tuple[float, float]:
    """Lemma 56: ``4d(ν-µ+1) ≤ T(read-config) ≤ 4D(ν-µ+1)``."""
    steps = nu - mu + 1
    return 4 * d * steps, 4 * D * steps


def rw_operation_upper_bound(D: float, mu_start: int, nu_end: int) -> float:
    """Lemma 59: a read/write takes at most ``6D(ν(σ_e) - µ(σ_s) + 2)``."""
    return 6 * D * (nu_end - mu_start + 2)


def reconfig_pipeline_lower_bound(d: float, consensus_delay: float, k: int) -> float:
    """Lemma 57: installing ``k`` back-to-back configurations takes at least
    ``4d·Σ_{i=1..k} i + k·(T(CN) + 2d)``."""
    return 4 * d * (k * (k + 1) // 2) + k * (consensus_delay + 2 * d)


def min_delay_for_termination(D: float, consensus_delay: float, k: int) -> float:
    """Lemma 60: a read/write terminates despite ``k`` concurrent installs if
    ``d ≥ 3D/k − T(CN) / (2(k+2))``."""
    return 3 * D / k - consensus_delay / (2 * (k + 2))


@dataclass
class LatencyEnvelope:
    """Convenience bundle of the bounds for a given ``(d, D, T(CN))`` setting."""

    d: float
    D: float
    consensus_delay: float = 0.0

    def read_config(self, mu: int, nu: int) -> Tuple[float, float]:
        """Bounds for one ``read-config`` spanning indices ``[µ, ν]``."""
        return read_config_bounds(self.d, self.D, mu, nu)

    def rw_operation(self, mu_start: int, nu_end: int) -> float:
        """Upper bound for a read/write operation."""
        return rw_operation_upper_bound(self.D, mu_start, nu_end)

    def reconfig_pipeline(self, k: int) -> float:
        """Lower bound for installing ``k`` consecutive configurations."""
        return reconfig_pipeline_lower_bound(self.d, self.consensus_delay, k)

    def termination_threshold(self, k: int) -> float:
        """Minimum ``d`` for read/write termination under ``k`` installs."""
        return min_delay_for_termination(self.D, self.consensus_delay, k)
