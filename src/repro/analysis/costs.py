"""Storage and communication cost formulas (Theorem 3) and measurement helpers.

All formulas are normalised by the object value size, exactly as in the
paper ("we compute the costs under the assumption that v has size 1 unit"):

==========================  =======================  =====================
quantity                    TREAS ([n, k], δ)        ABD (n replicas)
==========================  =======================  =====================
total storage               (δ + 1) · n / k          n
write communication         n / k                    n
read communication          (δ + 2) · n / k          2 · n
==========================  =======================  =====================

The ABD figures follow from Algorithm 12: a write pushes the full value to
all ``n`` servers; a read pulls up to ``n`` copies in the query phase and
pushes the value back to ``n`` servers in the propagation phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.stats import TrafficRecord


# --------------------------------------------------------------------- TREAS
def treas_storage_cost(n: int, k: int, delta: int) -> float:
    """Theorem 3(i): total storage ``(δ+1)·n/k`` in units of the value size."""
    return (delta + 1) * n / k


def treas_write_cost(n: int, k: int) -> float:
    """Theorem 3(ii): per-write communication ``n/k``."""
    return n / k


def treas_read_cost(n: int, k: int, delta: int) -> float:
    """Theorem 3(iii): per-read communication ``(δ+2)·n/k``."""
    return (delta + 2) * n / k


# ----------------------------------------------------------------------- ABD
def abd_storage_cost(n: int) -> float:
    """ABD total storage: one full copy per server."""
    return float(n)


def abd_write_cost(n: int) -> float:
    """ABD per-write communication: the value travels to all ``n`` servers."""
    return float(n)


def abd_read_cost(n: int) -> float:
    """ABD per-read communication: ``n`` copies in, ``n`` copies back out."""
    return 2.0 * n


# ----------------------------------------------------------------- measuring
@dataclass
class MeasuredCost:
    """A measured per-operation communication cost."""

    record: TrafficRecord
    value_size: int

    @property
    def normalised(self) -> float:
        """Data bytes divided by the value size (the paper's unit)."""
        if self.value_size <= 0:
            return 0.0
        return self.record.data_bytes / self.value_size

    @property
    def data_bytes(self) -> int:
        """Raw object-data bytes on the wire for the operation."""
        return self.record.data_bytes

    @property
    def metadata_bytes(self) -> int:
        """Raw metadata bytes on the wire for the operation."""
        return self.record.metadata_bytes


def measure_operation_traffic(deployment, client_pid, run_operation: Callable[[], None],
                              value_size: int, name: str = "operation") -> MeasuredCost:
    """Measure the traffic attributable to one synchronously-run operation.

    Opens a traffic scope charging all messages to/from ``client_pid``, runs
    ``run_operation`` (which must drive the deployment's simulator to
    completion of exactly one operation), closes the scope and returns the
    measured cost.
    """
    stats = deployment.network.stats
    scope = stats.open_scope(name, client_pid)
    try:
        run_operation()
    finally:
        record = stats.close_scope(scope)
    return MeasuredCost(record=record, value_size=value_size)
