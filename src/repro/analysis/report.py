"""Minimal plain-text table rendering for the benchmark harness.

The benchmark modules print the rows/series the paper's evaluation would
report; keeping the renderer here (instead of depending on an external
tabulation package) keeps the repository self-contained and offline-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


class Table:
    """A fixed-column plain-text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    @staticmethod
    def _format(cell: Cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def add_row(self, *cells: Cell) -> None:
        """Append a row; the number of cells must match the number of columns."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * widths[i] for i in range(len(self.columns))))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmarks call this to emit their series)."""
        print()
        print(self.render())
