"""Single-decree Paxos.

One Paxos *instance* decides the successor of one configuration.  The
reconfiguration client is the proposer; the servers of the configuration are
the acceptors; majorities of those servers form the Paxos quorums.

The implementation follows classic Synod Paxos:

* **Phase 1** (prepare/promise): the proposer picks a ballot ``(round, pid)``
  greater than any it used before and asks a majority of acceptors to
  promise not to accept lower ballots; promises carry the highest-ballot
  value each acceptor has already accepted.
* **Phase 2** (accept/accepted): the proposer proposes the value carried by
  the highest-ballot promise (or its own value if none) and waits for a
  majority of accepts.
* **Decision**: once a majority accepted a ballot, its value is decided.
  The proposer then broadcasts a ``DECIDED`` message so that acceptors can
  short-circuit later proposers (this also gives all competing reconfigurers
  the same answer in one round trip, the behaviour ARES relies on when
  multiple clients propose successors concurrently).

Contention between concurrent proposers is resolved by ballot escalation
with randomised (seeded) back-off, which terminates with probability 1 in
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.common.errors import ConsensusError
from repro.common.ids import ProcessId
from repro.consensus.interface import ConsensusDecision
from repro.net.message import Message, reply, request
from repro.sim.futures import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.configuration import Configuration
    from repro.sim.process import Process


# Message kinds (all consensus traffic is metadata for cost purposes).
PREPARE = "PAXOS-PREPARE"
PROMISE = "PAXOS-PROMISE"
ACCEPT = "PAXOS-ACCEPT"
ACCEPTED = "PAXOS-ACCEPTED"
NACK = "PAXOS-NACK"
DECIDED = "PAXOS-DECIDED"


@dataclass(frozen=True, order=True)
class Ballot:
    """A Paxos ballot number ``(round, proposer)``, totally ordered."""

    round: int
    proposer_key: tuple

    @classmethod
    def initial(cls) -> "Ballot":
        """A ballot smaller than any ballot a proposer can use."""
        return cls(round=0, proposer_key=("", -1))

    @classmethod
    def make(cls, round_number: int, proposer: ProcessId) -> "Ballot":
        """Ballot for ``round_number`` owned by ``proposer``."""
        return cls(round=round_number, proposer_key=proposer.sort_key)


@dataclass
class PaxosAcceptorState:
    """Per-instance acceptor state kept at each server."""

    promised: Ballot = field(default_factory=Ballot.initial)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None
    decided_value: Any = None

    def handle(self, message: Message) -> Message:
        """Process a proposer message and return the reply to send back."""
        kind = message.kind
        if kind == PREPARE:
            return self._on_prepare(message)
        if kind == ACCEPT:
            return self._on_accept(message)
        if kind == DECIDED:
            self.decided_value = message["value"]
            return reply(message, kind="PAXOS-DECIDED-ACK")
        raise ConsensusError(f"acceptor cannot handle message kind {kind}")

    def _on_prepare(self, message: Message) -> Message:
        ballot: Ballot = message["ballot"]
        if self.decided_value is not None:
            return reply(message, kind=PROMISE, decided=True, value=self.decided_value,
                         accepted_ballot=None)
        if ballot > self.promised:
            self.promised = ballot
            return reply(
                message,
                kind=PROMISE,
                decided=False,
                accepted_ballot=self.accepted_ballot,
                accepted_value=self.accepted_value,
            )
        return reply(message, kind=NACK, promised=self.promised)

    def _on_accept(self, message: Message) -> Message:
        ballot: Ballot = message["ballot"]
        if self.decided_value is not None:
            return reply(message, kind=ACCEPTED, decided=True, value=self.decided_value)
        if ballot >= self.promised:
            self.promised = ballot
            self.accepted_ballot = ballot
            self.accepted_value = message["value"]
            return reply(message, kind=ACCEPTED, decided=False)
        return reply(message, kind=NACK, promised=self.promised)


class PaxosProposer:
    """Client-side proposer for one consensus instance.

    Parameters
    ----------
    process:
        The client process driving the proposal (a reconfiguration client).
    configuration:
        The configuration whose servers act as acceptors; its
        ``consensus_quorums`` (majorities) are the Paxos quorums.
    instance:
        Identifier of the instance, conventionally the configuration id whose
        successor is being decided.
    extra_decision_delay:
        Optional artificial delay (in time units) added before the decision
        is returned; benchmarks use it to model an external consensus service
        with a configurable ``T(CN)``.
    """

    def __init__(
        self,
        process: "Process",
        configuration: "Configuration",
        instance: Any,
        extra_decision_delay: float = 0.0,
    ) -> None:
        self.process = process
        self.configuration = configuration
        self.instance = instance
        self.extra_decision_delay = extra_decision_delay
        self.max_rounds = 64

    # ----------------------------------------------------------- public API
    def propose(self, value: Any):
        """Coroutine: run the instance to a decision for ``value``.

        Returns a :class:`~repro.consensus.interface.ConsensusDecision`.  If
        another proposer's value wins, that value is returned (Validity and
        Agreement still hold -- the caller adopts the decided value exactly
        as ARES's ``add-config`` does).
        """
        if value is None:
            raise ConsensusError("cannot propose None")
        servers = list(self.configuration.servers)
        majority = self.configuration.consensus_quorums.quorum_size
        round_number = 1

        while round_number <= self.max_rounds:
            ballot = Ballot.make(round_number, self.process.pid)

            # ---------------------------------------------------- Phase 1
            promises = yield self.process.broadcast_and_gather(
                servers,
                lambda rid: request(
                    PREPARE, rid, config_id=self.configuration.cfg_id,
                    metadata_fields=2, ballot=ballot, instance=self.instance,
                ),
                threshold=majority,
                label=f"paxos-prepare[{self.instance}]",
            )
            decided = self._find_decided(promises)
            if decided is not None:
                result = yield from self._finish(decided, round_number, servers)
                return result
            if any(msg.kind == NACK for _, msg in promises):
                round_number += 1
                yield Timer(self.process.sim, self._backoff(round_number), label="paxos-backoff")
                continue

            proposal = self._choose_value(promises, value)

            # ---------------------------------------------------- Phase 2
            accepts = yield self.process.broadcast_and_gather(
                servers,
                lambda rid: request(
                    ACCEPT, rid, config_id=self.configuration.cfg_id,
                    metadata_fields=3, ballot=ballot, value=proposal,
                    instance=self.instance,
                ),
                threshold=majority,
                label=f"paxos-accept[{self.instance}]",
            )
            decided = self._find_decided(accepts)
            if decided is not None:
                result = yield from self._finish(decided, round_number, servers)
                return result
            if all(msg.kind == ACCEPTED for _, msg in accepts):
                result = yield from self._finish(proposal, round_number, servers)
                return result

            round_number += 1
            yield Timer(self.process.sim, self._backoff(round_number), label="paxos-backoff")

        raise ConsensusError(
            f"consensus instance {self.instance} did not decide within "
            f"{self.max_rounds} ballots"
        )

    # -------------------------------------------------------------- helpers
    def _backoff(self, round_number: int) -> float:
        """Randomised back-off before retrying with a higher ballot."""
        base = self.process.sim.uniform(0.1, 1.0)
        return base * round_number

    @staticmethod
    def _find_decided(replies) -> Any:
        for _, msg in replies:
            if msg.get("decided"):
                return msg["value"]
        return None

    @staticmethod
    def _choose_value(promises, own_value: Any) -> Any:
        """Pick the value of the highest accepted ballot among the promises."""
        best_ballot: Optional[Ballot] = None
        best_value: Any = None
        for _, msg in promises:
            if msg.kind != PROMISE:
                continue
            accepted_ballot = msg.get("accepted_ballot")
            if accepted_ballot is None:
                continue
            if best_ballot is None or accepted_ballot > best_ballot:
                best_ballot = accepted_ballot
                best_value = msg.get("accepted_value")
        return best_value if best_value is not None else own_value

    def _finish(self, decided_value: Any, round_number: int, servers):
        """Broadcast the decision, apply the external-consensus delay, and return."""
        if self.extra_decision_delay > 0:
            yield Timer(self.process.sim, self.extra_decision_delay, label="consensus-delay")
        # Decision broadcast is fire-and-forget: acceptors learn the decision
        # so that later proposers short-circuit in one round trip.
        broadcast_id = self.process.new_request_id()
        for server in servers:
            self.process.send(
                server,
                request(DECIDED, broadcast_id, config_id=self.configuration.cfg_id,
                        metadata_fields=2, value=decided_value, instance=self.instance),
            )
        return ConsensusDecision(value=decided_value, instance=self.instance,
                                 ballot_round=round_number)
