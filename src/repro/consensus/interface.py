"""Consensus-facing types shared by proposers and the ARES reconfigurer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ConsensusDecision:
    """The outcome of a consensus instance.

    Attributes
    ----------
    value:
        The decided value (for ARES, a proposed :class:`~repro.config.configuration.Configuration`).
    instance:
        The identifier of the instance (the configuration id whose successor
        was being decided).
    ballot_round:
        The Paxos ballot round at which the decision was reached; recorded
        for diagnostics and the reconfiguration-latency benchmarks.
    """

    value: Any
    instance: Any
    ballot_round: int = 0
