"""Consensus substrate.

Each ARES configuration ``c`` is associated with a consensus instance
``c.Con`` run on (a majority of) the servers of ``c`` and used to agree on
the configuration that follows ``c`` in the global sequence.  The paper only
requires the instance to satisfy Agreement, Validity and Termination
(Definition 41); here it is provided by single-decree Paxos with the
reconfiguration client acting as proposer and the configuration's servers
acting as acceptors.
"""

from repro.consensus.interface import ConsensusDecision
from repro.consensus.paxos import PaxosAcceptorState, PaxosProposer, Ballot

__all__ = [
    "ConsensusDecision",
    "PaxosAcceptorState",
    "PaxosProposer",
    "Ballot",
]
