"""The store server: one process hosting many per-object DAP states.

A :class:`StoreServer` is an :class:`~repro.core.server.AresServer` -- the
dispatch machinery (read-config / write-config / Paxos / DAP) is identical
-- whose DAP-state dictionary is populated with **per-object** states: every
object of every shard this server belongs to gets its own lazily created
state, keyed by the object's configuration id (``st<shard>/<key>``).  One
simulated process therefore serves arbitrarily many registers, which is what
lets a deployment multiplex a whole keyspace over a fixed server pool.

The subclass only adds the key-indexed accounting (which objects are hosted,
bytes stored per object) used by hot-shard diagnostics and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.ids import ProcessId
from repro.core.directory import ConfigurationDirectory
from repro.core.server import AresServer
from repro.net.network import Network
from repro.store.shardmap import ShardMap


class StoreServer(AresServer):
    """A server process hosting the DAP states of many named objects.

    Parameters
    ----------
    pid, network, directory:
        As for :class:`~repro.core.server.AresServer`; the directory is the
        deployment-wide one the shard map registers per-object
        configurations in.
    shard_map:
        The deployment's shard map, used to translate configuration ids
        back to object keys for the accounting helpers.
    """

    def __init__(self, pid: ProcessId, network: Network,
                 directory: ConfigurationDirectory,
                 shard_map: Optional[ShardMap] = None) -> None:
        super().__init__(pid, network, directory)
        self.shard_map = shard_map

    # ------------------------------------------------------------ accounting
    def hosted_keys(self) -> List[str]:
        """Object keys this server currently holds DAP state for."""
        if self.shard_map is None:
            return []
        keys = []
        for cfg_id in self.dap_states:
            key = self.shard_map.key_of(cfg_id)
            if key is not None:
                keys.append(key)
        return keys

    def storage_by_key(self) -> Dict[str, int]:
        """Object-data bytes stored at this server, per object key."""
        totals: Dict[str, int] = {}
        if self.shard_map is None:
            return totals
        for cfg_id, state in self.dap_states.items():
            key = self.shard_map.key_of(cfg_id)
            if key is not None:
                totals[key] = totals.get(key, 0) + state.storage_data_bytes()
        return totals
