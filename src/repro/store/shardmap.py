"""Deterministic key -> shard assignment and per-object configurations.

The sharded store partitions a flat string keyspace over a fixed set of
*shards*.  Each shard owns a disjoint slice of the server pool, runs one DAP
kind (ABD, LDR or TREAS -- shards of different kinds coexist in one
deployment), and hosts every object whose key hashes onto it.  Assignment is
``crc32(key) mod num_shards``: stable across processes, Python versions and
runs, which is what makes store scenarios seed-deterministic and lets sweep
workers agree with the parent process on placement.

Within a shard every object is an independent ARES register: the shard map
lazily builds one :class:`~repro.config.configuration.Configuration` per key
(identifier ``st<shard>/<key>``) over the shard's servers, registers it in
the shared directory, and caches it so all clients and servers of the
deployment share a single description per object -- exactly the per-object
configuration-sequence modularity the paper's ARES design argues for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import ConfigId, ProcessId
from repro.config.configuration import Configuration, DapKind
from repro.core.directory import ConfigurationDirectory

#: DAP kinds a shard may run (the string forms of :class:`DapKind`).
SHARD_DAP_KINDS: Tuple[str, ...] = tuple(kind.value for kind in DapKind)


def shard_index_for(key: str, num_shards: int) -> int:
    """The deterministic shard index of ``key`` (``crc32 mod num_shards``).

    ``zlib.crc32`` is stable across interpreter runs and platforms (unlike
    ``hash(str)``, which is salted per process), so placement is part of a
    scenario's reproducible identity.
    """
    if num_shards <= 0:
        raise ConfigurationError("a shard map needs at least one shard")
    return zlib.crc32(key.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ShardSpec:
    """Parameters of one shard.

    Attributes
    ----------
    dap:
        DAP kind the shard runs (``"abd"``, ``"ldr"`` or ``"treas"``).
    num_servers:
        Size of the shard's (disjoint) server slice.
    k:
        Erasure-code dimension for TREAS shards (default ``⌈2n/3⌉``).
    delta:
        TREAS garbage-collection / concurrency parameter δ.
    """

    dap: str = "abd"
    num_servers: int = 5
    k: Optional[int] = None
    delta: int = 4

    def __post_init__(self) -> None:
        if self.dap.lower() not in SHARD_DAP_KINDS:
            raise ConfigurationError(
                f"unknown shard DAP kind {self.dap!r}; supported: "
                f"{', '.join(SHARD_DAP_KINDS)}")
        if self.num_servers < 1:
            raise ConfigurationError("a shard needs at least one server")
        if self.dap.lower() == "ldr" and self.num_servers < 2:
            # The server slice is split half directories / half replicas; a
            # 1-server LDR shard would have zero directories and fail deep
            # in the DAP layer on the first operation.
            raise ConfigurationError(
                "an LDR shard needs at least 2 servers "
                "(half directories, half replicas)")


class Shard:
    """One shard: a DAP kind plus a server slice hosting many objects.

    Per-object configurations are created lazily on first access to a key
    and registered in the deployment's shared directory, so servers resolve
    them from incoming message config ids without any extra coordination.
    """

    def __init__(self, index: int, spec: ShardSpec, servers: Sequence[ProcessId],
                 directory: ConfigurationDirectory) -> None:
        if len(servers) != spec.num_servers:
            raise ConfigurationError(
                f"shard {index} expects {spec.num_servers} servers, got {len(servers)}")
        self.index = index
        self.spec = spec
        self.servers: Tuple[ProcessId, ...] = tuple(servers)
        self._directory = directory
        self._configurations: Dict[str, Configuration] = {}
        self._keys_by_cfg: Dict[ConfigId, str] = {}

    @property
    def dap(self) -> str:
        """The shard's DAP kind string."""
        return self.spec.dap.lower()

    def configuration_for(self, key: str) -> Configuration:
        """The (lazily created, shared) configuration of object ``key``."""
        configuration = self._configurations.get(key)
        if configuration is not None:
            return configuration
        cfg_id = ConfigId(name=f"st{self.index}/{key}")
        dap = self.dap
        if dap == "treas":
            configuration = Configuration.treas(cfg_id, self.servers,
                                                k=self.spec.k, delta=self.spec.delta)
        elif dap == "abd":
            configuration = Configuration.abd(cfg_id, self.servers)
        else:  # ldr: first half directories, second half replicas
            half = len(self.servers) // 2
            configuration = Configuration.ldr(cfg_id, self.servers[:half],
                                              self.servers[half:])
        self._directory.register(configuration)
        self._configurations[key] = configuration
        self._keys_by_cfg[cfg_id] = key
        return configuration

    def key_of(self, cfg_id: ConfigId) -> Optional[str]:
        """The object key behind one of this shard's configuration ids."""
        return self._keys_by_cfg.get(cfg_id)

    def keys(self) -> List[str]:
        """Keys with a materialised configuration, in creation order."""
        return list(self._configurations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Shard {self.index} dap={self.dap} "
                f"servers={len(self.servers)} objects={len(self._configurations)}>")


class ShardMap:
    """The store's placement function: key -> shard -> configuration.

    One instance is shared by every client and server of a
    :class:`~repro.store.deployment.StoreDeployment`; it owns the per-shard
    :class:`Shard` objects and answers both directions of the mapping
    (key to servers/configuration, configuration id back to key).
    """

    def __init__(self, shards: Sequence[Shard]) -> None:
        if not shards:
            raise ConfigurationError("a shard map needs at least one shard")
        self.shards: Tuple[Shard, ...] = tuple(shards)

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_index(self, key: str) -> int:
        """The shard index ``key`` hashes onto."""
        return shard_index_for(key, len(self.shards))

    def shard_for(self, key: str) -> Shard:
        """The :class:`Shard` hosting ``key``."""
        return self.shards[self.shard_index(key)]

    def configuration_for(self, key: str) -> Configuration:
        """The configuration of object ``key`` (created on first use)."""
        return self.shard_for(key).configuration_for(key)

    def servers_for_key(self, key: str) -> List[ProcessId]:
        """The server processes storing object ``key``."""
        return list(self.shard_for(key).servers)

    def key_of(self, cfg_id: ConfigId) -> Optional[str]:
        """Resolve a store configuration id back to its object key."""
        for shard in self.shards:
            key = shard.key_of(cfg_id)
            if key is not None:
                return key
        return None

    def describe(self) -> str:
        """One line per shard: index, DAP, server range, materialised objects."""
        lines = []
        for shard in self.shards:
            names = ", ".join(pid.name for pid in shard.servers)
            lines.append(f"shard {shard.index} [{shard.dap}] servers=({names}) "
                         f"objects={len(shard.keys())}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ",".join(shard.dap for shard in self.shards)
        return f"<ShardMap {self.num_shards} shards [{kinds}]>"
