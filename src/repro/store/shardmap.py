"""Deterministic key -> shard assignment and per-object configurations.

The sharded store partitions a flat string keyspace over a fixed set of
*shards*.  Each shard owns a disjoint slice of the server pool, runs one DAP
kind (ABD, LDR or TREAS -- shards of different kinds coexist in one
deployment), and hosts every object whose key hashes onto it.  Assignment is
``crc32(key) mod num_shards``: stable across processes, Python versions and
runs, which is what makes store scenarios seed-deterministic and lets sweep
workers agree with the parent process on placement.

Within a shard every object is an independent ARES register: the shard map
lazily builds one :class:`~repro.config.configuration.Configuration` per key
(identifier ``st<shard>/<key>``) over the shard's servers, registers it in
the shared directory, and caches it so all clients and servers of the
deployment share a single description per object -- exactly the per-object
configuration-sequence modularity the paper's ARES design argues for.

Config epochs
-------------
The map is **versioned**: every mutation -- a shard migrating onto new
servers or a new DAP kind (:meth:`ShardMap.install_shard`), or a key range
rebalanced onto another shard (:meth:`ShardMap.move_keys`) -- advances the
map's *epoch*.  Lookups take an optional ``epoch`` argument: resolving
against a stale epoch raises :class:`StaleEpochError` instead of silently
answering from whatever the map currently holds, and
:meth:`ShardMap.forward` is the explicit convergence path -- it walks the
placement history from the stale epoch to the present and returns the
current :class:`Placement`, so a client that cached an old epoch re-resolves
in one step.  Keys whose register was migrated keep a per-key *entry point*:
the finalized configuration installed by the latest migration, which is
where fresh clients join the key's configuration sequence (joining the
original configuration would also converge via the ARES traversal, just more
slowly -- and not at all once the old servers are retired).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import ConfigId, ProcessId
from repro.config.configuration import Configuration, DapKind
from repro.core.directory import ConfigurationDirectory

#: DAP kinds a shard may run (the string forms of :class:`DapKind`).
SHARD_DAP_KINDS: Tuple[str, ...] = tuple(kind.value for kind in DapKind)


class StaleEpochError(ConfigurationError):
    """A lookup named a shard-map epoch older than the current one.

    Carries enough context for the caller to converge: the stale epoch it
    used and the epoch the map is at now.  Clients handle this by calling
    :meth:`ShardMap.forward`, which answers from the current placement and
    tells them the epoch to cache.
    """

    def __init__(self, key: str, epoch: int, current: int) -> None:
        super().__init__(
            f"lookup of key {key!r} used stale shard-map epoch {epoch} "
            f"(current epoch is {current}); re-resolve with ShardMap.forward")
        self.key = key
        self.epoch = epoch
        self.current = current


@dataclass(frozen=True)
class Placement:
    """Where a key lives: its shard index at a given map epoch.

    ``path`` records the chain of shard indices the key occupied from the
    requesting client's stale epoch up to ``epoch`` (inclusive at both
    ends), so forwarding is observable in tests and diagnostics.
    """

    key: str
    shard_index: int
    epoch: int
    path: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ShardSpec:
    """Parameters of one shard.

    Attributes
    ----------
    dap:
        DAP kind the shard runs (``"abd"``, ``"ldr"`` or ``"treas"``).
    num_servers:
        Size of the shard's (disjoint) server slice.
    k:
        Erasure-code dimension for TREAS shards (default ``⌈2n/3⌉``).
    delta:
        TREAS garbage-collection / concurrency parameter δ.
    """

    dap: str = "abd"
    num_servers: int = 5
    k: Optional[int] = None
    delta: int = 4

    def __post_init__(self) -> None:
        if self.dap.lower() not in SHARD_DAP_KINDS:
            raise ConfigurationError(
                f"unknown shard DAP kind {self.dap!r}; supported: "
                f"{', '.join(SHARD_DAP_KINDS)}")
        if self.num_servers < 1:
            raise ConfigurationError("a shard needs at least one server")
        if self.dap.lower() == "ldr" and self.num_servers < 2:
            # The server slice is split half directories / half replicas; a
            # 1-server LDR shard would have zero directories and fail deep
            # in the DAP layer on the first operation.
            raise ConfigurationError(
                "an LDR shard needs at least 2 servers "
                "(half directories, half replicas)")


class Shard:
    """One shard: a DAP kind plus a server slice hosting many objects.

    Per-object configurations are created lazily on first access to a key
    and registered in the deployment's shared directory, so servers resolve
    them from incoming message config ids without any extra coordination.
    A shard's spec and server slice can be *replaced* by a live migration
    (:meth:`install`); already-materialised objects keep their existing
    configurations (the migration reconfigures each of them through ARES),
    while keys materialised afterwards start directly on the new slice.
    """

    def __init__(self, index: int, spec: ShardSpec, servers: Sequence[ProcessId],
                 directory: ConfigurationDirectory) -> None:
        if len(servers) != spec.num_servers:
            raise ConfigurationError(
                f"shard {index} expects {spec.num_servers} servers, got {len(servers)}")
        self.index = index
        self.spec = spec
        self.servers: Tuple[ProcessId, ...] = tuple(servers)
        #: How many times this shard's spec/servers were replaced by a
        #: migration; part of fresh config ids so they never collide with
        #: pre-migration ones.
        self.generation = 0
        self._directory = directory
        self._configurations: Dict[str, Configuration] = {}
        self._keys_by_cfg: Dict[ConfigId, str] = {}

    @property
    def dap(self) -> str:
        """The shard's DAP kind string."""
        return self.spec.dap.lower()

    def install(self, spec: ShardSpec, servers: Sequence[ProcessId]) -> None:
        """Replace the shard's spec and server slice (a completed migration)."""
        if len(servers) != spec.num_servers:
            raise ConfigurationError(
                f"shard {self.index} migration expects {spec.num_servers} "
                f"servers, got {len(servers)}")
        self.spec = spec
        self.servers = tuple(servers)
        self.generation += 1

    def build_configuration(self, cfg_id: ConfigId,
                            servers: Optional[Sequence[ProcessId]] = None) -> Configuration:
        """A configuration with this shard's DAP parameters over ``servers``.

        Defaults to the shard's current server slice; migrations pass the
        target slice explicitly.  The configuration is *not* registered or
        cached -- callers decide whether it becomes a lazy per-key base
        (:meth:`configuration_for`) or a migration proposal.
        """
        servers = tuple(self.servers if servers is None else servers)
        dap = self.dap
        if dap == "treas":
            return Configuration.treas(cfg_id, servers,
                                       k=self.spec.k, delta=self.spec.delta)
        if dap == "abd":
            return Configuration.abd(cfg_id, servers)
        # ldr: first half directories, second half replicas
        half = len(servers) // 2
        return Configuration.ldr(cfg_id, servers[:half], servers[half:])

    def configuration_for(self, key: str) -> Configuration:
        """The (lazily created, shared) configuration of object ``key``."""
        configuration = self._configurations.get(key)
        if configuration is not None:
            return configuration
        suffix = "" if self.generation == 0 else f"@g{self.generation}"
        cfg_id = ConfigId(name=f"st{self.index}/{key}{suffix}")
        configuration = self.build_configuration(cfg_id)
        self._directory.register(configuration)
        self._configurations[key] = configuration
        self._keys_by_cfg[cfg_id] = key
        return configuration

    def existing_configuration(self, key: str) -> Optional[Configuration]:
        """The already-materialised configuration of ``key``, if any."""
        return self._configurations.get(key)

    def key_of(self, cfg_id: ConfigId) -> Optional[str]:
        """The object key behind one of this shard's configuration ids."""
        return self._keys_by_cfg.get(cfg_id)

    def keys(self) -> List[str]:
        """Keys with a materialised configuration, in creation order."""
        return list(self._configurations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Shard {self.index} dap={self.dap} "
                f"servers={len(self.servers)} objects={len(self._configurations)}>")


class ShardMap:
    """The store's placement function: key -> shard -> configuration.

    One instance is shared by every client and server of a
    :class:`~repro.store.deployment.StoreDeployment`; it owns the per-shard
    :class:`Shard` objects and answers both directions of the mapping
    (key to servers/configuration, configuration id back to key).

    The map is versioned by :attr:`epoch` (see the module docstring):
    mutations go through :meth:`install_shard` / :meth:`move_keys`, lookups
    against a stale epoch raise :class:`StaleEpochError`, and
    :meth:`forward` is the explicit convergence path.
    """

    def __init__(self, shards: Sequence[Shard]) -> None:
        if not shards:
            raise ConfigurationError("a shard map needs at least one shard")
        self.shards: Tuple[Shard, ...] = tuple(shards)
        #: Per-epoch placement overrides: ``_overrides[e]`` maps keys whose
        #: placement differs from the hash assignment at epoch ``e``.
        self._overrides: List[Dict[str, int]] = [{}]
        #: Finalized entry-point configuration per migrated key: where fresh
        #: clients join the key's configuration sequence.
        self._entry_points: Dict[str, Configuration] = {}
        #: Migration-created configuration ids back to their object keys.
        self._migrated_cfg_keys: Dict[ConfigId, str] = {}

    # ------------------------------------------------------------ epoch state
    @property
    def epoch(self) -> int:
        """The current configuration epoch (0 until the first mutation)."""
        return len(self._overrides) - 1

    def _check_epoch(self, key: str, epoch: Optional[int]) -> None:
        if epoch is None:
            return
        current = self.epoch
        if epoch == current:
            return
        if 0 <= epoch < current:
            raise StaleEpochError(key, epoch, current)
        raise ConfigurationError(
            f"lookup of key {key!r} used unknown shard-map epoch {epoch} "
            f"(current epoch is {current})")

    def _shard_index_at(self, key: str, epoch: int) -> int:
        override = self._overrides[epoch].get(key)
        if override is not None:
            return override
        return shard_index_for(key, len(self.shards))

    # ------------------------------------------------------------- mutations
    def install_shard(self, shard_index: int, spec: ShardSpec,
                      servers: Sequence[ProcessId]) -> int:
        """Replace a shard's spec/servers and advance the epoch; returns it.

        Called by the shard reconfigurer *before* it starts the per-key ARES
        reconfigurations, so keys materialised during the migration already
        land on the target slice.
        """
        self.shards[shard_index].install(spec, servers)
        self._overrides.append(dict(self._overrides[-1]))
        return self.epoch

    def move_keys(self, keys: Sequence[str], target_index: int) -> int:
        """Re-place ``keys`` onto shard ``target_index``; returns the new epoch.

        Only the placement changes here; migrating the data of
        already-materialised keys is the reconfigurer's job (the new epoch
        is taken first so fresh keys of the moved range materialise directly
        on the target shard).
        """
        if not 0 <= target_index < len(self.shards):
            raise ConfigurationError(
                f"cannot move keys to shard {target_index}: the map has "
                f"{len(self.shards)} shards")
        if not keys:
            raise ConfigurationError("move_keys needs at least one key")
        overrides = dict(self._overrides[-1])
        for key in keys:
            overrides[key] = target_index
        self._overrides.append(overrides)
        return self.epoch

    def install_entry_point(self, key: str, configuration: Configuration) -> None:
        """Record the finalized configuration a migration installed for ``key``.

        Fresh clients join the key's configuration sequence here instead of
        at the original (possibly retired) configuration; the id is also
        indexed so :meth:`key_of` resolves migration-created configurations.
        """
        self._entry_points[key] = configuration
        self._migrated_cfg_keys[configuration.cfg_id] = key

    # --------------------------------------------------------------- lookups
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_index(self, key: str, epoch: Optional[int] = None) -> int:
        """The shard index ``key`` is placed on.

        ``epoch=None`` answers authoritatively from the current epoch;
        passing a cached epoch asserts freshness and raises
        :class:`StaleEpochError` when the map has moved on.
        """
        self._check_epoch(key, epoch)
        return self._shard_index_at(key, self.epoch)

    def shard_for(self, key: str, epoch: Optional[int] = None) -> Shard:
        """The :class:`Shard` hosting ``key``."""
        return self.shards[self.shard_index(key, epoch)]

    def configuration_for(self, key: str, epoch: Optional[int] = None) -> Configuration:
        """The configuration where clients join object ``key``'s sequence.

        Resolution order: the latest migration's entry point; else the
        key's already-materialised configuration wherever it lives -- a key
        whose *placement* moved keeps its existing register until the
        rebalance finalizes, otherwise a fresh client would join a
        brand-new empty register on the target shard and read the initial
        value; else the current shard's lazily created base configuration.
        Stale-epoch lookups raise :class:`StaleEpochError` (see
        :meth:`forward`).
        """
        self._check_epoch(key, epoch)
        entry = self._entry_points.get(key)
        if entry is not None:
            return entry
        for shard in self.shards:
            existing = shard.existing_configuration(key)
            if existing is not None:
                return existing
        return self.shard_for(key).configuration_for(key)

    def forward(self, key: str, epoch: int) -> Placement:
        """Explicit convergence for a client that cached a stale ``epoch``.

        Walks the placement history from ``epoch`` to the current epoch and
        returns the authoritative :class:`Placement` (with the traversed
        shard chain in ``path``).  Raises for unknown epochs.
        """
        current = self.epoch
        if not 0 <= epoch <= current:
            raise ConfigurationError(
                f"cannot forward key {key!r} from unknown epoch {epoch} "
                f"(current epoch is {current})")
        path = tuple(self._shard_index_at(key, e) for e in range(epoch, current + 1))
        return Placement(key=key, shard_index=path[-1], epoch=current, path=path)

    def servers_for_key(self, key: str, epoch: Optional[int] = None) -> List[ProcessId]:
        """The server processes storing object ``key``.

        The latest migration's entry-point servers when the key was
        migrated, else the hosting shard's current slice.
        """
        self._check_epoch(key, epoch)
        entry = self._entry_points.get(key)
        if entry is not None:
            return list(entry.servers)
        for shard in self.shards:
            existing = shard.existing_configuration(key)
            if existing is not None:
                return list(existing.servers)
        return list(self.shard_for(key).servers)

    def key_of(self, cfg_id: ConfigId) -> Optional[str]:
        """Resolve a store configuration id back to its object key.

        Covers every epoch: ids created lazily by the shards *and* ids
        installed by migrations (an earlier version only consulted the
        shards, so post-migration accounting silently dropped every migrated
        object's bytes).
        """
        key = self._migrated_cfg_keys.get(cfg_id)
        if key is not None:
            return key
        for shard in self.shards:
            key = shard.key_of(cfg_id)
            if key is not None:
                return key
        return None

    def materialised_keys(self) -> List[str]:
        """Every key with protocol state, in first-materialisation order."""
        seen: Dict[str, None] = {}
        for shard in self.shards:
            for key in shard.keys():
                seen.setdefault(key)
        for key in self._entry_points:
            seen.setdefault(key)
        return list(seen)

    def keys_on_shard(self, shard_index: int) -> List[str]:
        """Materialised keys currently placed on shard ``shard_index``."""
        return [key for key in self.materialised_keys()
                if self.shard_index(key) == shard_index]

    def describe(self) -> str:
        """One line per shard: index, DAP, server range, materialised objects."""
        lines = [f"epoch {self.epoch}"] if self.epoch else []
        for shard in self.shards:
            names = ", ".join(pid.name for pid in shard.servers)
            lines.append(f"shard {shard.index} [{shard.dap}] servers=({names}) "
                         f"objects={len(shard.keys())}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ",".join(shard.dap for shard in self.shards)
        return f"<ShardMap {self.num_shards} shards [{kinds}] epoch={self.epoch}>"


def shard_index_for(key: str, num_shards: int) -> int:
    """The deterministic hash shard index of ``key`` (``crc32 mod num_shards``).

    ``zlib.crc32`` is stable across interpreter runs and platforms (unlike
    ``hash(str)``, which is salted per process), so placement is part of a
    scenario's reproducible identity.  Epoch overrides (rebalanced key
    ranges) are layered on top by :class:`ShardMap`.
    """
    if num_shards <= 0:
        raise ConfigurationError("a shard map needs at least one shard")
    return zlib.crc32(key.encode("utf-8")) % num_shards
