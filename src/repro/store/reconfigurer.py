"""Live per-shard reconfiguration and key-range rebalancing.

A :class:`ShardReconfigurer` converts the sharded store from a statically
configured system into the paper's actual adaptive one: it drives the ARES
``read-config`` / ``add-config`` / ``update-config`` / ``finalize-config``
traversal (Algorithm 5, shared with the single-register reconfigurer through
:class:`~repro.core.reconfig.ReconfigOpsMixin`) **per object key**, for whole
shards' worth of keys at a time, while keyed client traffic is in flight.

Two reconfiguration shapes exist:

* :meth:`ShardReconfigurer.migrate_shard` -- move *all* of a shard's objects
  onto a new server slice and/or a different DAP kind (ABD ↔ LDR ↔ TREAS).
  The shard map is switched first (epoch +1), so keys materialised during
  the migration already land on the target slice; every already-materialised
  key is then reconfigured through ARES, with the per-key quorum rounds of
  the whole batch pipelined concurrently via
  :func:`~repro.sim.futures.all_of`.
* :meth:`ShardReconfigurer.move_keys` / :meth:`ShardReconfigurer.split_shard`
  -- rebalance a key range onto other shards: the placement override is
  installed first (epoch +1, fresh keys of the range go straight to the
  target), then each materialised key of the range is reconfigured onto the
  target shard's servers and DAP kind.

Safety never depends on the shard map: clients with in-flight operations
discover the new configurations through the ARES sequence traversal exactly
as in the single-register protocol (Algorithm 7's catch-up loop), and every
migrated key's finalized configuration is installed as the key's *entry
point* so fresh clients join the sequence at its tail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.ids import ConfigId, ProcessId
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigSequence
from repro.core.directory import ConfigurationDirectory
from repro.core.reconfig import ReconfigOpsMixin
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.futures import all_of
from repro.sim.process import Process
from repro.spec.history import History
from repro.spec.properties import DapRecorder
from repro.store.shardmap import ShardMap, ShardSpec


class _KeyReconfigState:
    """Per-key reconfigurer state: the key's ``cseq`` and DAP-client cache."""

    __slots__ = ("cseq", "dap_clients")

    def __init__(self, cseq: ConfigSequence) -> None:
        self.cseq = cseq
        self.dap_clients: Dict[ConfigId, DapClient] = {}


class ShardReconfigurer(Process, ReconfigOpsMixin):
    """A reconfiguration client for a sharded store.

    Parameters
    ----------
    pid, network:
        Standard process identity and network attachment.
    directory:
        The deployment's configuration directory (shared with the servers).
    shard_map:
        The deployment's versioned :class:`~repro.store.shardmap.ShardMap`;
        migrations mutate it (advancing its epoch) and install per-key
        entry points on it.
    history:
        The deployment-wide keyed history; every per-key reconfiguration is
        recorded as a ``RECONFIG`` operation carrying its object key.
    dap_recorder:
        Optional recorder of DAP invocations (consistency-property tests).
    consensus_delay:
        Extra latency per consensus decision (the ``T(CN)`` knob).
    gc:
        Enable per-key configuration retirement: each key's reconfiguration
        runs the gc-config phase, retiring the key's superseded
        configurations so the source slice's storage actually shrinks after
        a migration.  ``False`` keeps executions byte-identical to builds
        without retirement.
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        shard_map: ShardMap,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
        consensus_delay: float = 0.0,
        gc: bool = False,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.shard_map = shard_map
        self.history = history
        self.dap_recorder = dap_recorder
        self.consensus_delay = consensus_delay
        self.gc_enabled = gc
        self._keys: Dict[str, _KeyReconfigState] = {}
        self.completed_reconfigs = 0
        #: Number of shard migrations / key-range rebalances completed.
        self.completed_migrations = 0

    # --------------------------------------------------------------- plumbing
    def _state_for(self, key: str) -> _KeyReconfigState:
        """The per-key reconfiguration state, created on first use."""
        state = self._keys.get(key)
        if state is None:
            configuration = self.shard_map.configuration_for(key)
            state = _KeyReconfigState(ConfigSequence(configuration))
            self._keys[key] = state
        return state

    def _dap_for(self, state: _KeyReconfigState, configuration: Configuration) -> DapClient:
        client = state.dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            state.dap_clients[configuration.cfg_id] = client
        return client

    # ----------------------------------------------------- per-key reconfig
    def reconfig_key(self, key: str, proposed: Configuration):
        """Coroutine: one ARES reconfiguration of object ``key``'s register.

        Runs the shared four-phase Algorithm 5 implementation against the
        key's configuration sequence and installs the finalized
        configuration as the key's entry point in the shard map.  Returns
        the configuration installed at the proposal's index (which may be a
        contending reconfigurer's proposal).
        """
        state = self._state_for(key)
        installed = yield from self._register_reconfig(
            state.cseq, lambda cfg: self._dap_for(state, cfg), proposed, key=key)
        self.shard_map.install_entry_point(key, state.cseq.last_finalized())
        return installed

    def _migrate_keys(self, keys: Sequence[str], target_shard_index: int,
                      epoch: int, servers: Sequence[ProcessId]):
        """Coroutine: reconfigure every key onto the target slice, pipelined.

        Every key's four-phase reconfiguration runs as its own coroutine, so
        the quorum rounds of the whole batch are in flight concurrently --
        a shard migration over ``m`` objects costs roughly one
        reconfiguration's latency, not ``m`` sequential chains.
        """
        shard = self.shard_map.shards[target_shard_index]
        ops = []
        for key in keys:
            cfg_id = ConfigId(name=f"st{target_shard_index}/{key}@e{epoch}")
            proposed = shard.build_configuration(cfg_id, servers)
            ops.append(self.spawn(self.reconfig_key(key, proposed),
                                  label=f"{self.pid}:reconfig:{key}@e{epoch}"))
        if ops:
            yield all_of(self.sim, [op.completion for op in ops],
                         label=f"{self.pid}:migrate@e{epoch}")
        return len(ops)

    # -------------------------------------------------------- shard migration
    def migrate_shard(self, shard_index: int, dap: Optional[str] = None,
                      servers: Optional[Sequence[ProcessId]] = None,
                      k: Optional[int] = None, delta: Optional[int] = None):
        """Coroutine: migrate a live shard to ``servers`` and/or DAP ``dap``.

        With ``servers=None`` the shard keeps its slice (a pure DAP flip);
        with ``dap=None`` it keeps its kind (a pure server move).  The shard
        map is updated *first* (advancing the epoch) so fresh keys land on
        the target, then every materialised key of the shard is reconfigured
        through ARES concurrently with ongoing client traffic.  Returns the
        new epoch.
        """
        shard = self.shard_map.shards[shard_index]
        target_servers = tuple(shard.servers if servers is None else servers)
        spec = ShardSpec(
            dap=(dap or shard.dap).lower(),
            num_servers=len(target_servers),
            k=shard.spec.k if k is None else k,
            delta=shard.spec.delta if delta is None else delta,
        )
        keys = self.shard_map.keys_on_shard(shard_index)
        epoch = self.shard_map.install_shard(shard_index, spec, target_servers)
        yield from self._migrate_keys(keys, shard_index, epoch, target_servers)
        self.completed_migrations += 1
        return epoch

    # ------------------------------------------------------------ rebalancing
    def move_keys(self, keys: Sequence[str], target_shard_index: int):
        """Coroutine: rebalance ``keys`` onto shard ``target_shard_index``.

        The placement override is installed first (epoch +1); every key of
        the range that already has protocol state is then reconfigured onto
        the target shard's current servers and DAP kind.  Keys of the range
        that were never touched simply materialise on the target when first
        used.  Returns the new epoch.
        """
        keys = list(keys)
        materialised = set(self.shard_map.materialised_keys())
        epoch = self.shard_map.move_keys(keys, target_shard_index)
        target = self.shard_map.shards[target_shard_index]
        to_move = [key for key in keys if key in materialised]
        yield from self._migrate_keys(to_move, target_shard_index, epoch,
                                      target.servers)
        self.completed_migrations += 1
        return epoch

    def split_shard(self, source_index: int, left_index: int, right_index: int):
        """Coroutine: split a shard's keys across two target shards.

        The materialised keys currently placed on ``source_index`` are
        partitioned deterministically (alternating over the
        first-materialisation order) and each half is rebalanced with
        :meth:`move_keys`.  Returns the final epoch.
        """
        if left_index == right_index:
            raise ConfigurationError("split_shard needs two distinct target shards")
        keys = self.shard_map.keys_on_shard(source_index)
        if not keys:
            return self.shard_map.epoch
        left = [key for index, key in enumerate(keys) if index % 2 == 0]
        right = [key for index, key in enumerate(keys) if index % 2 == 1]
        epoch = self.shard_map.epoch
        if left:
            epoch = yield from self.move_keys(left, left_index)
        if right:
            epoch = yield from self.move_keys(right, right_index)
        return epoch
