"""Sharded multi-object store: many atomic registers over one simulator.

The single-register layers (:mod:`repro.registers`, :mod:`repro.core`)
emulate *one* ARES object.  This package scales the namespace out: a store
multiplexes many named objects over one simulator and network by hashing
keys onto **shards** -- disjoint server slices that each run their own DAP
kind (ABD, LDR and TREAS shards coexist in one deployment) -- and running
the ARES client algorithm independently per key.

* :mod:`repro.store.shardmap`    -- deterministic ``crc32`` key -> shard
  assignment and lazy per-object configurations (``st<shard>/<key>``).
* :mod:`repro.store.server`      -- :class:`StoreServer`: one process
  hosting many per-object DAP server states.
* :mod:`repro.store.client`      -- :class:`StoreClient`: keyed
  ``read``/``write`` plus ``multi_get``/``multi_put`` batches whose per-key
  quorum rounds are pipelined concurrently through the futures layer.
* :mod:`repro.store.deployment`  -- :class:`StoreDeployment`: the wired
  system (servers, clients, reconfigurers, shard map, shared keyed history).
* :mod:`repro.store.reconfigurer` -- :class:`ShardReconfigurer`: live
  per-shard migrations (new servers and/or DAP kind) and key-range
  rebalances driving the ARES reconfiguration traversal per object key,
  versioned through the shard map's config epochs.

Store histories are keyed: every operation records the object it touched,
and verification runs **per key** (each object is an independent atomic
register) while determinism is witnessed by one merged store-wide signature
-- see :func:`repro.spec.linearizability.check_linearizability_per_key`.

A minimal session::

    from repro.store import ShardSpec, StoreDeployment, StoreSpec
    from repro.common.values import Value

    store = StoreDeployment(StoreSpec(shards=(
        ShardSpec(dap="abd", num_servers=5),
        ShardSpec(dap="treas", num_servers=6, k=4),
    ), seed=7))
    store.put("user:42", Value.from_text("hello", label="v1"))
    print(store.get("user:42").as_text())           # -> hello
    store.multi_put({f"k{i}": store.writers[0].next_value(64) for i in range(8)})
    print(sorted(store.multi_get([f"k{i}" for i in range(8)])))
"""

from repro.store.client import StoreClient
from repro.store.deployment import StoreDeployment, StoreSpec
from repro.store.reconfigurer import ShardReconfigurer
from repro.store.server import StoreServer
from repro.store.shardmap import (
    SHARD_DAP_KINDS,
    Placement,
    Shard,
    ShardMap,
    ShardSpec,
    StaleEpochError,
    shard_index_for,
)

__all__ = [
    "SHARD_DAP_KINDS",
    "Placement",
    "Shard",
    "ShardMap",
    "ShardReconfigurer",
    "ShardSpec",
    "StaleEpochError",
    "StoreClient",
    "StoreDeployment",
    "StoreServer",
    "StoreSpec",
    "shard_index_for",
]
