"""The store client: keyed reads/writes plus pipelined batch operations.

A :class:`StoreClient` runs the ARES read/write algorithm (Algorithm 7) *per
object key*: it keeps an independent configuration sequence and DAP-client
cache for every key it has touched, resolves keys to shards through the
deployment's :class:`~repro.store.shardmap.ShardMap`, and records every
operation in the shared history with its key so the per-key linearizability
checker can verify each object independently.

Batching: :meth:`StoreClient.multi_get` and :meth:`StoreClient.multi_put`
spawn one read/write coroutine per key and await them with
:func:`~repro.sim.futures.all_of`, so the per-key quorum rounds of a batch
are in flight **concurrently** -- a batch over ``b`` keys completes in
roughly one operation's latency instead of ``b`` sequential round-trip
chains.  Each constituent operation still records its own history interval,
so batches are checked exactly like loose operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.common.ids import ConfigId, ProcessId
from repro.common.values import Value
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigSequence
from repro.core.client import RegisterOpsMixin
from repro.core.directory import ConfigurationDirectory
from repro.dap import make_dap_client
from repro.dap.interface import DapClient
from repro.net.network import Network
from repro.sim.futures import all_of
from repro.sim.process import Process
from repro.spec.history import History
from repro.spec.properties import DapRecorder
from repro.store.shardmap import ShardMap, StaleEpochError


class _KeyRegister:
    """Per-key client state: the key's ``cseq`` and its DAP-client cache."""

    __slots__ = ("cseq", "dap_clients")

    def __init__(self, cseq: ConfigSequence) -> None:
        self.cseq = cseq
        self.dap_clients: Dict[ConfigId, DapClient] = {}


class StoreClient(Process, RegisterOpsMixin):
    """A client of the sharded store (reader, writer, or both).

    Parameters
    ----------
    pid, network:
        Standard process identity and network attachment.
    directory:
        The deployment's configuration directory (shared with the servers).
    shard_map:
        Resolves keys to shards and per-object configurations.
    history:
        The deployment-wide history; operations are recorded with their key.
    dap_recorder:
        Optional recorder of DAP invocations (consistency-property tests).
    """

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        directory: ConfigurationDirectory,
        shard_map: ShardMap,
        history: Optional[History] = None,
        dap_recorder: Optional[DapRecorder] = None,
    ) -> None:
        super().__init__(pid, network)
        self.directory = directory
        self.shard_map = shard_map
        self.history = history
        self.dap_recorder = dap_recorder
        self._registers: Dict[str, _KeyRegister] = {}
        self._write_counter = 0
        #: The shard-map epoch this client last resolved a key against.  The
        #: map refuses stale-epoch lookups, so a client that fell behind a
        #: reconfiguration converges through the explicit forwarding path
        #: (and the count below witnesses that it happened).
        self.known_epoch = shard_map.epoch
        #: Number of stale-epoch resolutions this client recovered from.
        self.forwarded_lookups = 0

    # --------------------------------------------------------------- plumbing
    def register_for(self, key: str) -> _KeyRegister:
        """The per-key state (configuration sequence), created on first use.

        Resolution asserts the client's cached shard-map epoch; when a
        migration or rebalance advanced the map in the meantime, the client
        converges via :meth:`~repro.store.shardmap.ShardMap.forward` and
        re-resolves at the current epoch.  Keys this client already operates
        on are *not* re-resolved -- their configuration sequences follow
        reconfigurations through the ARES traversal itself.
        """
        register = self._registers.get(key)
        if register is None:
            try:
                configuration = self.shard_map.configuration_for(
                    key, epoch=self.known_epoch)
            except StaleEpochError:
                placement = self.shard_map.forward(key, self.known_epoch)
                self.known_epoch = placement.epoch
                self.forwarded_lookups += 1
                configuration = self.shard_map.configuration_for(
                    key, epoch=placement.epoch)
            register = _KeyRegister(ConfigSequence(configuration))
            self._registers[key] = register
        return register

    def _dap_for(self, register: _KeyRegister, configuration: Configuration) -> DapClient:
        client = register.dap_clients.get(configuration.cfg_id)
        if client is None:
            client = make_dap_client(self, configuration)
            register.dap_clients[configuration.cfg_id] = client
        return client

    def next_value(self, size: int) -> Value:
        """A fresh uniquely-labelled value for workload generation."""
        self._write_counter += 1
        return Value.of_size(size, label=f"{self.pid.name}:{self._write_counter}")

    def known_keys(self) -> List[str]:
        """Keys this client has operated on, in first-use order."""
        return list(self._registers)

    # ------------------------------------------------------------- operations
    def write(self, key: str, value: Value):
        """Coroutine: ARES write of ``value`` to object ``key``; returns the tag.

        Delegates to the shared Algorithm 7 implementation
        (:class:`~repro.core.client.RegisterOpsMixin`) over this key's
        configuration sequence and DAP-client cache.
        """
        register = self.register_for(key)
        return self._register_write(
            register.cseq, lambda cfg: self._dap_for(register, cfg), value, key=key)

    def read(self, key: str):
        """Coroutine: ARES read of object ``key``; returns the value."""
        register = self.register_for(key)
        return self._register_read(
            register.cseq, lambda cfg: self._dap_for(register, cfg), key=key)

    # ------------------------------------------------------------- batch ops
    def multi_get(self, keys: Iterable[str]):
        """Coroutine: read many keys with their quorum rounds pipelined.

        Spawns one :meth:`read` per distinct key and awaits them together;
        returns ``{key: value}``.
        """
        distinct = list(dict.fromkeys(keys))
        ops = [self.spawn(self.read(key), label=f"{self.pid}:get:{key}")
               for key in distinct]
        results = yield all_of(self.sim, [op.completion for op in ops],
                               label=f"{self.pid}:multi_get")
        return dict(zip(distinct, results))

    def multi_put(self, items: Mapping[str, Value]):
        """Coroutine: write many key/value pairs with pipelined quorum rounds.

        Spawns one :meth:`write` per entry and awaits them together; returns
        ``{key: tag}``.
        """
        pairs = list(items.items())
        ops = [self.spawn(self.write(key, value), label=f"{self.pid}:put:{key}")
               for key, value in pairs]
        results = yield all_of(self.sim, [op.completion for op in ops],
                               label=f"{self.pid}:multi_put")
        return {key: tag for (key, _), tag in zip(pairs, results)}
