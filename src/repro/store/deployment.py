"""Deployment builder for sharded multi-object stores.

:class:`StoreDeployment` wires a complete store onto **one** simulator and
network: a pool of :class:`~repro.store.server.StoreServer` processes carved
into per-shard slices, a :class:`~repro.store.shardmap.ShardMap` assigning
keys to shards (each shard with its own DAP kind, so ABD, LDR and TREAS
shards coexist), writer/reader :class:`~repro.store.client.StoreClient`
processes, and one shared keyed :class:`~repro.spec.history.History`.

The deployment exposes the same driver surface as
:class:`~repro.core.deployment.AresDeployment` (``sim``/``network``/
``history``/``writers``/``readers``), so the closed-loop workload driver,
the chaos engine and the scenario registry treat stores exactly like
single-register systems -- the ``keyed`` marker switches the driver into
keyspace mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import (
    ProcessId,
    reader_id,
    reconfigurer_id,
    server_id,
    writer_id,
)
from repro.common.values import Value
from repro.core.directory import ConfigurationDirectory
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.futures import Coroutine
from repro.sim.process import RetryPolicy
from repro.spec.history import History
from repro.spec.properties import DapRecorder
from repro.store.client import StoreClient
from repro.store.reconfigurer import ShardReconfigurer
from repro.store.server import StoreServer
from repro.store.shardmap import Shard, ShardMap, ShardSpec


@dataclass
class StoreSpec:
    """Parameters of a sharded store deployment.

    Attributes
    ----------
    shards:
        One :class:`~repro.store.shardmap.ShardSpec` per shard; each shard
        gets its own disjoint slice of the server pool and may run a
        different DAP kind.
    num_writers, num_readers:
        Client population (every client can address every key).
    num_reconfigurers:
        :class:`~repro.store.reconfigurer.ShardReconfigurer` population
        (shard migrations and key-range rebalances).
    latency:
        Network latency model (default ``UniformLatency(1, 2)``).
    seed:
        Simulator seed.
    record_dap:
        Install a :class:`~repro.spec.properties.DapRecorder` on all clients.
    retry:
        A :class:`~repro.sim.process.RetryPolicy` installed on every writer
        and reader (never on reconfigurers); ``None`` keeps the gather path
        byte-identical to builds without retry.
    gc:
        Enable per-key configuration retirement on the reconfigurers (see
        :class:`~repro.store.reconfigurer.ShardReconfigurer`); ``False``
        keeps executions byte-identical to builds without retirement.
    """

    shards: Tuple[ShardSpec, ...] = (ShardSpec(), ShardSpec())
    num_writers: int = 2
    num_readers: int = 2
    num_reconfigurers: int = 1
    latency: Optional[LatencyModel] = None
    seed: int = 0
    record_dap: bool = False
    retry: Optional[RetryPolicy] = None
    gc: bool = False


class StoreDeployment:
    """A complete, runnable sharded key-value store."""

    #: Marks keyed deployments for the closed-loop workload driver.
    keyed = True

    def __init__(self, spec: Optional[StoreSpec] = None, **overrides) -> None:
        if spec is None:
            spec = StoreSpec(**overrides)
        elif overrides:
            raise ConfigurationError(
                "pass either a StoreSpec or keyword overrides, not both")
        self.spec = spec
        self.sim = Simulator(seed=spec.seed)
        self.network = Network(self.sim, latency=spec.latency or UniformLatency(1.0, 2.0))
        self.directory = ConfigurationDirectory()
        self.history = History()
        self.dap_recorder = DapRecorder(self.sim) if spec.record_dap else None

        # Carve the global server pool into per-shard slices (s0.. in shard
        # order), then build the shard map the servers also consult.
        shards: List[Shard] = []
        shard_servers: List[List[ProcessId]] = []
        next_index = 0
        for shard_index, shard_spec in enumerate(spec.shards):
            ids = [server_id(next_index + i) for i in range(shard_spec.num_servers)]
            next_index += shard_spec.num_servers
            shard_servers.append(ids)
            shards.append(Shard(shard_index, shard_spec, ids, self.directory))
        self.shard_map = ShardMap(shards)

        self.servers: Dict[ProcessId, StoreServer] = {}
        for ids in shard_servers:
            for pid in ids:
                self.servers[pid] = StoreServer(pid, self.network, self.directory,
                                                shard_map=self.shard_map)

        self.writers: List[StoreClient] = [
            StoreClient(writer_id(i), self.network, self.directory, self.shard_map,
                        history=self.history, dap_recorder=self.dap_recorder)
            for i in range(spec.num_writers)
        ]
        self.readers: List[StoreClient] = [
            StoreClient(reader_id(i), self.network, self.directory, self.shard_map,
                        history=self.history, dap_recorder=self.dap_recorder)
            for i in range(spec.num_readers)
        ]
        if spec.retry is not None:
            for client in [*self.writers, *self.readers]:
                client.enable_retries(spec.retry, seed=spec.seed)
        self.reconfigurers: List[ShardReconfigurer] = [
            ShardReconfigurer(reconfigurer_id(i), self.network, self.directory,
                              self.shard_map, history=self.history,
                              dap_recorder=self.dap_recorder, gc=spec.gc)
            for i in range(spec.num_reconfigurers)
        ]
        self._next_server_index = next_index

    # --------------------------------------------------------------- topology
    def add_servers(self, count: int) -> List[ProcessId]:
        """Add ``count`` fresh store servers to the pool and return their ids.

        Fresh servers start with no shard membership; a shard migration
        (:meth:`migrate_shard`) recruits them as a target slice.
        """
        added = []
        for _ in range(count):
            pid = server_id(self._next_server_index)
            self._next_server_index += 1
            self.servers[pid] = StoreServer(pid, self.network, self.directory,
                                            shard_map=self.shard_map)
            added.append(pid)
        return added

    # ------------------------------------------------------------ operations
    def put(self, key: str, value: Value, writer_index: int = 0):
        """Run one store write to completion; returns the written tag."""
        writer = self.writers[writer_index]
        op = writer.spawn(writer.write(key, value), label=f"{writer.pid}:put:{key}")
        return self.sim.run_until_complete(op)

    def get(self, key: str, reader_index: int = 0) -> Value:
        """Run one store read to completion; returns the value."""
        reader = self.readers[reader_index]
        op = reader.spawn(reader.read(key), label=f"{reader.pid}:get:{key}")
        return self.sim.run_until_complete(op)

    def multi_put(self, items: Mapping[str, Value], writer_index: int = 0) -> Dict[str, object]:
        """Run a pipelined batch write to completion; returns ``{key: tag}``."""
        writer = self.writers[writer_index]
        op = writer.spawn(writer.multi_put(items), label=f"{writer.pid}:multi_put")
        return self.sim.run_until_complete(op)

    def multi_get(self, keys, reader_index: int = 0) -> Dict[str, Value]:
        """Run a pipelined batch read to completion; returns ``{key: value}``."""
        reader = self.readers[reader_index]
        op = reader.spawn(reader.multi_get(keys), label=f"{reader.pid}:multi_get")
        return self.sim.run_until_complete(op)

    # -------------------------------------------------------- reconfiguration
    def migrate_shard(self, shard_index: int, dap: Optional[str] = None,
                      fresh_servers: int = 0, k: Optional[int] = None,
                      delta: Optional[int] = None,
                      reconfigurer_index: int = 0) -> int:
        """Run a live shard migration to completion; returns the new epoch.

        ``fresh_servers > 0`` recruits that many new server processes as the
        shard's target slice; ``0`` keeps the current slice (a pure DAP
        flip).  ``dap``/``k``/``delta`` override the shard's kind and TREAS
        parameters.
        """
        op = self.spawn_migrate_shard(shard_index, dap=dap,
                                      fresh_servers=fresh_servers, k=k,
                                      delta=delta,
                                      reconfigurer_index=reconfigurer_index)
        return self.sim.run_until_complete(op)

    def move_keys(self, keys, target_shard_index: int,
                  reconfigurer_index: int = 0) -> int:
        """Run a key-range rebalance to completion; returns the new epoch."""
        op = self.spawn_move_keys(keys, target_shard_index,
                                  reconfigurer_index=reconfigurer_index)
        return self.sim.run_until_complete(op)

    def split_shard(self, source_index: int, left_index: int, right_index: int,
                    reconfigurer_index: int = 0) -> int:
        """Split a shard's keys across two target shards; returns the epoch."""
        op = self.spawn_split_shard(source_index, left_index, right_index,
                                    reconfigurer_index=reconfigurer_index)
        return self.sim.run_until_complete(op)

    def spawn_migrate_shard(self, shard_index: int, dap: Optional[str] = None,
                            fresh_servers: int = 0, k: Optional[int] = None,
                            delta: Optional[int] = None,
                            reconfigurer_index: int = 0) -> Coroutine:
        """Start a shard migration without driving the simulator."""
        servers = self.add_servers(fresh_servers) if fresh_servers else None
        reconfigurer = self.reconfigurers[reconfigurer_index]
        return reconfigurer.spawn(
            reconfigurer.migrate_shard(shard_index, dap=dap, servers=servers,
                                       k=k, delta=delta),
            label=f"{reconfigurer.pid}:migrate-shard-{shard_index}")

    def spawn_move_keys(self, keys, target_shard_index: int,
                        reconfigurer_index: int = 0) -> Coroutine:
        """Start a key-range rebalance without driving the simulator."""
        reconfigurer = self.reconfigurers[reconfigurer_index]
        return reconfigurer.spawn(
            reconfigurer.move_keys(list(keys), target_shard_index),
            label=f"{reconfigurer.pid}:move-keys-to-{target_shard_index}")

    def spawn_split_shard(self, source_index: int, left_index: int,
                          right_index: int,
                          reconfigurer_index: int = 0) -> Coroutine:
        """Start a shard split without driving the simulator."""
        reconfigurer = self.reconfigurers[reconfigurer_index]
        return reconfigurer.spawn(
            reconfigurer.split_shard(source_index, left_index, right_index),
            label=f"{reconfigurer.pid}:split-shard-{source_index}")

    # ----------------------------------------------------------- async forms
    def spawn_put(self, key: str, value: Value, writer_index: int = 0) -> Coroutine:
        """Start a keyed write without driving the simulator."""
        writer = self.writers[writer_index]
        return writer.spawn(writer.write(key, value), label=f"{writer.pid}:put:{key}")

    def spawn_get(self, key: str, reader_index: int = 0) -> Coroutine:
        """Start a keyed read without driving the simulator."""
        reader = self.readers[reader_index]
        return reader.spawn(reader.read(key), label=f"{reader.pid}:get:{key}")

    def run(self) -> None:
        """Drain the event queue, completing all spawned operations."""
        self.sim.run()

    # ------------------------------------------------------------ accounting
    def total_storage_data_bytes(self) -> int:
        """Object-data bytes stored across every server and object."""
        return sum(server.storage_data_bytes() for server in self.servers.values())

    def configs_retired(self) -> int:
        """Configurations reclaimed across the server pool (GC acks)."""
        return sum(server.configs_retired for server in self.servers.values())

    def bytes_reclaimed(self) -> int:
        """Object-data bytes reclaimed by retirement across the server pool."""
        return sum(server.bytes_reclaimed for server in self.servers.values())

    def storage_by_shard(self) -> Dict[int, int]:
        """Object-data bytes stored per shard (summed over its servers)."""
        totals: Dict[int, int] = {shard.index: 0 for shard in self.shard_map.shards}
        for shard in self.shard_map.shards:
            for pid in shard.servers:
                totals[shard.index] += self.servers[pid].storage_data_bytes()
        return totals

    def storage_by_key(self) -> Dict[str, int]:
        """Object-data bytes stored per object key (summed over servers)."""
        totals: Dict[str, int] = {}
        for server in self.servers.values():
            for key, count in server.storage_by_key().items():
                totals[key] = totals.get(key, 0) + count
        return totals

    @property
    def stats(self):
        """Network traffic statistics."""
        return self.network.stats

    @property
    def latency_model(self) -> LatencyModel:
        """The network's latency model (exposes the ``d``/``D`` bounds)."""
        return self.network.latency
