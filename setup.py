"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments without the ``wheel`` package (legacy ``setup.py develop``
path used by ``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "ARES: Adaptive, Reconfigurable, Erasure-coded, atomic Storage "
        "(ICDCS 2019) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
