#!/usr/bin/env python3
"""Quickstart: an ARES reconfigurable atomic register in a few lines.

Builds an ARES deployment on the simulated network (TREAS-backed, 5 servers),
writes and reads a value, migrates the service to a brand-new set of servers
with one ``reconfig`` call, and shows that the data survived the migration
and that the recorded history is atomic.

Run with::

    python examples/quickstart.py
"""

from repro import AresDeployment, DeploymentSpec, Value
from repro.net.latency import UniformLatency
from repro.spec.linearizability import check_linearizability


def main() -> None:
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5,            # initial server pool
        initial_dap="treas",      # erasure-coded configuration ([5, 4] by default)
        delta=4,                  # tolerate up to 4 writes concurrent with a read
        num_writers=1,
        num_readers=1,
        num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0),
        seed=7,
    ))
    print("Initial configuration:", deployment.initial_configuration.describe())

    # 1. Write and read through the atomic register.
    deployment.write(Value.from_text("hello, reconfigurable world", label="greeting"))
    value = deployment.read()
    print("Read back:", value.as_text())

    # 2. Migrate the service to six brand-new servers with a stronger code.
    new_configuration = deployment.make_configuration(dap="treas", fresh_servers=6, k=4)
    installed = deployment.reconfig(new_configuration)
    print("Installed configuration:", installed.describe())

    # 3. The object survived the migration; clients keep operating.
    print("Read after reconfiguration:", deployment.read().as_text())
    deployment.write(Value.from_text("updated after migration", label="update"))
    print("Read after new write:     ", deployment.read().as_text())

    # 4. The recorded history is atomic (linearizable).
    result = check_linearizability(deployment.history)
    print("History linearizable:", result.ok)
    print("Simulated time elapsed:", round(deployment.sim.now, 2), "time units")
    print("Total messages:", deployment.network.messages_delivered)


if __name__ == "__main__":
    main()
