#!/usr/bin/env python3
"""The sharded multi-object store in a few lines.

Builds a store with one shard per DAP kind (ABD replication, erasure-coded
TREAS, LDR), writes and reads named objects, shows how batched
``multi_put``/``multi_get`` pipeline their per-key quorum rounds, and
finishes with a chaos run: Zipf hot-key traffic while the hot key's shard
loses both of its tolerated servers -- verified per key.

Run with::

    PYTHONPATH=src python examples/store_quickstart.py
"""

from __future__ import annotations

from repro import ShardSpec, StoreDeployment, StoreSpec, Value
from repro.net.latency import FixedLatency
from repro.spec.linearizability import check_linearizability_per_key
from repro.workloads.scenarios import run_scenario


def main() -> None:
    store = StoreDeployment(StoreSpec(shards=(
        ShardSpec(dap="abd", num_servers=5),
        ShardSpec(dap="treas", num_servers=6, k=4),
        ShardSpec(dap="ldr", num_servers=6),
    ), latency=FixedLatency(1.0), seed=7))

    # --- single-key operations -------------------------------------------
    store.put("user:42", Value.from_text("hello", label="v1"))
    print("get(user:42) ->", store.get("user:42").as_text())

    # --- batched operations pipeline their quorum rounds ------------------
    writer = store.writers[0]
    keys = [f"k{i}" for i in range(8)]

    start = store.sim.now
    store.multi_put({key: writer.next_value(64) for key in keys})
    batch_time = store.sim.now - start

    start = store.sim.now
    for key in keys:
        store.get(key)
    sequential_time = store.sim.now - start

    start = store.sim.now
    store.multi_get(keys)
    pipelined_time = store.sim.now - start
    print(f"\n8-key batch: multi_put {batch_time:.0f}t, sequential gets "
          f"{sequential_time:.0f}t, multi_get {pipelined_time:.0f}t "
          f"({sequential_time / pipelined_time:.1f}x faster pipelined)")

    # --- placement and accounting ----------------------------------------
    print("\nShard map:")
    print(store.shard_map.describe())
    print("bytes by shard:", store.storage_by_shard())

    # --- per-key verification of the whole keyed history -------------------
    result = check_linearizability_per_key(store.history)
    print(f"\nper-key linearizability: ok={result.ok} "
          f"({len(result.results)} keys, method {result.method})")

    # --- a store chaos scenario -------------------------------------------
    print("\n--- store_hot_shard_crash: Zipf traffic, hot shard loses 2 servers ---")
    chaos = run_scenario("store_hot_shard_crash", seed=7)
    chaos.verify()
    print(chaos.engine.describe_log())
    ops_by_key = {key: len(sub) for key, sub in chaos.history.split_by_key().items()}
    hot = max(ops_by_key, key=ops_by_key.get)
    print(f"verified per key: {len(ops_by_key)} keys, hottest {hot!r} with "
          f"{ops_by_key[hot]} of {len(chaos.history)} operations")


if __name__ == "__main__":
    main()
