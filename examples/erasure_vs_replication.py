#!/usr/bin/env python3
"""Erasure coding vs replication: the storage and bandwidth argument.

Reproduces the paper's motivating comparison (Section 1): storing an object
under the ABD algorithm (full replication) versus TREAS with an ``[n, k]``
MDS code.  The script runs both static registers on the simulator, measures
the bytes stored on servers and the bytes moved per operation, and prints
them next to the analytic costs of Theorem 3.

Run with::

    python examples/erasure_vs_replication.py
"""

from repro.analysis.costs import (
    abd_read_cost,
    abd_storage_cost,
    abd_write_cost,
    measure_operation_traffic,
    treas_read_cost,
    treas_storage_cost,
    treas_write_cost,
)
from repro.analysis.report import Table
from repro.common.values import Value
from repro.net.latency import FixedLatency
from repro.registers.static import StaticRegisterDeployment

VALUE_SIZE = 1 << 20  # 1 MiB object
N, K, DELTA = 9, 6, 2


def measure(kind: str):
    if kind == "treas":
        deployment = StaticRegisterDeployment.treas(
            num_servers=N, k=K, delta=DELTA, num_writers=1, num_readers=1,
            latency=FixedLatency(1.0))
    else:
        deployment = StaticRegisterDeployment.abd(
            num_servers=N, num_writers=1, num_readers=1, latency=FixedLatency(1.0))
    write = measure_operation_traffic(
        deployment, deployment.writers[0].pid,
        lambda: deployment.write(Value.of_size(VALUE_SIZE, label="object"), 0),
        value_size=VALUE_SIZE, name="write")
    read = measure_operation_traffic(
        deployment, deployment.readers[0].pid,
        lambda: deployment.read(0), value_size=VALUE_SIZE, name="read")
    storage = deployment.total_storage_data_bytes() / VALUE_SIZE
    return write.normalised, read.normalised, storage


def main() -> None:
    abd_write, abd_read, abd_storage = measure("abd")
    treas_write, treas_read, treas_storage = measure("treas")

    table = Table(
        f"Storing a 1 MiB object on n={N} servers (TREAS uses [n={N}, k={K}], delta={DELTA})",
        ["metric", "ABD measured", "ABD formula", "TREAS measured", "TREAS formula"],
    )
    table.add_row("storage (x object size)", abd_storage, abd_storage_cost(N),
                  treas_storage, treas_storage_cost(N, K, DELTA))
    table.add_row("write traffic (x object size)", abd_write, abd_write_cost(N),
                  treas_write, treas_write_cost(N, K))
    table.add_row("read traffic (x object size)", abd_read, abd_read_cost(N),
                  treas_read, treas_read_cost(N, K, DELTA))
    table.print()

    print()
    print(f"TREAS stores {abd_storage / treas_storage:.2f}x less data than ABD "
          f"and moves {abd_write / treas_write:.2f}x less data per write.")


if __name__ == "__main__":
    main()
