#!/usr/bin/env python3
"""Gray failures: resource exhaustion, client retries, degradation curves.

Real outages are rarely clean crash-stops: disks fill up, memory budgets
force load shedding, queues bounce requests -- all while the process keeps
answering health checks.  This example shows the two halves of the gray
failure toolkit:

1. **Resource pressure + retry/backoff.**  Three of five ABD servers hit a
   full disk mid-write.  Servers NACK with the classic ``ENOSPC`` reason
   instead of silently dropping, the client's quorum fails fast, and the
   seeded retry/backoff policy keeps re-trying until the pressure heals.

2. **A degradation curve.**  The registered ``abd_gray_degradation``
   scenario runs under continuous stochastic packet loss plus resource
   pressure on a server minority, at increasing ``fault_rate``.  Low rates
   are absorbed by retries; past the frontier, retry budgets exhaust and
   liveness fails.  (``python -m repro.sweep --bisect "fault_rate=0.0..0.5"``
   maps the same frontier adaptively.)

Run with::

    python examples/gray_failure.py            # both demos, 6-point curve
    python examples/gray_failure.py --quick    # both demos, 3-point curve
"""

from __future__ import annotations

import dataclasses
import sys

from repro.chaos import ChaosEngine, DiskFull, During, Schedule
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.sim.process import RetryPolicy
from repro.workloads.scenarios import get_scenario, run_scenario_instance


def retry_through_full_disks() -> None:
    print("=== 1. Disk-full servers NACK; the client retries through ===\n")
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd",
        retry=RetryPolicy(attempts=6, timeout=30.0, base_delay=4.0)))
    engine = ChaosEngine(deployment.network, seed=42)
    # s0..s2 refuse every data-carrying write until t=40: the 3-of-5 write
    # quorum is unreachable, but tag queries still pass (the gray-failure
    # asymmetry: the control plane works while the data plane degrades).
    engine.inject(Schedule([During(1, 40, DiskFull("s0", "s1", "s2"))]))

    deployment.write(Value.from_text("survives the incident", label="v1"))
    writer = deployment.writers[0]
    print(f"  write committed at t={deployment.sim.now:.1f} "
          f"after {writer.retries} retries "
          f"({writer.nacks_received} NACKs received)")
    print(f"  read back: {deployment.read().label!r}\n")
    print("  chaos log:")
    for line in engine.describe_log().splitlines():
        print(f"  {line}")
    print()


def degradation_curve(quick: bool) -> None:
    print("=== 2. Degradation curve: abd_gray_degradation vs fault_rate ===\n")
    base = get_scenario("abd_gray_degradation")
    rates = [0.0, 2 / 64, 16 / 64] if quick else \
        [0.0, 1 / 64, 4 / 64, 8 / 64, 12 / 64, 16 / 64]
    print(f"  {'rate':>8s}  {'verdict':8s}  {'retries':>7s}  {'nacks':>5s}  "
          f"{'sheds':>5s}  {'mean write':>10s}")
    for rate in rates:
        scenario = dataclasses.replace(base, fault_rate=rate)
        result = run_scenario_instance(scenario, seed=0)
        failure, _method = result.check()
        clients = result.deployment.writers + result.deployment.readers
        retries = sum(c.retries for c in clients)
        nacks = sum(c.nacks_received for c in clients)
        sheds = sum(s.governor.shed for s in result.deployment.servers.values()
                    if getattr(s, "governor", None) is not None)
        latency = result.workload.mean_write_latency
        verdict = "ok" if failure is None else "DEGRADED"
        print(f"  {rate:8.4f}  {verdict:8s}  {retries:7d}  {nacks:5d}  "
              f"{sheds:5d}  {latency:10.1f}")
    print("\n  (low rates are absorbed by retry/backoff; past the frontier "
          "retry budgets\n  exhaust and liveness fails -- that boundary is "
          "what the nightly\n  fault_rate bisection tracks per DAP)")


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    retry_through_full_disks()
    degradation_curve(quick)
    return 0


if __name__ == "__main__":
    exit_code = main()
    if exit_code:  # plain return on success keeps runpy-based smoke tests happy
        raise SystemExit(exit_code)
