#!/usr/bin/env python3
"""Surviving server failures and migrating off a dying configuration.

Demonstrates the fault-tolerance story of the paper:

1. A TREAS ``[9, 5]`` configuration tolerates ``f = (n-k)/2 = 2`` server
   crashes: reads and writes keep completing after two servers die.
2. When more failures threaten the configuration, a reconfiguration client
   migrates the object to a fresh configuration; after the migration even the
   complete loss of the old servers does not affect the service.
3. A client crash in the middle of an operation leaves the register in a
   consistent state (the interrupted write either happened or it did not --
   the history stays atomic).

Run with::

    python examples/failure_and_recovery.py
"""

from repro.common.ids import server_id
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.spec.linearizability import check_linearizability


def main() -> None:
    deployment = AresDeployment(DeploymentSpec(
        num_servers=9, initial_dap="treas", k=5, delta=6,
        num_writers=2, num_readers=2, num_reconfigurers=1,
        latency=UniformLatency(1.0, 2.0), seed=23))
    cfg0 = deployment.initial_configuration
    print("Initial configuration:", cfg0.describe())
    print("Crash tolerance f =", cfg0.max_crash_failures())

    deployment.write(Value.from_text("generation-1 data", label="gen1"), 0)

    # --- Phase 1: crashes within the tolerance --------------------------------
    victims = [server_id(7), server_id(8)]
    for victim in victims:
        deployment.failure_injector.crash_now(victim)
    print(f"\nCrashed {len(victims)} of {cfg0.n} servers "
          f"({', '.join(v.name for v in victims)}); operations continue:")
    print("  read ->", deployment.read(0).as_text())
    deployment.write(Value.from_text("written despite failures", label="gen1b"), 1)
    print("  write + read ->", deployment.read(1).as_text())

    # --- Phase 2: migrate away before more servers die ------------------------
    fresh = deployment.make_configuration(dap="treas", fresh_servers=9, k=5)
    deployment.reconfig(fresh, 0)
    print("\nMigrated to", fresh.describe())
    # Every client touches the service once while the old configuration is
    # still reachable, so their traversals pin the finalized new configuration.
    print("  read ->", deployment.read(0).as_text())
    print("  read ->", deployment.read(1).as_text())
    deployment.write(Value.from_text("generation-2 data", label="gen2"), 0)
    deployment.write(Value.from_text("generation-2 data (w1)", label="gen2b"), 1)

    # Now the entire old configuration dies.
    for index in range(7):
        deployment.failure_injector.crash_now(server_id(index))
    print("Old configuration is now completely dead; service still works:")
    print("  read ->", deployment.read(1).as_text())

    # --- Phase 3: a writer crashes mid-operation ------------------------------
    interrupted = deployment.spawn_write(
        Value.from_text("may or may not survive", label="interrupted"), 1)
    deployment.sim.run_until(deployment.sim.now + 1.0)
    deployment.writers[1].crash()
    deployment.sim.run()
    print("\nWriter-1 crashed mid-write; its operation",
          "failed" if interrupted.exception() is not None else "completed")
    final = deployment.read(0)
    print("  final read ->", final.as_text())

    result = check_linearizability(deployment.history)
    print("\nHistory linearizable despite crashes and migration:", result.ok)


if __name__ == "__main__":
    main()
