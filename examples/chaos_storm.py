#!/usr/bin/env python3
"""Chaos storm: the scenario registry as an executable adversary.

Runs every named chaos scenario -- DAP (ABD / LDR / TREAS) crossed with
crashes, crash-recovery, partitions, gray failures, message chaos and
reconfiguration storms -- and checks each recorded history against the
linearizability spec.  The kitchen-sink ``storm_mixed_dap_chaos`` scenario's
fault schedule and chaos log are printed in full to show what the adversary
actually did.

Run with::

    python examples/chaos_storm.py            # every registered scenario
    python examples/chaos_storm.py --quick    # just the kitchen-sink storm
    python examples/chaos_storm.py --profile  # cProfile the showcase storm
"""

from __future__ import annotations

import sys

from repro.spec.linearizability import check_linearizability
from repro.workloads.scenarios import get_scenario, run_scenario, scenario_names

SHOWCASE = "storm_mixed_dap_chaos"


def run_one(name: str):
    scenario = get_scenario(name)
    result = run_scenario(name, seed=7)
    # check() is the single source of truth: liveness + linearizability +
    # tag monotonicity, per key for keyed (store) scenario histories.
    failure, _method = result.check()
    ok = failure is None
    status = "ok " if ok else "FAIL"
    print(f"  {status} {name:30s} dap={scenario.dap:5s} "
          f"faults={','.join(scenario.faults):40s} "
          f"ops={result.workload.total_operations:3d} "
          f"read={result.workload.mean_read_latency:5.1f} "
          f"write={result.workload.mean_write_latency:5.1f}")
    return ok, result


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    names = [SHOWCASE] if quick else scenario_names()

    print(f"Chaos scenario registry: {len(scenario_names())} scenarios "
          f"({'running 1, --quick' if quick else 'running all'})\n")
    failures = 0
    storm = None
    for name in names:
        ok, result = run_one(name)
        failures += 0 if ok else 1
        if name == SHOWCASE:
            storm = result
    if storm is None:  # SHOWCASE not in names (cannot happen today, but cheap)
        storm = run_scenario(SHOWCASE, seed=7)
    if "--profile" in sys.argv[1:]:
        run_scenario(SHOWCASE, seed=7, profile=True)
    print(f"\n--- {SHOWCASE}: fault schedule ---")
    print(storm.schedule.describe())
    print(f"\n--- {SHOWCASE}: chaos log (what actually fired) ---")
    print(storm.engine.describe_log())
    lin = check_linearizability(storm.history)
    print(f"\nStorm history: {len(storm.history)} operations, "
          f"{len(storm.history.reconfigs())} reconfigurations, "
          f"linearizable: {lin.ok}")
    print(f"Network: {storm.deployment.network.messages_delivered} delivered, "
          f"{storm.deployment.network.messages_dropped} dropped, "
          f"{storm.deployment.network.messages_duplicated} duplicated")
    if failures:
        print(f"\n{failures} scenario(s) FAILED")
        return 1
    return 0


if __name__ == "__main__":
    exit_code = main()
    if exit_code:  # plain return on success keeps runpy-based smoke tests happy
        raise SystemExit(exit_code)
