#!/usr/bin/env python3
"""Rolling reconfiguration under live client traffic.

The scenario the paper's introduction motivates: a storage service must be
moved across server generations (hardware upgrades, scale-up/scale-down)
without interrupting readers and writers.  This example keeps a closed-loop
read/write workload running while a reconfiguration client installs a chain
of configurations -- growing the cluster, changing the erasure-code
parameters, and even switching the per-configuration algorithm between ABD
(replication) and TREAS (erasure-coded) -- and finally verifies that the
combined history is atomic.

It also contrasts baseline ARES with the ARES-TREAS direct state transfer
(Section 5): with the optimisation enabled, the reconfiguration client stops
carrying object data entirely.

Run with::

    python examples/rolling_reconfiguration.py
"""

from repro.analysis.report import Table
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.spec.linearizability import check_linearizability
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec

OBJECT_SIZE = 1 << 16  # 64 KiB

#: The upgrade plan: (dap, fresh servers, k).
UPGRADE_PLAN = [
    ("treas", 6, 4),    # scale out to a new rack
    ("abd", 3, None),   # temporary replication-only configuration
    ("treas", 9, 6),    # final erasure-coded configuration
]


def run(direct_state_transfer: bool):
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="treas", delta=10, num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=11,
        direct_state_transfer=direct_state_transfer))
    reconfigurer = deployment.reconfigurers[0]

    def rolling_upgrade():
        for dap, fresh, k in UPGRADE_PLAN:
            configuration = deployment.make_configuration(dap=dap, fresh_servers=fresh, k=k)
            yield from reconfigurer.reconfig(configuration)
        return None

    reconfigurer.spawn(rolling_upgrade(), label="rolling-upgrade")
    workload = ClosedLoopDriver(deployment, WorkloadSpec(
        operations_per_writer=5, operations_per_reader=5,
        value_size=OBJECT_SIZE, think_time=3.0))
    result = workload.run()

    reconfigurer_bytes = deployment.stats.to_and_from(reconfigurer.pid).data_bytes
    return deployment, result, reconfigurer_bytes


def main() -> None:
    table = Table(
        "Rolling upgrade with live clients: baseline ARES vs ARES-TREAS direct transfer",
        ["variant", "ops", "mean write lat", "mean read lat", "reconfigs",
         "object bytes through reconfigurer", "linearizable"],
    )
    for direct in (False, True):
        deployment, result, reconfigurer_bytes = run(direct)
        linearizable = check_linearizability(deployment.history).ok
        table.add_row(
            "direct transfer" if direct else "baseline",
            result.total_operations, result.mean_write_latency,
            result.mean_read_latency, len(deployment.history.reconfigs()),
            reconfigurer_bytes, str(linearizable),
        )
        assert result.errors == []
    table.print()
    print()
    print("Every configuration in the upgrade plan was installed while reads and")
    print("writes kept completing, and the combined history stayed atomic.")


if __name__ == "__main__":
    main()
