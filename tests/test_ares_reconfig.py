"""Tests for the ARES reconfiguration service (Algorithms 4, 5, 6).

Covers the sequence-traversal actions, the four phases of ``reconfig``, the
configuration-sequence properties the paper proves (Uniqueness, Prefix,
Progress -- Lemmas 13-16) and behaviour under concurrent reconfigurers.
"""

from __future__ import annotations

import pytest

from repro.common.ids import config_id, server_id
from repro.common.values import Value
from repro.config.sequence import Status
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.spec.history import OperationType
from repro.spec.linearizability import check_linearizability


def make_deployment(**overrides):
    defaults = dict(num_servers=5, initial_dap="treas", delta=4, num_writers=2,
                    num_readers=2, num_reconfigurers=2, seed=0,
                    latency=UniformLatency(1.0, 2.0))
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestSequenceTraversal:
    def test_read_config_on_fresh_system_returns_initial_only(self):
        dep = make_deployment()
        client = dep.readers[0]
        handle = client.spawn(client.read_config(client.cseq))
        seq = dep.sim.run_until_complete(handle)
        assert len(seq) == 1
        assert seq[0].config.cfg_id == dep.initial_configuration.cfg_id

    def test_read_config_discovers_installed_configuration(self):
        dep = make_deployment()
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(new_cfg, 0)
        client = dep.readers[0]
        handle = client.spawn(client.read_config(client.cseq))
        seq = dep.sim.run_until_complete(handle)
        assert len(seq) == 2
        assert seq[1].config.cfg_id == new_cfg.cfg_id
        assert seq[1].status is Status.FINALIZED

    def test_put_config_installs_nextc_at_quorum(self):
        dep = make_deployment()
        client = dep.readers[0]
        new_cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        from repro.config.sequence import ConfigRecord

        record = ConfigRecord(new_cfg, Status.PENDING)
        handle = client.spawn(client.put_config(dep.initial_configuration, record))
        dep.sim.run_until_complete(handle)
        holders = sum(
            1 for server in dep.servers.values()
            if server.next_config.get(dep.initial_configuration.cfg_id) is not None
        )
        assert holders >= dep.initial_configuration.consensus_quorums.quorum_size


class TestReconfigOperation:
    def test_reconfig_installs_and_finalizes(self):
        dep = make_deployment()
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        installed = dep.reconfig(new_cfg, 0)
        assert installed.cfg_id == new_cfg.cfg_id
        reconfigurer = dep.reconfigurers[0]
        assert reconfigurer.cseq.nu == 1
        assert reconfigurer.cseq[1].status is Status.FINALIZED
        assert reconfigurer.completed_reconfigs == 1

    def test_reconfig_transfers_latest_value(self):
        dep = make_deployment()
        dep.write(Value.of_size(256, label="before-reconfig"), 0)
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(new_cfg, 0)
        # The new configuration's servers now hold the value: a reader that
        # only contacts the new configuration (fresh client state) finds it.
        assert dep.read(0).label == "before-reconfig"
        by_config = dep.storage_by_configuration()
        assert by_config.get(new_cfg.cfg_id, 0) > 0

    def test_reconfig_across_dap_kinds(self):
        dep = make_deployment()
        dep.write(Value.of_size(128, label="v1"), 0)
        abd_cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        dep.reconfig(abd_cfg, 0)
        assert dep.read(0).label == "v1"
        dep.write(Value.of_size(128, label="v2"), 1)
        treas_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(treas_cfg, 1)
        assert dep.read(1).label == "v2"

    def test_reconfig_to_smaller_and_larger_configurations(self):
        dep = make_deployment(num_servers=9)
        dep.write(Value.of_size(64, label="x"), 0)
        smaller = dep.make_configuration(dap="treas",
                                         servers=[server_id(i) for i in range(4)], k=3)
        dep.reconfig(smaller, 0)
        assert dep.read(0).label == "x"
        larger = dep.make_configuration(dap="treas", fresh_servers=12, k=8)
        dep.reconfig(larger, 1)
        assert dep.read(1).label == "x"

    def test_multiple_sequential_reconfigs_grow_the_sequence(self):
        dep = make_deployment()
        for round_number in range(3):
            cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
            dep.reconfig(cfg, 0)
        assert dep.reconfigurers[0].cseq.nu == 3
        assert dep.reconfigurers[0].cseq.mu == 3
        # Clients discover the whole chain.
        dep.write(Value.of_size(32, label="final"), 0)
        assert dep.read(0).label == "final"

    def test_reconfig_history_records_latency(self):
        dep = make_deployment()
        cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg, 0)
        recs = dep.history.reconfigs()
        assert len(recs) == 1
        assert recs[0].latency > 0
        assert recs[0].config_id == cfg.cfg_id


class TestConcurrentReconfigurations:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_contending_reconfigurers_agree_on_successor(self, seed):
        dep = make_deployment(seed=seed)
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
        handle_a = dep.spawn_reconfig(cfg_a, 0)
        handle_b = dep.spawn_reconfig(cfg_b, 1)
        dep.run()
        assert handle_a.exception() is None and handle_b.exception() is None
        seq_a = dep.reconfigurers[0].cseq
        seq_b = dep.reconfigurers[1].cseq
        # Configuration Uniqueness (Lemma 13): same index, same configuration.
        for index in range(1, min(seq_a.nu, seq_b.nu) + 1):
            assert seq_a[index].config.cfg_id == seq_b[index].config.cfg_id
        # Index 1 was decided by consensus: it is one of the two proposals.
        assert seq_a[1].config.cfg_id in {cfg_a.cfg_id, cfg_b.cfg_id}

    def test_sequences_are_prefix_related(self):
        dep = make_deployment()
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg_a, 0)
        client = dep.readers[0]
        handle = client.spawn(client.read_config(client.cseq))
        seq_after_one = dep.sim.run_until_complete(handle).copy()
        cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
        dep.reconfig(cfg_b, 1)
        handle = client.spawn(client.read_config(client.cseq))
        seq_after_two = dep.sim.run_until_complete(handle)
        # Configuration Prefix (Lemma 14 / Theorem 16b).
        assert seq_after_one.is_prefix_of(seq_after_two)
        # Configuration Progress (Lemma 15): µ is monotone.
        assert seq_after_one.mu <= seq_after_two.mu

    def test_operations_remain_atomic_under_concurrent_reconfig(self):
        dep = make_deployment(delta=8, seed=5)
        ops = []
        for index in range(2):
            ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
            ops.append(dep.spawn_read(index))
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        cfg_b = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        ops.append(dep.spawn_reconfig(cfg_a, 0))
        ops.append(dep.spawn_reconfig(cfg_b, 1))
        dep.run()
        assert all(op.exception() is None for op in ops)
        result = check_linearizability(dep.history)
        assert result.ok, result.reason


class TestReconfigErrorPaths:
    """Off-the-happy-path behaviour of Algorithm 5 (previously untested)."""

    def test_reconfig_onto_crashed_target_quorum_raises(self):
        """Proposing a configuration whose servers are (mostly) dead fails
        fast: the update phase cannot gather the target quorum and the
        coroutine surfaces ``QuorumUnavailableError`` instead of hanging."""
        from repro.common.errors import QuorumUnavailableError

        dep = make_deployment()
        dep.write(Value.of_size(64, label="pre"), 0)
        cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        for pid in cfg.servers:
            dep.network.crash(pid)
        handle = dep.spawn_reconfig(cfg, 0)
        dep.run()
        assert isinstance(handle.exception(), QuorumUnavailableError)
        # The pending record was already announced to the old quorum before
        # the transfer failed, so Algorithm 7 forces later operations through
        # the dead configuration too: they fail fast the same way instead of
        # silently serving from the old quorum (which would break atomicity
        # if the new servers ever came back).
        late = dep.spawn_write(Value.of_size(64, label="post"), 0)
        dep.run()
        assert isinstance(late.exception(), QuorumUnavailableError)

    def test_reconfig_onto_partitioned_quorum_stalls_but_stays_safe(self):
        """A partition (not a crash) of the target servers is outside the
        liveness envelope: the reconfiguration must stall -- requests are
        dropped, not refused -- while safety of everything completed so far
        holds and the sequence state stays uniqueness-consistent."""
        from repro.chaos import ChaosEngine, Isolate, Schedule, At

        dep = make_deployment()
        dep.write(Value.of_size(64, label="pre"), 0)
        cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        engine = ChaosEngine(dep.network, seed="partitioned-target")
        engine.inject(Schedule([
            At(dep.sim.now, Isolate(*[pid.name for pid in cfg.servers]))]))
        handle = dep.spawn_reconfig(cfg, 0)
        dep.run()
        assert not handle.done()
        assert handle.exception() is None
        # Completed operations remain linearizable.
        result = check_linearizability(dep.history)
        assert result.ok, result.reason
        # Configuration Uniqueness holds on every server's nextC state.
        initial_id = dep.initial_configuration.cfg_id
        successors = {server.next_config[initial_id].config.cfg_id
                      for server in dep.servers.values()
                      if server.next_config.get(initial_id) is not None}
        assert successors <= {cfg.cfg_id}

    @pytest.mark.parametrize("delay", [0.5, 2.0, 6.0])
    def test_finalize_racing_a_concurrent_proposal(self, delay):
        """Reconfigurer B proposes while A is mid-flight (between phases,
        depending on ``delay``): whatever the interleaving, both terminate,
        per-index uniqueness holds, both proposals are installed somewhere,
        and subsequent traffic linearizes."""
        dep = make_deployment(seed=11)
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
        handle_a = dep.spawn_reconfig(cfg_a, 0)
        handles = [handle_a]
        dep.sim.schedule_at(delay, lambda: handles.append(dep.spawn_reconfig(cfg_b, 1)),
                            label="late-proposal")
        dep.run()
        assert len(handles) == 2
        assert all(h.done() and h.exception() is None for h in handles)
        seq_a = dep.reconfigurers[0].cseq
        seq_b = dep.reconfigurers[1].cseq
        for index in range(1, min(seq_a.nu, seq_b.nu) + 1):
            assert seq_a[index].config.cfg_id == seq_b[index].config.cfg_id
        installed = {seq_b[i].config.cfg_id for i in range(len(seq_b))}
        installed |= {seq_a[i].config.cfg_id for i in range(len(seq_a))}
        # Each reconfig returns the configuration decided at its index: the
        # loser of a contended round adopts the winner's proposal (its own
        # is dropped -- at most one configuration per index), so at least
        # one of the two proposals is installed and every returned decision
        # appears in the sequences.
        decisions = {h.result().cfg_id for h in handles}
        assert decisions & {cfg_a.cfg_id, cfg_b.cfg_id}
        assert decisions <= installed
        dep.write(Value.of_size(64, label="after-race"), 0)
        assert dep.read(0).label == "after-race"
        result = check_linearizability(dep.history)
        assert result.ok, result.reason

    def test_contending_proposals_install_at_most_one_config_per_index(self):
        """The loser of the consensus round adopts the decided configuration
        and its own proposal is dropped from that index -- the decided
        record is what every server's nextC holds."""
        dep = make_deployment(seed=3)
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
        handle_a = dep.spawn_reconfig(cfg_a, 0)
        handle_b = dep.spawn_reconfig(cfg_b, 1)
        dep.run()
        assert handle_a.exception() is None and handle_b.exception() is None
        initial_id = dep.initial_configuration.cfg_id
        successors = {server.next_config[initial_id].config.cfg_id
                      for server in dep.servers.values()
                      if server.next_config.get(initial_id) is not None}
        assert len(successors) == 1


class TestServerSideState:
    def test_next_config_is_write_once_finalized(self):
        dep = make_deployment()
        cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg, 0)
        initial_id = dep.initial_configuration.cfg_id
        finalized_holders = [
            server for server in dep.servers.values()
            if server.next_config.get(initial_id) is not None
            and server.next_config[initial_id].status is Status.FINALIZED
        ]
        assert finalized_holders
        # A later WRITE-CONFIG with a pending record must not downgrade it.
        from repro.config.sequence import ConfigRecord
        from repro.net.message import request
        from repro.core.server import WRITE_CONFIG

        victim = finalized_holders[0]
        bogus = ConfigRecord(cfg, Status.PENDING)
        victim.on_message(dep.writers[0].pid,
                          request(WRITE_CONFIG, 999, config_id=initial_id, record=bogus))
        assert victim.next_config[initial_id].status is Status.FINALIZED

    def test_servers_host_dap_state_per_configuration(self):
        dep = make_deployment()
        dep.write(Value.of_size(64, label="x"), 0)
        cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg, 0)
        dep.write(Value.of_size(64, label="y"), 0)
        new_server = dep.servers[cfg.servers[0]]
        assert cfg.cfg_id in new_server.member_configurations()
        old_server = dep.servers[dep.initial_configuration.servers[0]]
        assert dep.initial_configuration.cfg_id in old_server.member_configurations()
