"""The observability differential gate: metrics must not move a byte.

Instrumentation samples in virtual time but must never *schedule* events,
draw from a run's RNG streams or touch message payloads, so a scenario
executed with ``metrics=True`` has to reproduce the exact golden history
signature pinned by ``tests/data/golden_signatures.json`` -- the same
fixture the uninstrumented runs are gated on.  A divergence here means a
metrics hook leaked into the execution (an extra event, an RNG draw, a
reordered callback), which would make every metrics campaign measure a
*different* system than the one the correctness gates verify.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.workloads.scenarios import run_scenario, scenario_names

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_signatures.json"

#: A cross-DAP spread for the deeper (chaos log + report shape) checks;
#: the signature gate below covers every registered scenario.
SPOT_CHECK = ("abd_crash_minority", "treas_reconfig_partition",
              "ldr_gray_degradation", "store_mixed_dap_storm")


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _signature_hash(result) -> str:
    return hashlib.sha256(repr(result.signature()).encode()).hexdigest()


@pytest.mark.parametrize("name", scenario_names())
def test_metrics_enabled_matches_golden_signature(name, golden):
    result = run_scenario(name, seed=0, metrics=True)
    assert _signature_hash(result) == golden[name], (
        f"scenario {name!r} with metrics=True diverged from the golden "
        "signature -- an instrumentation hook altered the execution")
    assert result.metrics is not None


@pytest.mark.parametrize("name", SPOT_CHECK)
def test_chaos_logs_identical_with_and_without_metrics(name):
    plain = run_scenario(name, seed=1)
    instrumented = run_scenario(name, seed=1, metrics=True)
    assert plain.chaos_log == instrumented.chaos_log
    assert plain.signature() == instrumented.signature()
    assert plain.metrics is None


@pytest.mark.parametrize("name", SPOT_CHECK)
def test_metrics_report_shape_and_json_round_trip(name):
    """The exported report is JSON-clean and survives a round trip."""
    result = run_scenario(name, seed=0, metrics=True)
    report = result.metrics
    data = report.to_json()
    assert data["schema"] == 1
    assert data["duration"] > 0
    # Core instrumented series: messages always flow; client latencies are
    # recorded on every scenario workload.
    assert data["counters"]["messages"]["total"] > 0
    assert data["histograms"]["read_latency"]["count"] > 0
    assert data["histograms"]["write_latency"]["count"] > 0
    assert any(key.startswith("round:") for key in data["histograms"])
    assert "sim" in data["meta"] and "payload_cache" in data["meta"]
    round_tripped = json.loads(json.dumps(data, sort_keys=True))
    assert round_tripped == json.loads(json.dumps(data, sort_keys=True))
    assert json.dumps(round_tripped, sort_keys=True) == \
        json.dumps(data, sort_keys=True)


def test_metrics_runs_are_reproducible():
    """Two instrumented runs of the same cell export identical reports."""
    a = run_scenario("treas_gray_degradation", seed=2, metrics=True)
    b = run_scenario("treas_gray_degradation", seed=2, metrics=True)
    assert json.dumps(a.metrics.to_json(), sort_keys=True) == \
        json.dumps(b.metrics.to_json(), sort_keys=True)
