"""Unit tests for the TREAS DAP (Algorithms 2 and 3)."""

from __future__ import annotations

import pytest

from repro.common.errors import QuorumUnavailableError
from repro.common.ids import config_id, server_id, writer_id
from repro.common.tags import BOTTOM_TAG, Tag, TagValue
from repro.common.values import Value
from repro.config.configuration import Configuration
from repro.dap.treas import PUT_DATA, QUERY_LIST, QUERY_TAG, TreasServerState
from repro.net.message import request
from repro.registers.static import StaticRegisterDeployment
from repro.spec.properties import check_dap_properties


def make_config(n=6, k=4, delta=2):
    return Configuration.treas(config_id(0), [server_id(i) for i in range(n)], k=k, delta=delta)


class TestTreasServerState:
    def test_initial_list_holds_bottom_element(self):
        cfg = make_config()
        state = TreasServerState(cfg, server_id(2))
        assert BOTTOM_TAG in state.list
        assert state.list[BOTTOM_TAG] is not None
        assert state.list[BOTTOM_TAG].index == 2

    def test_insert_keeps_coded_element(self):
        cfg = make_config()
        state = TreasServerState(cfg, server_id(0))
        value = Value.of_size(40, label="x")
        element = cfg.code.encode(value)[0]
        tag = Tag(1, writer_id(0))
        state.insert(tag, element)
        assert state.coded_element_for(tag) == element
        assert state.max_known_tag() == tag

    def test_garbage_collection_keeps_delta_plus_one_elements(self):
        cfg = make_config(delta=2)
        state = TreasServerState(cfg, server_id(0))
        value = Value.of_size(40, label="x")
        element = cfg.code.encode(value)[0]
        tags = [Tag(i, writer_id(0)) for i in range(1, 7)]
        for tag in tags:
            state.insert(tag, element)
        with_elements = [t for t, e in state.list.items() if e is not None]
        assert len(with_elements) == cfg.delta + 1
        # The retained elements are exactly the delta+1 highest tags.
        assert sorted(with_elements) == sorted(tags)[-3:]
        # Trimmed tags are still present (as ⊥) so get-tag still sees them.
        assert all(t in state.list for t in tags)
        assert state.max_known_tag() == tags[-1]

    def test_storage_cost_matches_theorem3(self):
        # Total storage across servers is (delta+1) * n/k value units once
        # enough distinct tags have been written.
        n, k, delta = 6, 4, 2
        cfg = make_config(n=n, k=k, delta=delta)
        value_size = 400
        states = [TreasServerState(cfg, server_id(i)) for i in range(n)]
        for z in range(1, 10):
            value = Value.of_size(value_size, label=f"w{z}")
            elements = cfg.code.encode(value)
            for i, state in enumerate(states):
                state.insert(Tag(z, writer_id(0)), elements[i])
        total = sum(state.storage_data_bytes() for state in states)
        expected = (delta + 1) * n / k * value_size
        assert total == pytest.approx(expected)

    def test_duplicate_insert_does_not_replace(self):
        cfg = make_config()
        state = TreasServerState(cfg, server_id(0))
        tag = Tag(1, writer_id(0))
        first = cfg.code.encode(Value.of_size(10, label="first"))[0]
        second = cfg.code.encode(Value.of_size(10, label="second"))[0]
        state.insert(tag, first)
        state.insert(tag, second)
        assert state.coded_element_for(tag).label == "first"

    def test_query_tag_and_list_handlers(self):
        cfg = make_config()
        state = TreasServerState(cfg, server_id(0))
        tag_reply = state.handle(writer_id(0), request(QUERY_TAG, 1))
        assert tag_reply["tag"] == BOTTOM_TAG
        list_reply = state.handle(writer_id(0), request(QUERY_LIST, 2))
        assert len(list_reply["list"]) == 1
        element = cfg.code.encode(Value.of_size(40, label="x"))[0]
        state.handle(writer_id(0), request(PUT_DATA, 3, tag=Tag(1, writer_id(0)), element=element))
        list_reply = state.handle(writer_id(0), request(QUERY_LIST, 4))
        assert len(list_reply["list"]) == 2
        assert list_reply.data_bytes == element.size  # v0's element is empty


class TestTreasPrimitives:
    def _deployment(self, n=6, k=4, delta=2, **kwargs):
        kwargs.setdefault("record_dap", True)
        kwargs.setdefault("num_writers", 2)
        kwargs.setdefault("num_readers", 2)
        return StaticRegisterDeployment.treas(num_servers=n, k=k, delta=delta, **kwargs)

    def test_put_then_get_round_trip(self):
        dep = self._deployment()
        writer, reader = dep.writers[0], dep.readers[0]
        pair = TagValue(Tag(1, writer.pid), Value.of_size(120, label="hello"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        result = dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        assert result.tag == pair.tag
        assert result.value.payload == pair.value.payload

    def test_get_tag_sees_completed_put(self):
        dep = self._deployment()
        writer = dep.writers[0]
        pair = TagValue(Tag(7, writer.pid), Value.of_size(16, label="x"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        tag = dep.sim.run_until_complete(dep.readers[0].spawn(dep.readers[0].dap.get_tag()))
        assert tag >= pair.tag

    def test_initial_get_data_returns_bottom_pair(self):
        dep = self._deployment()
        result = dep.sim.run_until_complete(dep.readers[0].spawn(dep.readers[0].dap.get_data()))
        assert result.tag == BOTTOM_TAG
        assert result.value.size == 0

    def test_survives_f_server_crashes(self):
        # f = (n - k) / 2 = 1 for [6, 4]
        dep = self._deployment(n=6, k=4)
        dep.servers[server_id(5)].crash()
        dep.write(dep.writers[0].next_value(64), 0)
        value = dep.read(0)
        assert value.label == "writer-0:1"

    def test_put_data_fails_fast_beyond_crash_tolerance(self):
        dep = self._deployment(n=6, k=4)
        for index in [3, 4, 5]:
            dep.servers[server_id(index)].crash()
        writer = dep.writers[0]
        pair = TagValue(Tag(1, writer.pid), Value.of_size(8, label="x"))
        handle = writer.spawn(writer.dap.put_data(pair))
        dep.sim.run()
        assert isinstance(handle.exception(), QuorumUnavailableError)

    def test_fragment_traffic_is_value_size_over_k(self):
        n, k = 6, 4
        dep = self._deployment(n=n, k=k)
        value_size = 4000
        writer = dep.writers[0]
        pair = TagValue(Tag(1, writer.pid), Value.of_size(value_size, label="x"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        put_traffic = dep.stats.by_kind(PUT_DATA)
        assert put_traffic.messages == n
        assert put_traffic.data_bytes == n * (value_size // k)

    def test_dap_properties_hold(self):
        dep = self._deployment(delta=4)
        for _ in range(3):
            dep.write(dep.writers[0].next_value(32), 0)
            dep.read(0)
            dep.write(dep.writers[1].next_value(32), 1)
            dep.read(1)
        assert check_dap_properties(dep.dap_recorder) == []

    def test_read_with_many_concurrent_writes_is_garbage_collection_safe(self):
        # delta is set to cover the number of concurrent writers, so reads
        # must stay live even when all writers run concurrently.
        dep = self._deployment(n=6, k=4, delta=4, num_writers=4, num_readers=2)
        ops = []
        for index in range(4):
            ops.append(dep.spawn_write(dep.writers[index].next_value(48), index))
        for index in range(2):
            ops.append(dep.spawn_read(index))
        dep.run()
        assert all(op.exception() is None for op in ops)
