"""Unit tests for the single-decree Paxos consensus substrate."""

from __future__ import annotations

import pytest

from repro.common.errors import ConsensusError
from repro.common.ids import config_id, reconfigurer_id, server_id
from repro.config.configuration import Configuration
from repro.consensus.paxos import Ballot, PaxosAcceptorState, PaxosProposer
from repro.core.directory import ConfigurationDirectory
from repro.core.server import AresServer
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.process import Process


class ProposerClient(Process):
    """A bare client process used to host proposer coroutines."""


def build_system(num_servers=5, num_clients=2, seed=0, latency=None):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency or UniformLatency(1.0, 3.0))
    directory = ConfigurationDirectory()
    servers = [AresServer(server_id(i), network, directory) for i in range(num_servers)]
    configuration = Configuration.treas(config_id(0), [s.pid for s in servers])
    directory.register(configuration)
    clients = [ProposerClient(reconfigurer_id(i), network) for i in range(num_clients)]
    return sim, network, configuration, servers, clients


class TestBallots:
    def test_ordering(self):
        a = Ballot.make(1, reconfigurer_id(0))
        b = Ballot.make(1, reconfigurer_id(1))
        c = Ballot.make(2, reconfigurer_id(0))
        assert a < b < c
        assert Ballot.initial() < a

    def test_initial_smaller_than_all(self):
        assert Ballot.initial() < Ballot.make(1, reconfigurer_id(0))


class TestAcceptorState:
    def test_rejects_unknown_kind(self):
        from repro.net.message import request

        state = PaxosAcceptorState()
        with pytest.raises(ConsensusError):
            state.handle(request("BOGUS", 1))


class TestSingleProposer:
    def test_decides_proposed_value(self):
        sim, network, configuration, servers, clients = build_system()
        proposer = PaxosProposer(clients[0], configuration, instance=configuration.cfg_id)
        handle = clients[0].spawn(proposer.propose("value-A"))
        decision = sim.run_until_complete(handle)
        assert decision.value == "value-A"
        assert decision.ballot_round == 1

    def test_cannot_propose_none(self):
        sim, network, configuration, servers, clients = build_system()
        proposer = PaxosProposer(clients[0], configuration, instance=configuration.cfg_id)
        handle = clients[0].spawn(proposer.propose(None))
        sim.run()
        assert isinstance(handle.exception(), ConsensusError)

    def test_later_proposer_learns_existing_decision(self):
        sim, network, configuration, servers, clients = build_system()
        first = PaxosProposer(clients[0], configuration, instance=configuration.cfg_id)
        decision_a = sim.run_until_complete(clients[0].spawn(first.propose("A")))
        second = PaxosProposer(clients[1], configuration, instance=configuration.cfg_id)
        decision_b = sim.run_until_complete(clients[1].spawn(second.propose("B")))
        assert decision_a.value == "A"
        assert decision_b.value == "A"  # agreement: the earlier decision sticks

    def test_decision_delay_adds_latency(self):
        sim, network, configuration, servers, clients = build_system(latency=None)
        proposer = PaxosProposer(clients[0], configuration,
                                 instance=configuration.cfg_id, extra_decision_delay=50.0)
        handle = clients[0].spawn(proposer.propose("X"))
        sim.run_until_complete(handle)
        assert sim.now >= 50.0

    def test_tolerates_minority_acceptor_crashes(self):
        sim, network, configuration, servers, clients = build_system(num_servers=5)
        servers[0].crash()
        servers[1].crash()
        proposer = PaxosProposer(clients[0], configuration, instance=configuration.cfg_id)
        decision = sim.run_until_complete(clients[0].spawn(proposer.propose("survive")))
        assert decision.value == "survive"


class TestConcurrentProposers:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_agreement_under_contention(self, seed):
        sim, network, configuration, servers, clients = build_system(
            num_clients=3, seed=seed)
        handles = []
        for index, client in enumerate(clients):
            proposer = PaxosProposer(client, configuration, instance=configuration.cfg_id)
            handles.append(client.spawn(proposer.propose(f"value-{index}")))
        sim.run()
        decisions = [h.result().value for h in handles]
        # Agreement: every proposer learns the same decision.
        assert len(set(decisions)) == 1
        # Validity: the decision is one of the proposed values.
        assert decisions[0] in {"value-0", "value-1", "value-2"}

    def test_independent_instances_decide_independently(self):
        sim, network, configuration, servers, clients = build_system(num_clients=2)
        other_instance = config_id(99)
        p0 = PaxosProposer(clients[0], configuration, instance=configuration.cfg_id)
        p1 = PaxosProposer(clients[1], configuration, instance=other_instance)
        h0 = clients[0].spawn(p0.propose("for-instance-0"))
        h1 = clients[1].spawn(p1.propose("for-instance-99"))
        sim.run()
        assert h0.result().value == "for-instance-0"
        assert h1.result().value == "for-instance-99"
