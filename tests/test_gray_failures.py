"""Gray failures: stochastic chaos, resource governors, retry/backoff.

Covers the continuous-degradation machinery end to end:

* the :class:`~repro.chaos.schedule.Stochastic` schedule primitive (seeded
  Bernoulli gates, the rate-0.0 no-op guarantee, rate quantization);
* resource-exhaustion faults (``DiskFull`` / ``MemoryPressure`` /
  ``QueueExhaustion``) and the server-side admission governor, including the
  explicit NACK path and quorum fail-fast;
* client retry/backoff (budget exhaustion, seeded-deterministic jitter,
  idempotent re-broadcast under NACKs);
* the bounded chaos event log;
* the ``fault_rate`` sweep axis and its inert-axis guard.
"""

from __future__ import annotations

import dataclasses
import random
from types import SimpleNamespace

import pytest

from repro.chaos import (
    ChaosEngine,
    CpuPressure,
    DiskFull,
    Drop,
    During,
    MemoryPressure,
    QueueExhaustion,
    Schedule,
    Stochastic,
)
from repro.chaos.engine import LOG_RECENT, RATE_RESOLUTION
from repro.chaos.resources import queue_limit_rule
from repro.common.errors import QuorumRefusedError, RetriesExhaustedError
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.sim.process import RetryPolicy
from repro.spec.linearizability import check_linearizability
from repro.workloads.scenarios import (
    get_scenario,
    run_scenario_instance,
    scenario_names,
)

GRAY_SCENARIOS = ("abd_gray_degradation", "treas_gray_degradation",
                  "ldr_gray_degradation")


def abd_deployment(seed: int = 0, retry: RetryPolicy = None) -> AresDeployment:
    return AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd", num_writers=1, num_readers=1,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        retry=retry))


class TestStochasticSchedule:
    def test_entries_are_validated(self):
        with pytest.raises(ValueError):
            Stochastic(-1.0, 5.0, Drop(1.0), rate=0.1)
        with pytest.raises(ValueError):
            Stochastic(5.0, 5.0, Drop(1.0), rate=0.1)  # empty window
        with pytest.raises(ValueError):
            Stochastic(0.0, 5.0, rate=0.1)  # no faults
        with pytest.raises(ValueError):
            Stochastic(0.0, 5.0, Drop(1.0), rate=1.5)
        with pytest.raises(ValueError):
            Stochastic(0.0, 5.0, Drop(1.0), rate=-0.1)

    def test_schedule_accepts_stochastic_entries(self):
        schedule = Schedule([Stochastic(2, 50, Drop(1.0), rate=0.25)])
        assert "stochastic [2, 50)" in schedule.describe()
        assert "rate=0.25" in schedule.describe()
        with pytest.raises(TypeError):
            Schedule([Drop(1.0)])  # bare fault still rejected

    def test_rate_zero_arms_nothing(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([Stochastic(1, 50, Drop(1.0), rate=0.0)]))
        deployment.sim.run_until(10)
        assert not engine.active
        assert not engine.gates
        assert engine.log_total == 0

    def test_rate_zero_run_is_byte_identical_to_no_background(self):
        for name in GRAY_SCENARIOS:
            base = get_scenario(name)
            zero = dataclasses.replace(base, fault_rate=0.0)
            none = dataclasses.replace(base, background=None)
            assert (run_scenario_instance(zero, seed=1).signature()
                    == run_scenario_instance(none, seed=1).signature()), name

    def test_same_seed_same_rate_is_deterministic(self):
        for name in GRAY_SCENARIOS:
            scenario = get_scenario(name)
            assert scenario.fault_rate > 0.0
            first = run_scenario_instance(scenario, seed=7)
            second = run_scenario_instance(scenario, seed=7)
            assert first.signature() == second.signature(), name

    def test_rates_in_one_quantization_step_are_identical(self):
        # The gate coin stream does not depend on the rate, so two rates
        # that quantize to the same step run byte-identically -- the
        # property that makes fault_rate a bisectable step-function axis.
        base = get_scenario("abd_gray_degradation")
        step = RATE_RESOLUTION
        lo = dataclasses.replace(base, fault_rate=0.9 * step)
        hi = dataclasses.replace(base, fault_rate=1.1 * step)
        other = dataclasses.replace(base, fault_rate=2.0 * step)
        assert (run_scenario_instance(lo, seed=0).signature()
                == run_scenario_instance(hi, seed=0).signature())
        assert (run_scenario_instance(lo, seed=0).signature()
                != run_scenario_instance(other, seed=0).signature())

    def test_gates_do_not_perturb_scripted_faults(self):
        # A Stochastic background draws from per-gate RNG streams, never
        # from the engine RNG that scripted probabilistic faults consume.
        def run(with_background: bool):
            deployment = abd_deployment()
            engine = ChaosEngine(deployment.network, seed=0)
            entries = [During(1, 80, Drop(0.3, "s4"))]
            if with_background:
                entries.append(Stochastic(1, 80, Drop(1.0, "s3"), rate=0.5))
            engine.inject(Schedule(entries))
            deployment.write(Value.from_text("x", label="v1"))
            return engine

        quiet = run(False)
        noisy = run(True)
        quiet_scripted = [e for e in quiet.log if "s4" in e[1]]
        noisy_scripted = [e for e in noisy.log if "s4" in e[1]]
        assert quiet_scripted == noisy_scripted


class TestBoundedLog:
    def test_ring_keeps_recent_entries_and_counts_drops(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        for i in range(LOG_RECENT + 40):
            engine.record(f"entry-{i}")
        assert len(engine.log) == LOG_RECENT
        assert engine.log_total == LOG_RECENT + 40
        assert engine.log_dropped == 40
        assert engine.log[-1][1] == f"entry-{LOG_RECENT + 39}"
        assert engine.log[0][1] == "entry-40"

    def test_describe_log_marks_elision_only_when_dropped(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.record("only")
        assert "elided" not in engine.describe_log()
        for i in range(LOG_RECENT + 5):
            engine.record(f"flood-{i}")
        text = engine.describe_log()
        assert "6 earlier entries elided" in text  # "only" + flood-0..4
        assert f"{LOG_RECENT + 6} recorded" in text

    def test_log_signature_is_plain_tuple_until_overflow(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.record("a")
        engine.record("b")
        assert engine.log_signature() == tuple(engine.log)
        for i in range(LOG_RECENT):
            engine.record(f"flood-{i}")
        signature = engine.log_signature()
        assert "elided" in signature[0][1]
        assert signature[1:] == tuple(engine.log)


class TestResourceFaults:
    def test_disk_full_nacks_with_enospc_reason(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(0.0001, 100, DiskFull())]))
        with pytest.raises(QuorumRefusedError):
            deployment.write(Value.from_text("spill", label="v1"))
        assert "[Errno 28] No space left on device" in engine.describe_log()
        # Tag queries carry no data, so the read control plane still works
        # (it serves the initial bottom value).
        deployment.read()

    def test_memory_pressure_bounds_stored_bytes(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        value = Value.from_text("x" * 64, label="v1")
        deployment.write(value)
        # Budget admits another value the size of v1 (so read write-backs
        # keep working) but not the oversized v2.
        budget = 2 * value.size + 8
        engine.inject(Schedule([
            During(deployment.sim.now + 1, 10_000, MemoryPressure(budget)),
        ]))
        with pytest.raises(QuorumRefusedError):
            deployment.write(Value.from_text("y" * 256, label="v2"))
        for server in deployment.servers.values():
            assert server.storage_data_bytes() <= budget
        assert deployment.read().label == "v1"

    def test_queue_limit_rule_is_a_deterministic_leaky_queue(self):
        rule = queue_limit_rule(limit=2, service_time=10.0)
        server = SimpleNamespace()
        data = SimpleNamespace(request_id=1, data_bytes=64)
        control = SimpleNamespace(request_id=2, data_bytes=0)
        assert rule(server, data, 0.0) is None
        assert rule(server, data, 1.0) is None
        assert "queue full" in rule(server, data, 2.0)
        assert rule(server, control, 2.0) is None  # control plane bypasses
        # The first slot frees at t=10, so a later arrival is admitted.
        assert rule(server, data, 10.5) is None

    def test_queue_exhaustion_sheds_under_concurrency(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([
            During(0.0001, 1_000, QueueExhaustion(1, 50.0)),
        ]))
        # Three concurrent writes: with one queue slot per server, only
        # the first data-plane WRITE to arrive is admitted.
        ops = [deployment.spawn_write(Value.from_text(text, label=text))
               for text in ("a", "b", "c")]
        deployment.sim.run_until(900)
        shed = sum(s.governor.shed for s in deployment.servers.values()
                   if s.governor is not None)
        assert shed > 0
        assert any(op.done() and op.exception() is not None for op in ops)

    def test_governor_detaches_when_window_closes(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(1, 20, DiskFull("s0"))]))
        deployment.sim.run_until(10)
        governor = deployment.servers[engine.resolve("s0")].governor
        assert governor is not None and governor.rules
        deployment.sim.run_until(30)
        assert not governor.rules
        deployment.write(Value.from_text("healed", label="v1"))
        assert deployment.read().label == "v1"

    def test_cpu_pressure_inflates_only_pressured_server_delays(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(0.0001, 10_000,
                                       CpuPressure("s0", factor=50.0))]))
        deployment.write(Value.from_text("slow", label="v1"))
        # The write completes without waiting for the pressured server: a
        # majority of un-pressured servers acks first.
        assert deployment.sim.now < 50


class TestRetryBackoff:
    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.5)

    def test_backoff_is_exponential_with_seeded_jitter(self):
        policy = RetryPolicy(attempts=4, base_delay=2.0, multiplier=2.0,
                             jitter=0.5)
        first = [policy.backoff(n, random.Random("gray")) for n in (1, 2, 3)]
        second = [policy.backoff(n, random.Random("gray")) for n in (1, 2, 3)]
        assert first == second  # same seed, same jitter
        for attempt, delay in enumerate(first, start=1):
            base = 2.0 * 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.5

    def test_refused_quorum_is_retried_until_pressure_heals(self):
        retry = RetryPolicy(attempts=6, timeout=30.0, base_delay=4.0,
                            multiplier=2.0, jitter=0.5)
        deployment = abd_deployment(retry=retry)
        engine = ChaosEngine(deployment.network)
        # Three of five servers refuse writes: the 3-of-5 quorum is
        # unreachable until the window closes, then a retry lands.
        engine.inject(Schedule([
            During(0.0001, 30, DiskFull("s0", "s1", "s2")),
        ]))
        deployment.write(Value.from_text("persistent", label="v1"))
        assert deployment.sim.now > 30
        writer = deployment.writers[0]
        assert writer.retries > 0
        assert writer.nacks_received > 0
        assert deployment.read().label == "v1"
        assert check_linearizability(deployment.history).ok

    def test_nacked_writes_never_duplicate_tag_applications(self):
        retry = RetryPolicy(attempts=6, timeout=30.0, base_delay=4.0,
                            multiplier=2.0, jitter=0.5)
        deployment = abd_deployment(retry=retry)
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([
            During(0.0001, 30, DiskFull("s3", "s4")),
            During(0.0001, 30, Drop(0.4)),
        ]))
        tag = deployment.write(Value.from_text("once", label="v1"))
        # Re-broadcast attempts may deliver the same WRITE to a server more
        # than once; the tag comparison makes the apply idempotent, so
        # every server converges to exactly the written tag.
        deployment.sim.run_until(deployment.sim.now + 200)
        cfg = deployment.initial_configuration.cfg_id
        tags = {server.dap_states[cfg].tag
                for server in deployment.servers.values()
                if cfg in server.dap_states}
        assert tags == {tag}
        assert deployment.read().label == "v1"
        assert check_linearizability(deployment.history).ok

    def test_exhausted_budget_raises_clean_operation_error(self):
        retry = RetryPolicy(attempts=2, timeout=10.0, base_delay=1.0,
                            multiplier=2.0, jitter=0.0)
        deployment = abd_deployment(retry=retry)
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(0.0001, 10_000, DiskFull())]))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            deployment.write(Value.from_text("doomed", label="v1"))
        assert "after 2 attempts" in str(excinfo.value)

    def test_retry_disabled_by_default(self):
        deployment = abd_deployment()
        for client in [*deployment.writers, *deployment.readers,
                       *deployment.reconfigurers]:
            assert client.retry_policy is None

    def test_reconfigurers_never_get_retry(self):
        deployment = abd_deployment(retry=RetryPolicy())
        assert all(c.retry_policy is not None
                   for c in [*deployment.writers, *deployment.readers])
        assert all(r.retry_policy is None for r in deployment.reconfigurers)


class TestFaultRateSweepAxis:
    def test_gray_scenarios_are_registered(self):
        for name in GRAY_SCENARIOS:
            assert name in scenario_names()
            scenario = get_scenario(name)
            assert scenario.background is not None
            assert "gray" in scenario.faults

    def test_fault_rate_is_a_grid_axis(self):
        from repro.sweep.grid import parse_grid
        grid = parse_grid("scenarios=abd_gray_degradation;seeds=0;"
                          "fault_rate=0.0,0.1")
        cells = grid.expand()
        assert [dict(c.params)["fault_rate"] for c in cells] == [0.0, 0.1]

    def test_fault_rate_axis_is_rejected_on_quiet_scenarios(self):
        from repro.sweep.engine import execute_run
        from repro.sweep.grid import RunSpec
        record = execute_run(RunSpec(scenario="abd_crash_minority", seed=0,
                                     params=(("fault_rate", 0.1),)))
        assert not record.ok
        assert "no stochastic background" in record.failure

    def test_fault_rate_override_degrades_monotonically(self):
        from repro.sweep.engine import execute_run
        from repro.sweep.grid import RunSpec

        def ok_at(rate: float) -> bool:
            return execute_run(RunSpec(scenario="abd_gray_degradation",
                                       seed=0,
                                       params=(("fault_rate", rate),))).ok

        assert ok_at(0.0)
        assert not ok_at(0.45)

    def test_fault_rate_is_a_valid_bisect_axis(self):
        from repro.sweep.adaptive import AdaptiveCampaign
        campaign = AdaptiveCampaign(scenario="abd_gray_degradation",
                                    axis="fault_rate", lo=0.0, hi=0.5)
        assert campaign.lo == 0.0 and campaign.hi == 0.5
