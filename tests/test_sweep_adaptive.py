"""Adaptive frontier search: bisection, monotonicity checks, CLI mode.

Synthetic oracles (monkeypatched in place of :func:`execute_run`) pin the
bisection logic exactly; one real-scenario campaign proves the canonical
``max_events`` axis yields a genuine livelock frontier.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep.adaptive import AdaptiveCampaign, bisect_axis
from repro.sweep.__main__ import main as sweep_main
from repro.sweep.result import RunRecord


class TestBisectAxis:
    def test_min_passing_frontier(self):
        outcome = bisect_axis(lambda v: v >= 137, 0, 1000)
        assert outcome.direction == "min_passing"
        assert outcome.frontier == 137

    def test_max_passing_frontier(self):
        outcome = bisect_axis(lambda v: v <= 137, 0, 1000)
        assert outcome.direction == "max_passing"
        assert outcome.frontier == 137

    def test_all_pass_and_all_fail(self):
        assert bisect_axis(lambda v: True, 0, 10).direction == "all_pass"
        assert bisect_axis(lambda v: True, 0, 10).frontier == 0
        outcome = bisect_axis(lambda v: False, 0, 10)
        assert outcome.direction == "all_fail" and outcome.frontier is None

    def test_probe_count_is_logarithmic(self):
        outcome = bisect_axis(lambda v: v >= 500_000, 0, 1_000_000)
        # 2 endpoints + ~log2(10^6) midpoints, nowhere near a linear scan.
        assert len(outcome.probed) <= 25

    def test_float_axis(self):
        outcome = bisect_axis(lambda v: v >= 0.37, 0.0, 1.0, integer=False)
        assert outcome.direction == "min_passing"
        assert abs(outcome.frontier - 0.37) < 1.0 / 128.0

    def test_adjacent_bracket(self):
        outcome = bisect_axis(lambda v: v >= 6, 5, 6)
        assert outcome.frontier == 6

    def test_bad_bracket_rejected(self):
        with pytest.raises(ValueError, match="lo < hi"):
            bisect_axis(lambda v: True, 5, 5)


def _synthetic(monkeypatch, pred):
    """Replace the cell executor with a synthetic pass/fail oracle."""

    def fake(spec, streaming=False):
        value = dict(spec.params)["max_events"]
        ok = pred(value, spec.seed)
        return RunRecord(
            scenario=spec.scenario, seed=spec.seed, params=spec.params,
            ok=ok, failure=None if ok else "synthetic failure",
            signature_hash="synthetic", wall_clock_sec=0.0, history_ops=0,
            events=0, messages=0, checker_method="synthetic")

    monkeypatch.setattr("repro.sweep.engine.execute_run", fake)


class TestAdaptiveCampaign:
    def test_finds_min_passing_frontier(self, monkeypatch):
        _synthetic(monkeypatch, lambda v, seed: v >= 137)
        frontier = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                    lo=0, hi=1000).run()
        assert frontier.direction == "min_passing"
        assert frontier.frontier == 137
        assert frontier.monotonic and not frontier.violations

    def test_worst_seed_defines_the_frontier(self, monkeypatch):
        # A value passes only if EVERY seed passes, so the reported
        # frontier belongs to the most demanding seed.
        _synthetic(monkeypatch, lambda v, seed: v >= 100 + seed * 50)
        frontier = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                    lo=0, hi=1000, seeds=(0, 1)).run()
        assert frontier.frontier == 150

    def test_non_monotone_oracle_is_reported(self, monkeypatch):
        # Pass-iff-even is maximally non-monotone; the seed-deterministic
        # verification probes must expose it rather than bless a frontier.
        _synthetic(monkeypatch, lambda v, seed: v % 2 == 0)
        frontier = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                    lo=0, hi=999, verify_probes=4).run()
        assert not frontier.monotonic
        assert frontier.violations

    def test_probes_are_cached_per_value(self, monkeypatch):
        calls = []

        def fake(spec, streaming=False):
            calls.append(dict(spec.params)["max_events"])
            return RunRecord(
                scenario=spec.scenario, seed=spec.seed, params=spec.params,
                ok=True, failure=None, signature_hash="synthetic",
                wall_clock_sec=0.0, history_ops=0, events=0, messages=0,
                checker_method="synthetic")

        monkeypatch.setattr("repro.sweep.engine.execute_run", fake)
        AdaptiveCampaign(scenario="synthetic", axis="max_events",
                         lo=0, hi=1000).run()
        assert len(calls) == len(set(calls))

    def test_progress_sees_every_probe(self, monkeypatch):
        _synthetic(monkeypatch, lambda v, seed: v >= 137)
        seen = []
        frontier = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                    lo=0, hi=1000).run(progress=seen.append)
        assert len(seen) == len(frontier.records)

    def test_rerun_probes_identically(self, monkeypatch):
        _synthetic(monkeypatch, lambda v, seed: v >= 137)
        campaign = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                    lo=0, hi=1000)
        first = campaign.run()
        second = campaign.run()
        assert [r.cell_id for r in first.records] == \
            [r.cell_id for r in second.records]

    def test_to_json_is_serialisable(self, monkeypatch):
        _synthetic(monkeypatch, lambda v, seed: v >= 137)
        report = AdaptiveCampaign(scenario="synthetic", axis="max_events",
                                  lo=0, hi=1000).run().to_json()
        assert report["frontier"] == 137 and report["monotonic"]
        json.dumps(report)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown bisection axis"):
            AdaptiveCampaign(scenario="s", axis="bogus", lo=0, hi=10)
        with pytest.raises(ValueError, match="lo < hi"):
            AdaptiveCampaign(scenario="s", axis="max_events", lo=10, hi=10)
        with pytest.raises(ValueError, match="fixed parameter"):
            AdaptiveCampaign(scenario="s", axis="max_events", lo=0, hi=10,
                             base_params=(("max_events", 5),))

    def test_real_event_budget_frontier(self):
        # The canonical axis on a real scenario: below the frontier the
        # simulator's event budget exhausts (livelock failure), above it
        # the run completes and verifies.
        frontier = AdaptiveCampaign(scenario="abd_crash_minority",
                                    axis="max_events", lo=200, hi=60000,
                                    seeds=(0,)).run()
        assert frontier.direction == "min_passing"
        assert frontier.monotonic, frontier.violations
        assert 200 < frontier.frontier < 60000
        passing = [r for r in frontier.records if r.ok]
        assert passing and all(len(r.signature_hash) == 64 for r in passing)


class TestCliBisect:
    def test_cli_bisect_writes_frontier_report(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        code = sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0",
                           "--bisect", "max_events=200..60000",
                           "--quiet", "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "frontier-report"
        frontier = report["campaigns"][0]
        assert frontier["direction"] == "min_passing"
        assert frontier["monotonic"]
        assert "frontier" in capsys.readouterr().out

    def test_cli_bisect_rejects_bad_axis(self, capsys):
        with pytest.raises(SystemExit):
            sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0",
                        "--bisect", "bogus=1..2"])

    def test_cli_bisect_rejects_campaign_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0",
                        "--bisect", "max_events=200..400",
                        "--checkpoint", str(tmp_path / "x.ckpt")])

    def test_cli_bisect_rejects_multi_value_axes(self):
        with pytest.raises(SystemExit):
            sweep_main(["--grid",
                        "scenarios=abd_crash_minority;seeds=0;value_size=1,2",
                        "--bisect", "max_events=200..400"])
