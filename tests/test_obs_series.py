"""Property tests for the metric series primitives in ``repro.obs.series``.

The observability plane must never become a second source of
nondeterminism or unbounded memory: histograms and counters keep at most
``max_windows`` closed windows (coarsening doubles the width instead of
growing the list), the whole-run reservoir is bounded and driven by a
private per-series RNG, and the quantile helper is exact on its edge
cases (empty, single sample, all-equal).
"""

from __future__ import annotations

import random

import pytest

from repro.obs.series import (DEFAULT_RESERVOIR, Counter, Gauge,
                              WindowedHistogram, nearest_rank)


# ---------------------------------------------------------------- quantiles
def test_nearest_rank_empty_is_zero():
    assert nearest_rank([], 0.5) == 0.0
    assert nearest_rank([], 0.99) == 0.0


def test_nearest_rank_single_sample_is_that_sample():
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert nearest_rank([7.25], q) == 7.25


def test_nearest_rank_all_equal_is_the_value():
    ordered = [3.0] * 17
    for q in (0.01, 0.5, 0.99):
        assert nearest_rank(ordered, q) == 3.0


def test_nearest_rank_is_exact_on_a_known_sample():
    ordered = [float(v) for v in range(1, 101)]  # 1..100
    assert nearest_rank(ordered, 0.50) == 50.0
    assert nearest_rank(ordered, 0.95) == 95.0
    assert nearest_rank(ordered, 0.99) == 99.0
    assert nearest_rank(ordered, 1.0) == 100.0


# ----------------------------------------------------------- bounded memory
def test_histogram_closed_windows_stay_bounded():
    hist = WindowedHistogram("lat", width=1.0, max_windows=8)
    rng = random.Random(42)
    for step in range(5000):
        hist.observe(float(step) * 0.75, rng.random() * 10.0)
    assert len(hist._done) <= 8
    assert len(hist._reservoir) <= DEFAULT_RESERVOIR
    snapshot = hist.snapshot()
    assert len(snapshot["windows"]) <= 8 + 1  # closed windows + live window
    # Coarsening widened the windows instead of growing the list.
    assert snapshot["width"] > 1.0


def test_counter_windows_stay_bounded_and_total_is_exact():
    counter = Counter("events", width=1.0, max_windows=4)
    for step in range(1000):
        counter.inc(float(step), 3)
    assert counter.total == 3000
    assert len(counter._done) <= 4
    assert sum(w[1] for w in counter.snapshot()["windows"]) == 3000


def test_gauge_merge_keeps_latest_value_and_peak():
    gauge = Gauge("open", width=1.0, max_windows=2)
    gauge.set(0.5, 10.0)
    gauge.set(1.5, 2.0)
    gauge.set(2.5, 5.0)
    gauge.set(9.5, 1.0)  # forces closes + coarsening merges
    assert gauge.last == 1.0
    assert gauge.peak == 10.0
    merged = gauge.snapshot()["windows"]
    assert len(merged) <= 3
    assert max(w[2] for w in merged) == 10.0


def test_coarsening_preserves_count_and_count_weighted_mean():
    hist = WindowedHistogram("lat", width=1.0, max_windows=4)
    values = [(float(t), float(t % 7)) for t in range(64)]
    for now, value in values:
        hist.observe(now, value)
    snapshot = hist.snapshot()
    assert snapshot["count"] == len(values)
    total = sum(w[1] * w[2] for w in snapshot["windows"])
    assert total == pytest.approx(sum(v for _, v in values))
    assert max(w[3] for w in snapshot["windows"]) == max(v for _, v in values)


# ------------------------------------------------------------- determinism
def _feed(hist: WindowedHistogram, seed: int) -> dict:
    rng = random.Random(seed)
    for step in range(4000):
        hist.observe(step * 0.1, rng.random() * 100.0)
    return hist.snapshot()


def test_reservoir_is_deterministic_for_same_name_and_stream():
    a = _feed(WindowedHistogram("read_latency", width=5.0), seed=7)
    b = _feed(WindowedHistogram("read_latency", width=5.0), seed=7)
    assert a == b


def test_reservoir_rng_is_private_to_the_series():
    """Observing must never draw from (or perturb) the global RNG streams."""
    random.seed(123)
    before = random.random()
    random.seed(123)
    _feed(WindowedHistogram("read_latency", width=5.0), seed=7)
    after = random.random()
    assert before == after


def test_quantiles_on_empty_single_and_all_equal_histograms():
    empty = WindowedHistogram("empty")
    assert empty.quantile(0.99) == 0.0
    assert empty.snapshot()["count"] == 0

    single = WindowedHistogram("single")
    single.observe(1.0, 42.5)
    assert single.quantile(0.5) == 42.5
    assert single.quantile(0.99) == 42.5

    flat = WindowedHistogram("flat")
    for step in range(100):
        flat.observe(float(step), 9.0)
    assert flat.quantile(0.01) == 9.0
    assert flat.quantile(0.99) == 9.0
    assert flat.snapshot()["mean"] == pytest.approx(9.0)
