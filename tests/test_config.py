"""Unit tests for quorum systems, configurations and configuration sequences."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.ids import config_id, server_id
from repro.config.configuration import Configuration, DapKind
from repro.config.quorums import MajorityQuorums, ThresholdQuorums
from repro.config.sequence import ConfigRecord, ConfigSequence, Status


def servers(count: int, start: int = 0):
    return [server_id(start + i) for i in range(count)]


class TestMajorityQuorums:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (9, 5)])
    def test_quorum_size(self, n, expected):
        assert MajorityQuorums(servers(n)).quorum_size == expected

    def test_is_quorum(self):
        system = MajorityQuorums(servers(5))
        assert system.is_quorum(servers(3))
        assert not system.is_quorum(servers(2))

    def test_foreign_servers_do_not_count(self):
        system = MajorityQuorums(servers(5))
        outsiders = servers(3, start=100)
        assert not system.is_quorum(outsiders)

    @given(st.integers(1, 30))
    def test_any_two_majorities_intersect(self, n):
        system = MajorityQuorums(servers(n))
        assert system.intersection_lower_bound() >= 1

    def test_duplicate_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityQuorums([server_id(0), server_id(0)])

    def test_max_crash_failures(self):
        assert MajorityQuorums(servers(5)).max_crash_failures() == 2
        assert MajorityQuorums(servers(4)).max_crash_failures() == 1


class TestThresholdQuorums:
    @pytest.mark.parametrize("n,k,expected", [(3, 2, 3), (5, 3, 4), (6, 4, 5), (9, 6, 8), (11, 7, 9)])
    def test_treas_threshold(self, n, k, expected):
        system = ThresholdQuorums.for_treas(servers(n), k)
        assert system.quorum_size == expected

    @given(st.integers(3, 30))
    def test_treas_quorums_intersect_in_k_servers(self, n):
        k = max(1, (2 * n) // 3)
        system = ThresholdQuorums.for_treas(servers(n), k)
        # Two quorums of size ceil((n+k)/2) intersect in >= k servers.
        assert system.intersection_lower_bound() >= k

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            ThresholdQuorums(servers(3), 0)
        with pytest.raises(ConfigurationError):
            ThresholdQuorums(servers(3), 4)


class TestConfigurationFactories:
    def test_abd_configuration(self):
        cfg = Configuration.abd(config_id(0), servers(5))
        assert cfg.dap is DapKind.ABD
        assert cfg.n == 5
        assert cfg.k == 1
        assert cfg.quorum_size == 3
        assert cfg.max_crash_failures() == 2

    def test_treas_configuration_defaults(self):
        cfg = Configuration.treas(config_id(0), servers(6))
        assert cfg.dap is DapKind.TREAS
        assert cfg.k == 4  # ceil(2n/3)
        assert cfg.quorum_size == 5  # ceil((n+k)/2)
        assert cfg.max_crash_failures() == 1

    def test_treas_explicit_k(self):
        cfg = Configuration.treas(config_id(0), servers(9), k=5, delta=3)
        assert cfg.k == 5
        assert cfg.delta == 3
        assert cfg.quorum_size == 7
        assert cfg.max_crash_failures() == 2

    def test_treas_liveness_constraint(self):
        # k must exceed n/3
        with pytest.raises(ConfigurationError):
            Configuration.treas(config_id(0), servers(9), k=3)
        Configuration.treas(config_id(0), servers(9), k=4)  # fine

    def test_treas_invalid_k(self):
        with pytest.raises(ConfigurationError):
            Configuration.treas(config_id(0), servers(4), k=5)

    def test_ldr_configuration(self):
        cfg = Configuration.ldr(config_id(0), servers(3), servers(5, start=3))
        assert cfg.dap is DapKind.LDR
        assert cfg.n == 8
        assert cfg.ldr_f == 2
        assert set(cfg.ldr_directories).isdisjoint(cfg.ldr_replicas)

    def test_ldr_overlapping_roles_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration.ldr(config_id(0), servers(3), servers(3))

    def test_ldr_f_too_large(self):
        with pytest.raises(ConfigurationError):
            Configuration.ldr(config_id(0), servers(3), servers(3, start=3), f=2)

    def test_code_server_count_must_match(self):
        from repro.erasure.rs import ReedSolomonCode
        from repro.config.quorums import MajorityQuorums as MQ

        with pytest.raises(ConfigurationError):
            Configuration(
                cfg_id=config_id(1), servers=tuple(servers(4)), dap=DapKind.TREAS,
                code=ReedSolomonCode(5, 3), quorums=MQ(servers(4)),
            )

    def test_empty_and_duplicate_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration.abd(config_id(0), [])
        with pytest.raises(ConfigurationError):
            Configuration.abd(config_id(0), [server_id(0), server_id(0)])

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration.treas(config_id(0), servers(6), delta=-1)

    def test_server_index(self):
        cfg = Configuration.treas(config_id(0), servers(5))
        assert cfg.server_index(server_id(3)) == 3
        with pytest.raises(ConfigurationError):
            cfg.server_index(server_id(42))

    def test_describe_mentions_parameters(self):
        cfg = Configuration.treas(config_id(7), servers(6), k=4, delta=2)
        text = cfg.describe()
        assert "c7" in text and "n=6" in text and "k=4" in text


class TestConfigSequence:
    def _initial(self):
        return Configuration.abd(config_id(0), servers(3))

    def test_initial_state(self):
        seq = ConfigSequence(self._initial())
        assert len(seq) == 1
        assert seq.mu == 0
        assert seq.nu == 0
        assert seq[0].status is Status.FINALIZED

    def test_append_and_finalize(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        index = seq.append(ConfigRecord(c1, Status.PENDING))
        assert index == 1
        assert seq.mu == 0 and seq.nu == 1
        seq.finalize(1)
        assert seq.mu == 1
        assert seq.last_finalized().cfg_id == config_id(1)

    def test_duplicate_configuration_rejected(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        seq.append(ConfigRecord(c1, Status.PENDING))
        with pytest.raises(ConfigurationError):
            seq.append(ConfigRecord(c1, Status.PENDING))

    def test_set_record_extends_or_upgrades(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        seq.set_record(1, ConfigRecord(c1, Status.PENDING))
        assert seq[1].status is Status.PENDING
        seq.set_record(1, ConfigRecord(c1, Status.FINALIZED))
        assert seq[1].status is Status.FINALIZED
        # A finalized entry is never downgraded back to pending.
        seq.set_record(1, ConfigRecord(c1, Status.PENDING))
        assert seq[1].status is Status.FINALIZED

    def test_set_record_uniqueness_violation(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        c_other = Configuration.abd(config_id(2), servers(3, start=9))
        seq.set_record(1, ConfigRecord(c1, Status.PENDING))
        with pytest.raises(ConfigurationError):
            seq.set_record(1, ConfigRecord(c_other, Status.PENDING))

    def test_set_record_gap_rejected(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        with pytest.raises(ConfigurationError):
            seq.set_record(5, ConfigRecord(c1, Status.PENDING))

    def test_prefix_order(self):
        seq_a = ConfigSequence(self._initial())
        seq_b = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        c2 = Configuration.abd(config_id(2), servers(3, start=9))
        seq_a.append(ConfigRecord(c1, Status.PENDING))
        seq_b.append(ConfigRecord(c1, Status.FINALIZED))
        seq_b.append(ConfigRecord(c2, Status.PENDING))
        assert seq_a.is_prefix_of(seq_b)
        assert not seq_b.is_prefix_of(seq_a)

    def test_pending_suffix(self):
        seq = ConfigSequence(self._initial())
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        c2 = Configuration.abd(config_id(2), servers(3, start=9))
        seq.append(ConfigRecord(c1, Status.FINALIZED))
        seq.append(ConfigRecord(c2, Status.PENDING))
        suffix = seq.pending_suffix()
        assert [r.config.cfg_id for r in suffix] == [config_id(1), config_id(2)]

    def test_copy_is_independent(self):
        seq = ConfigSequence(self._initial())
        clone = seq.copy()
        c1 = Configuration.treas(config_id(1), servers(6, start=3))
        clone.append(ConfigRecord(c1, Status.PENDING))
        assert len(seq) == 1
        assert len(clone) == 2

    def test_describe(self):
        seq = ConfigSequence(self._initial())
        assert "c0" in seq.describe()


class TestConfigSequencePruning:
    """Retirement-side sequence semantics: prune, jump_to, and the µ cache."""

    def _initial(self):
        return Configuration.abd(config_id(0), servers(3))

    def _cfg(self, index: int) -> Configuration:
        return Configuration.abd(config_id(index), servers(3, start=3 * index))

    def _chain(self, length: int) -> ConfigSequence:
        seq = ConfigSequence(self._initial())
        for index in range(1, length):
            seq.append(ConfigRecord(self._cfg(index), Status.FINALIZED))
        return seq

    def test_prune_keeps_absolute_indices(self):
        seq = self._chain(4)
        seq.append(ConfigRecord(self._cfg(4), Status.PENDING))
        assert (seq.mu, seq.nu) == (3, 4)
        dropped = seq.prune(3)
        assert dropped == 3
        assert seq.base == 3
        # µ/ν and index arithmetic keep their paper meaning after the prune.
        assert (seq.mu, seq.nu) == (3, 4)
        assert len(seq) == 5
        assert seq.config_at(3).cfg_id == config_id(3)
        assert seq.last_finalized().cfg_id == config_id(3)
        assert [r.config.cfg_id for r in seq.pending_suffix()] == [
            config_id(3), config_id(4)]
        assert "3 pruned" in seq.describe()

    def test_pruned_index_access_raises(self):
        seq = self._chain(3)
        seq.prune(2)
        with pytest.raises(ConfigurationError):
            seq.config_at(0)
        with pytest.raises(ConfigurationError):
            seq.set_record(1, ConfigRecord(self._cfg(1), Status.FINALIZED))

    def test_prune_beyond_mu_rejected(self):
        seq = self._chain(2)
        seq.append(ConfigRecord(self._cfg(2), Status.PENDING))
        with pytest.raises(ConfigurationError):
            seq.prune(2)

    def test_prune_is_idempotent(self):
        seq = self._chain(3)
        assert seq.prune(2) == 2
        assert seq.prune(2) == 0
        assert seq.prune(1) == 0  # already behind the base

    def test_jump_to_rebases_past_unknown_entries(self):
        seq = ConfigSequence(self._initial())
        target = self._cfg(5)
        seq.jump_to(5, ConfigRecord(target, Status.FINALIZED))
        assert (seq.base, seq.mu, seq.nu) == (5, 5, 5)
        assert seq.last_finalized().cfg_id == config_id(5)
        # The walk can continue normally past the jump target.
        seq.set_record(6, ConfigRecord(self._cfg(6), Status.PENDING))
        assert seq.nu == 6

    def test_jump_to_inside_window_degrades_to_set_record(self):
        seq = self._chain(3)
        seq.jump_to(2, ConfigRecord(self._cfg(2), Status.FINALIZED))
        assert seq.base == 0 and len(seq) == 3
        with pytest.raises(ConfigurationError):
            # Uniqueness still enforced on the degraded path.
            seq.jump_to(2, ConfigRecord(self._cfg(9), Status.FINALIZED))

    def test_jump_to_pending_record_rejected(self):
        seq = ConfigSequence(self._initial())
        with pytest.raises(ConfigurationError):
            seq.jump_to(3, ConfigRecord(self._cfg(3), Status.PENDING))

    def test_records_before_and_index_of(self):
        seq = self._chain(4)
        seq.prune(2)
        assert [(i, r.config.cfg_id) for i, r in seq.records_before(3)] == [
            (2, config_id(2))]
        assert seq.index_of(config_id(3)) == 3
        assert seq.index_of(config_id(0)) is None  # pruned
        assert seq.index_of(config_id(99)) is None

    def test_copy_preserves_base_and_mu(self):
        seq = self._chain(3)
        seq.append(ConfigRecord(self._cfg(3), Status.PENDING))
        seq.prune(2)
        clone = seq.copy()
        assert (clone.base, clone.mu, clone.nu) == (seq.base, seq.mu, seq.nu)
        assert clone.is_prefix_of(seq) and seq.is_prefix_of(clone)

    def test_prefix_order_across_different_bases(self):
        long = self._chain(4)
        short = self._chain(3)
        long.prune(3)
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)

    @given(st.lists(st.sampled_from(["append_p", "append_f", "finalize",
                                     "prune", "jump"]),
                    max_size=40))
    def test_mu_cache_matches_backward_scan(self, ops):
        """The cached µ equals the reference scan after any op interleaving."""
        seq = ConfigSequence(self._initial())
        next_index = 1
        for op in ops:
            if op == "append_p":
                seq.append(ConfigRecord(self._cfg(next_index), Status.PENDING))
                next_index += 1
            elif op == "append_f":
                seq.append(ConfigRecord(self._cfg(next_index), Status.FINALIZED))
                next_index += 1
            elif op == "finalize":
                # Finalize the first pending entry, if any (upgrade via
                # set_record half the time to cover both mutators).
                for index in range(seq.base, seq.nu + 1):
                    if seq[index].status is Status.PENDING:
                        if index % 2:
                            seq.finalize(index)
                        else:
                            seq.set_record(index, seq[index].finalized())
                        break
            elif op == "prune":
                seq.prune(seq.mu)
            elif op == "jump":
                target = max(seq.nu + 2, next_index)
                seq.jump_to(target,
                            ConfigRecord(self._cfg(target), Status.FINALIZED))
                next_index = target + 1
            assert seq.mu == seq.mu_scan(), f"after {op}: {seq.describe()}"
