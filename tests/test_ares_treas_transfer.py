"""Tests for the ARES-TREAS direct state transfer (Section 5, Algorithms 8 and 9)."""

from __future__ import annotations

import pytest

from repro.common.ids import server_id
from repro.common.values import Value
from repro.core.ares_treas import (
    FWD_CODE_ELEM,
    MD_BCAST_REQ_FW,
    TRANSFER_ACK,
    TreasTransferServerState,
    transfer_dap_state_factory,
)
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.spec.linearizability import check_linearizability


def make_deployment(direct=True, **overrides):
    defaults = dict(num_servers=6, initial_dap="treas", delta=4, num_writers=2,
                    num_readers=2, num_reconfigurers=2, seed=0,
                    latency=UniformLatency(1.0, 2.0),
                    direct_state_transfer=direct)
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestFactory:
    def test_treas_configurations_get_transfer_state(self):
        dep = make_deployment()
        cfg = dep.initial_configuration
        state = transfer_dap_state_factory(cfg, cfg.servers[0])
        assert isinstance(state, TreasTransferServerState)

    def test_abd_configurations_fall_back_to_plain_state(self):
        dep = make_deployment()
        abd_cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        state = transfer_dap_state_factory(abd_cfg, abd_cfg.servers[0])
        assert not isinstance(state, TreasTransferServerState)


class TestDirectTransfer:
    def test_value_is_available_in_new_configuration(self):
        dep = make_deployment()
        dep.write(Value.of_size(900, label="payload"), 0)
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=9, k=5)
        dep.reconfig(new_cfg, 0)
        assert dep.reconfigurers[0].direct_transfers == 1
        assert dep.read(0).label == "payload"
        # The new configuration's servers re-encoded the value with the new
        # code parameters: each fragment is |v|/k' = 180 bytes.
        per_server = [
            dep.servers[pid].dap_states[new_cfg.cfg_id].storage_data_bytes()
            for pid in new_cfg.servers
            if new_cfg.cfg_id in dep.servers[pid].dap_states
        ]
        assert any(size == 180 for size in per_server)

    def test_reconfigurer_never_carries_value_bytes(self):
        dep = make_deployment()
        value_size = 20_000
        dep.write(Value.of_size(value_size, label="big"), 0)
        reconfigurer = dep.reconfigurers[0]
        before = dep.stats.to_and_from(reconfigurer.pid).data_bytes
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=9, k=5)
        dep.reconfig(new_cfg, 0)
        after = dep.stats.to_and_from(reconfigurer.pid).data_bytes
        # Direct transfer: the reconfigurer exchanges only metadata (tags,
        # config records, acks); it never transports fragments of the object.
        assert after - before == 0

    def test_baseline_reconfigurer_carries_the_object(self):
        dep = make_deployment(direct=False)
        value_size = 20_000
        dep.write(Value.of_size(value_size, label="big"), 0)
        reconfigurer = dep.reconfigurers[0]
        before = dep.stats.to_and_from(reconfigurer.pid).data_bytes
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=9, k=5)
        dep.reconfig(new_cfg, 0)
        after = dep.stats.to_and_from(reconfigurer.pid).data_bytes
        # Baseline ARES: the reconfigurer reads at least one full value worth
        # of fragments and writes n'/k' fragments out again.
        assert after - before >= value_size

    def test_transfer_messages_flow_between_server_sets(self):
        dep = make_deployment()
        dep.write(Value.of_size(600, label="x"), 0)
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(new_cfg, 0)
        assert dep.stats.by_kind(MD_BCAST_REQ_FW).messages > 0
        assert dep.stats.by_kind(FWD_CODE_ELEM).messages > 0
        assert dep.stats.by_kind(TRANSFER_ACK).messages >= new_cfg.quorum_size

    def test_no_transfer_needed_when_object_never_written(self):
        dep = make_deployment()
        new_cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(new_cfg, 0)
        assert dep.reconfigurers[0].direct_transfers == 0
        assert dep.read(0).label == "v0"

    def test_fallback_to_baseline_for_abd_target(self):
        dep = make_deployment()
        dep.write(Value.of_size(300, label="x"), 0)
        abd_cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        dep.reconfig(abd_cfg, 0)
        # The optimised path only applies between TREAS configurations.
        assert dep.reconfigurers[0].direct_transfers == 0
        assert dep.read(0).label == "x"

    def test_chain_of_direct_transfers(self):
        dep = make_deployment()
        dep.write(Value.of_size(450, label="v1"), 0)
        for round_number in range(3):
            cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
            dep.reconfig(cfg, round_number % 2)
        assert dep.read(0).label == "v1"
        total_direct = sum(r.direct_transfers for r in dep.reconfigurers)
        assert total_direct == 3

    def test_transfer_survives_crashes_within_tolerance(self):
        dep = make_deployment(num_servers=9, k=5, delta=4)
        dep.write(Value.of_size(500, label="x"), 0)
        # Crash f = (9-5)/2 = 2 servers of the source configuration.
        dep.failure_injector.crash_now(server_id(7))
        dep.failure_injector.crash_now(server_id(8))
        cfg = dep.make_configuration(dap="treas", fresh_servers=9, k=5)
        dep.reconfig(cfg, 0)
        assert dep.read(0).label == "x"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_atomicity_with_direct_transfer_and_concurrent_clients(self, seed):
        dep = make_deployment(seed=seed, delta=8)
        ops = []
        for index in range(2):
            ops.append(dep.spawn_write(dep.writers[index].next_value(120), index))
            ops.append(dep.spawn_read(index))
        cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        ops.append(dep.spawn_reconfig(cfg, 0))
        dep.run()
        assert all(op.exception() is None for op in ops)
        result = check_linearizability(dep.history)
        assert result.ok, result.reason
