"""Metrics through the sweep plane: records, journals, resume, HTML.

The sweep carries each cell's exported :class:`~repro.obs.report.MetricsReport`
dict (plus SLO verdicts) across the process boundary, through the JSON
report and through the checkpoint journal.  These tests pin the contracts
the tentpole depends on:

* metrics-free records render byte-identically to the pre-metrics schema
  (old journals resume, old reports re-parse);
* an interrupted-and-resumed metrics campaign merges per-cell reports
  byte-identically with an uninterrupted one;
* SLO failures are reported in the record but never flip ``RunRecord.ok``;
* the HTML campaign report is self-contained, well-formed and renders the
  matrix, degradation curves and sparklines from the same JSON.
"""

from __future__ import annotations

import json
from html.parser import HTMLParser

import pytest

from repro.sweep.checkpoint import CheckpointError, grid_fingerprint
from repro.sweep.engine import campaign, execute_run
from repro.sweep.grid import RunSpec, parse_grid
from repro.sweep.html import render_campaign_html
from repro.sweep.result import RunRecord

GRID = "scenarios=treas_gray_degradation;seeds=0..1;fault_rate=0.0,0.05"


@pytest.fixture(scope="module")
def metrics_result():
    return campaign(parse_grid(GRID), jobs=1, metrics=True)


# ----------------------------------------------------------------- records
def test_execute_run_attaches_report_and_slo_verdicts():
    spec = RunSpec(scenario="ldr_gray_degradation", seed=0, params=())
    record = execute_run(spec, metrics=True)
    assert record.ok
    assert record.metrics is not None
    assert record.metrics["histograms"]["read_latency"]["count"] > 0
    verdicts = record.metrics["slo"]
    assert len(verdicts) == 2
    assert all(entry["ok"] and entry["detail"] is None for entry in verdicts)


def test_metrics_free_record_json_has_no_metrics_key():
    spec = RunSpec(scenario="abd_crash_minority", seed=0, params=())
    record = execute_run(spec)
    assert record.metrics is None
    assert "metrics" not in record.to_json()


def test_record_json_round_trip_preserves_metrics_bytes():
    spec = RunSpec(scenario="abd_gray_degradation", seed=1, params=())
    record = execute_run(spec, metrics=True)
    rebuilt = RunRecord.from_json(json.loads(json.dumps(record.to_json())))
    assert json.dumps(rebuilt.to_json()["metrics"], sort_keys=True) == \
        json.dumps(record.to_json()["metrics"], sort_keys=True)


def test_slo_failures_do_not_flip_record_ok():
    """A cell past the calibrated envelope reports the broken SLO but stays
    ``ok``: correctness and SLO verdicts are separate axes by design."""
    spec = RunSpec(scenario="abd_gray_degradation", seed=1,
                   params=(("fault_rate", 0.05),))
    record = execute_run(spec, metrics=True)
    assert record.ok
    assert any(not entry["ok"] for entry in record.metrics["slo"])


def test_metrics_agree_between_serial_and_identical_rerun():
    spec = RunSpec(scenario="treas_gray_degradation", seed=0, params=())
    a = execute_run(spec, metrics=True)
    b = execute_run(spec, metrics=True)
    assert a.signature_hash == b.signature_hash
    assert json.dumps(a.metrics, sort_keys=True) == \
        json.dumps(b.metrics, sort_keys=True)


# ------------------------------------------------------ checkpoint / resume
def _stable(records):
    """Record JSON with the only legitimately varying field masked."""
    return json.dumps(
        [dict(record.to_json(), wall_clock_sec=0) for record in records],
        sort_keys=True)


def test_resumed_metrics_campaign_merges_byte_identically(tmp_path):
    grid = parse_grid(GRID)
    journal = tmp_path / "campaign.jsonl"
    interrupted = campaign(grid, jobs=1, metrics=True, checkpoint=journal,
                           max_cells=2)
    assert not interrupted.complete
    resumed = campaign(grid, jobs=1, metrics=True, checkpoint=journal,
                       resume=True)
    uninterrupted = campaign(grid, jobs=1, metrics=True)
    assert resumed.complete
    assert _stable(resumed.records) == _stable(uninterrupted.records)


def test_metrics_flag_changes_fingerprint_but_default_is_unchanged():
    grid = parse_grid(GRID)
    assert grid_fingerprint(grid) == grid_fingerprint(grid, metrics=False)
    assert grid_fingerprint(grid) != grid_fingerprint(grid, metrics=True)
    assert grid_fingerprint(grid, streaming=True) != \
        grid_fingerprint(grid, streaming=True, metrics=True)


def test_resuming_a_metrics_journal_without_metrics_is_refused(tmp_path):
    grid = parse_grid(GRID)
    journal = tmp_path / "campaign.jsonl"
    campaign(grid, jobs=1, metrics=True, checkpoint=journal, max_cells=1)
    with pytest.raises(CheckpointError, match="metrics"):
        campaign(grid, jobs=1, checkpoint=journal, resume=True)


# -------------------------------------------------------------------- HTML
_VOID_TAGS = {"meta", "br", "img", "hr", "input", "link", "circle",
              "polyline"}


class _WellFormedness(HTMLParser):
    """Minimal tag-balance checker for the self-contained report page."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}>")
        else:
            self.stack.pop()


def test_html_report_is_well_formed_and_complete(metrics_result):
    page = metrics_result.render_html()
    checker = _WellFormedness()
    checker.feed(page)
    assert checker.errors == []
    assert checker.stack == []
    assert page.startswith("<!DOCTYPE html>")
    for token in ("Pass/fail matrix", "Degradation curves", "pass fraction",
                  "mean p99 read latency", "treas_gray_degradation",
                  "<polyline", "SLOs", "&#10003;"):
        assert token in page, f"missing section/token: {token}"
    # Self-contained: no external fetches of any kind.
    for external in ("http://", "https://", "<script"):
        assert external not in page


def test_html_renders_identically_from_rehydrated_json(metrics_result):
    rehydrated = json.loads(json.dumps(metrics_result.to_json()))
    assert render_campaign_html(rehydrated) == metrics_result.render_html()


def test_html_without_metrics_omits_sparkline_columns():
    result = campaign(parse_grid("scenarios=abd_crash_minority;seeds=0"),
                      jobs=1)
    page = result.render_html()
    checker = _WellFormedness()
    checker.feed(page)
    assert checker.errors == [] and checker.stack == []
    assert "Pass/fail matrix" in page
    assert "Degradation curves" not in page  # no fault_rate axis
    assert "SLOs" not in page


def test_html_escapes_failure_text():
    record = RunRecord(
        scenario="abd_crash_minority", seed=0, params=(),
        ok=False, failure="<script>alert(1)</script>", signature_hash="",
        wall_clock_sec=0.0, history_ops=0, events=0, messages=0,
        checker_method="")
    from repro.sweep.result import SweepResult

    page = SweepResult(grid={}, jobs=1, records=[record],
                       wall_clock_sec=0.0).render_html()
    assert "<script>" not in page
    assert "&lt;script&gt;" in page
