"""Property tests over the chaos scenario registry.

Every registered scenario is executed under many seeds; each run must keep
liveness (no stalled or errored client session) *and* atomicity (the
recorded history passes the full linearizability checker plus the tag
monotonicity condition).  A second battery checks determinism: the same
``(scenario, seed)`` pair must reproduce the history and the chaos log
byte-for-byte.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workloads.scenarios import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)

ALL_SCENARIOS = scenario_names()


class TestRegistry:
    def test_registry_is_populated(self):
        assert len(ALL_SCENARIOS) >= 8

    def test_every_dap_is_covered_by_every_core_fault_family(self):
        """The cross-product the issue asks for: DAP x {crash, partition, reconfig}."""
        for dap in ("abd", "ldr", "treas"):
            for fault in ("crash", "partition", "reconfig"):
                matching = [s for s in SCENARIOS.values()
                            if s.dap == dap and fault in s.faults]
                assert matching, f"no scenario covers dap={dap} fault={fault}"

    def test_lookup_errors_name_the_registry(self):
        with pytest.raises(KeyError, match="abd_crash_minority"):
            get_scenario("no_such_scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(SCENARIOS[ALL_SCENARIOS[0]])


@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestScenariosAreAtomicAndLive:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 200))
    def test_scenario_survives_its_faults(self, name, seed):
        run_scenario(name, seed=seed).verify()


@pytest.mark.parametrize("name", ["abd_packet_chaos", "treas_gray_failure",
                                  "storm_mixed_dap_chaos"])
def test_same_seed_gives_identical_histories(name):
    first = run_scenario(name, seed=13)
    second = run_scenario(name, seed=13)
    assert first.signature() == second.signature()
    assert first.chaos_log == second.chaos_log


def test_different_seeds_give_different_executions():
    base = run_scenario("treas_gray_failure", seed=0)
    other = run_scenario("treas_gray_failure", seed=1)
    assert base.signature() != other.signature()


def test_run_result_exposes_diagnostics():
    result = run_scenario("treas_crash_restart", seed=3)
    assert result.workload.total_operations > 0
    assert any("crash" in text for _, text in result.chaos_log)
    assert "restart" in result.engine.describe_log()
    assert result.schedule.describe()
