"""Unit tests for the ARES server message routing and the configuration directory."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import config_id, reader_id, server_id, writer_id
from repro.common.tags import Tag
from repro.common.values import Value
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, Status
from repro.core.directory import ConfigurationDirectory
from repro.core.server import READ_CONFIG, WRITE_CONFIG, AresServer
from repro.dap.treas import PUT_DATA
from repro.net.latency import FixedLatency
from repro.net.message import request
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.process import Process


class Probe(Process):
    """Client probe capturing replies."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.replies = []

    def on_message(self, src, message):
        self.replies.append((src, message))


def build(num_servers=3):
    sim = Simulator(seed=0)
    network = Network(sim, latency=FixedLatency(1.0))
    directory = ConfigurationDirectory()
    servers = [AresServer(server_id(i), network, directory) for i in range(num_servers)]
    cfg = Configuration.treas(config_id(0), [s.pid for s in servers], k=2, delta=2)
    directory.register(cfg)
    probe = Probe(writer_id(0), network)
    return sim, network, directory, servers, cfg, probe


class TestConfigurationDirectory:
    def test_register_and_get(self):
        directory = ConfigurationDirectory()
        cfg = Configuration.abd(config_id(0), [server_id(0)])
        directory.register(cfg)
        assert directory.get(config_id(0)) is cfg
        assert config_id(0) in directory
        assert len(directory) == 1
        assert list(directory) == [cfg]

    def test_reregistering_same_object_is_noop(self):
        directory = ConfigurationDirectory()
        cfg = Configuration.abd(config_id(0), [server_id(0)])
        directory.register(cfg)
        directory.register(cfg)
        assert len(directory) == 1

    def test_conflicting_registration_rejected(self):
        directory = ConfigurationDirectory()
        directory.register(Configuration.abd(config_id(0), [server_id(0)]))
        other = Configuration.abd(config_id(0), [server_id(1)])
        with pytest.raises(ConfigurationError):
            directory.register(other)

    def test_unknown_lookup(self):
        directory = ConfigurationDirectory()
        with pytest.raises(ConfigurationError):
            directory.get(config_id(9))
        assert directory.maybe_get(config_id(9)) is None


class TestAresServerRouting:
    def test_read_config_initially_returns_bottom(self):
        sim, network, directory, servers, cfg, probe = build()
        probe.send(servers[0].pid, request(READ_CONFIG, 1, config_id=cfg.cfg_id))
        sim.run()
        assert len(probe.replies) == 1
        assert probe.replies[0][1]["record"] is None

    def test_write_config_then_read_config(self):
        sim, network, directory, servers, cfg, probe = build()
        next_cfg = Configuration.abd(config_id(1), [server_id(10)])
        record = ConfigRecord(next_cfg, Status.PENDING)
        probe.send(servers[0].pid, request(WRITE_CONFIG, 1, config_id=cfg.cfg_id, record=record))
        sim.run()
        probe.send(servers[0].pid, request(READ_CONFIG, 2, config_id=cfg.cfg_id))
        sim.run()
        returned = probe.replies[-1][1]["record"]
        assert returned.config.cfg_id == config_id(1)
        assert returned.status is Status.PENDING

    def test_finalized_record_not_overwritten_by_pending(self):
        sim, network, directory, servers, cfg, probe = build()
        final_cfg = Configuration.abd(config_id(1), [server_id(10)])
        probe.send(servers[0].pid, request(
            WRITE_CONFIG, 1, config_id=cfg.cfg_id,
            record=ConfigRecord(final_cfg, Status.FINALIZED)))
        sim.run()
        probe.send(servers[0].pid, request(
            WRITE_CONFIG, 2, config_id=cfg.cfg_id,
            record=ConfigRecord(final_cfg, Status.PENDING)))
        sim.run()
        assert servers[0].next_config[cfg.cfg_id].status is Status.FINALIZED

    def test_dap_state_created_lazily_only_for_members(self):
        sim, network, directory, servers, cfg, probe = build()
        # Before any DAP traffic, no state is instantiated -- but membership
        # is truthful: the server *is* a member of the registered config.
        assert servers[0].instantiated_configurations() == []
        assert servers[0].member_configurations() == [cfg.cfg_id]
        assert servers[0].storage_data_bytes() == 0
        element = cfg.code.encode(Value.of_size(20, label="x"))[0]
        probe.send(servers[0].pid, request(PUT_DATA, 1, config_id=cfg.cfg_id,
                                           tag=Tag(1, writer_id(0)), element=element))
        sim.run()
        assert servers[0].instantiated_configurations() == [cfg.cfg_id]
        assert cfg.cfg_id in servers[0].member_configurations()
        assert servers[0].storage_data_bytes() > 0

    def test_dap_message_for_unknown_configuration_ignored(self):
        sim, network, directory, servers, cfg, probe = build()
        element = cfg.code.encode(Value.of_size(20, label="x"))[0]
        probe.send(servers[0].pid, request(PUT_DATA, 1, config_id=config_id(77),
                                           tag=Tag(1, writer_id(0)), element=element))
        sim.run()
        assert probe.replies == []
        assert servers[0].instantiated_configurations() == []

    def test_dap_message_to_non_member_ignored(self):
        sim, network, directory, servers, cfg, probe = build()
        foreign = Configuration.treas(config_id(5), [server_id(20 + i) for i in range(3)], k=2)
        directory.register(foreign)
        element = foreign.code.encode(Value.of_size(20, label="x"))[0]
        probe.send(servers[0].pid, request(PUT_DATA, 1, config_id=foreign.cfg_id,
                                           tag=Tag(1, writer_id(0)), element=element))
        sim.run()
        assert probe.replies == []

    def test_dap_message_without_config_id_ignored(self):
        sim, network, directory, servers, cfg, probe = build()
        probe.send(servers[0].pid, request(PUT_DATA, 1, tag=Tag(1, writer_id(0)), element=None))
        sim.run()
        assert probe.replies == []

    def test_unknown_message_kind_ignored(self):
        sim, network, directory, servers, cfg, probe = build()
        probe.send(servers[0].pid, request("TOTALLY-UNKNOWN", 1, config_id=cfg.cfg_id))
        sim.run()
        assert probe.replies == []

    def test_crashed_server_stops_replying(self):
        sim, network, directory, servers, cfg, probe = build()
        servers[0].crash()
        probe.send(servers[0].pid, request(READ_CONFIG, 1, config_id=cfg.cfg_id))
        sim.run()
        assert probe.replies == []
