"""Configuration retirement end to end: reclamation, tombstones, gc-config.

Covers the PR-10 retirement machinery at every layer: the server-side
``RETIRE-CONFIG`` / ``CONFIRM-CONFIG`` handlers and their refusal semantics,
the two reconfiguration edge-case regressions (add-config deciding a
configuration already in the sequence, finalize-config finalizing the
*installed* index), the gc-config phase retiring prefixes through
:class:`~repro.core.deployment.AresDeployment`, stale clients converging
through tombstone jumps under crashes and partitions, store-level storage
reclamation accounting after a live shard migration, and the ``gc`` sweep
axis.  ``ConfigSequence.prune``/``jump_to`` unit tests live in
``test_config.py``; the ``store_migration_gc`` golden signature is pinned by
the generic chaos battery in ``test_chaos_scenarios.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import (RETIRED_CONFIG_REASON, ConfigurationError,
                                 QuorumRefusedError, is_retirement_refusal)
from repro.common.ids import config_id, server_id, writer_id
from repro.common.tags import Tag
from repro.common.values import Value
from repro.config.configuration import Configuration
from repro.config.sequence import ConfigRecord, Status
from repro.consensus.interface import ConsensusDecision
from repro.consensus.paxos import PREPARE, PaxosProposer
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.core.directory import ConfigurationDirectory
from repro.core.server import (CONFIRM_CONFIG, READ_CONFIG, RETIRE_CONFIG,
                               WRITE_CONFIG, AresServer)
from repro.dap.treas import PUT_DATA
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.message import request
from repro.net.network import Network
from repro.obs.registry import install_metrics
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.spec.linearizability import check_tag_monotonicity_per_key
from repro.store import ShardSpec, StoreDeployment, StoreSpec
from repro.sweep.engine import execute_run
from repro.sweep.grid import RunSpec, parse_grid
from repro.sweep.grid import _parse_bool
from repro.workloads.scenarios import get_scenario, run_scenario_instance


# --------------------------------------------------------------------------
# Server-level unit fixtures (mirrors test_core_server_directory.build).
# --------------------------------------------------------------------------

class Probe(Process):
    """Client probe capturing replies."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.replies = []

    def on_message(self, src, message):
        self.replies.append((src, message))

    def last_reply(self):
        assert self.replies, "expected a reply"
        return self.replies[-1][1]


def build(num_servers=3):
    sim = Simulator(seed=0)
    network = Network(sim, latency=FixedLatency(1.0))
    directory = ConfigurationDirectory()
    servers = [AresServer(server_id(i), network, directory) for i in range(num_servers)]
    cfg = Configuration.treas(config_id(0), [s.pid for s in servers], k=2, delta=2)
    directory.register(cfg)
    probe = Probe(writer_id(0), network)
    return sim, network, directory, servers, cfg, probe


def successor_record(directory, index=1):
    """A finalized successor record to retire behind."""
    succ = Configuration.abd(config_id(index), [server_id(10)])
    directory.register(succ)
    return ConfigRecord(succ, Status.FINALIZED)


def store_value(sim, server, cfg, probe, size=40):
    """Instantiate DAP state on ``server`` by storing one coded element."""
    element = cfg.code.encode(Value.of_size(size, label="x"))[0]
    probe.send(server.pid, request(PUT_DATA, 1, config_id=cfg.cfg_id,
                                   tag=Tag(1, writer_id(0)), element=element))
    sim.run()


def retire(sim, server, cfg, probe, record, index=1, rid=7):
    probe.send(server.pid, request(RETIRE_CONFIG, rid, config_id=cfg.cfg_id,
                                   metadata_fields=3, record=record, index=index))
    sim.run()


class TestServerRetirement:
    def test_retire_reclaims_state_and_leaves_tombstone(self):
        sim, network, directory, servers, cfg, probe = build()
        store_value(sim, servers[0], cfg, probe)
        held = servers[0].storage_data_bytes()
        assert held > 0
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        assert probe.last_reply().kind == "ARES-RETIRE-ACK"
        assert servers[0].dap_states == {}
        assert servers[0].acceptors == {}
        assert cfg.cfg_id not in servers[0].next_config
        assert servers[0].retired[cfg.cfg_id] == (record, 1)
        assert servers[0].configs_retired == 1
        assert servers[0].bytes_reclaimed == held
        assert servers[0].storage_data_bytes() == 0

    def test_retire_is_idempotent_and_never_double_counts(self):
        sim, network, directory, servers, cfg, probe = build()
        store_value(sim, servers[0], cfg, probe)
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        reclaimed = servers[0].bytes_reclaimed
        retire(sim, servers[0], cfg, probe, record, rid=8)
        assert servers[0].configs_retired == 1
        assert servers[0].bytes_reclaimed == reclaimed
        assert probe.last_reply().kind == "ARES-RETIRE-ACK"

    def test_retire_keeps_the_farthest_tombstone(self):
        sim, network, directory, servers, cfg, probe = build()
        far = successor_record(directory, index=3)
        retire(sim, servers[0], cfg, probe, far, index=3)
        near = ConfigRecord(Configuration.abd(config_id(2), [server_id(11)]),
                            Status.FINALIZED)
        retire(sim, servers[0], cfg, probe, near, index=2, rid=9)
        assert servers[0].retired[cfg.cfg_id] == (far, 3)

    def test_read_config_on_retired_configuration_redirects(self):
        sim, network, directory, servers, cfg, probe = build()
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        probe.send(servers[0].pid, request(READ_CONFIG, 2, config_id=cfg.cfg_id))
        sim.run()
        reply = probe.last_reply()
        assert reply.kind == "ARES-NEXT-CONFIG"
        assert reply["record"] is record
        assert reply["jump"] == 1

    def test_write_config_on_retired_configuration_is_benign(self):
        # A slow put-config racing retirement must not error the writer's
        # gather and must not resurrect nextC state.
        sim, network, directory, servers, cfg, probe = build()
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        probe.send(servers[0].pid, request(
            WRITE_CONFIG, 2, config_id=cfg.cfg_id,
            record=ConfigRecord(record.config, Status.PENDING)))
        sim.run()
        assert probe.last_reply().kind == "ARES-CONFIG-ACK"
        assert cfg.cfg_id not in servers[0].next_config

    def test_dap_traffic_to_retired_configuration_is_nacked(self):
        sim, network, directory, servers, cfg, probe = build()
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        store_value(sim, servers[0], cfg, probe)  # request_id 1, post-retire
        reply = probe.last_reply()
        assert reply.kind == "SRV-NACK"
        assert reply["error"] == RETIRED_CONFIG_REASON
        # No resurrection: the refused message created no DAP state.
        assert servers[0].dap_states == {}
        assert servers[0].dap_state_for(cfg.cfg_id) is None

    def test_paxos_traffic_to_retired_instance_is_nacked(self):
        sim, network, directory, servers, cfg, probe = build()
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        probe.send(servers[0].pid, request(PREPARE, 3, instance=cfg.cfg_id,
                                           ballot=(1, probe.pid)))
        sim.run()
        reply = probe.last_reply()
        assert reply.kind == "SRV-NACK"
        assert reply["error"] == RETIRED_CONFIG_REASON
        assert servers[0].acceptors == {}

    def test_confirm_config_stores_the_finalized_record(self):
        sim, network, directory, servers, cfg, probe = build()
        record = ConfigRecord(cfg, Status.FINALIZED)
        probe.send(servers[0].pid, request(CONFIRM_CONFIG, 4, config_id=cfg.cfg_id,
                                           metadata_fields=2, record=record))
        sim.run()
        assert probe.last_reply().kind == "ARES-CONFIRM-ACK"
        assert servers[0].confirmed_final[cfg.cfg_id] is record

    def test_membership_excludes_retired_configurations(self):
        sim, network, directory, servers, cfg, probe = build()
        assert servers[0].member_configurations() == [cfg.cfg_id]
        record = successor_record(directory)
        retire(sim, servers[0], cfg, probe, record)
        assert servers[0].member_configurations() == []
        assert servers[0].instantiated_configurations() == []

    @pytest.mark.parametrize("dap", ["abd", "treas", "ldr"])
    def test_fresh_dap_state_stores_zero_bytes(self, dap):
        # The accounting invariant storage_data_bytes() relies on: a member
        # configuration that never served traffic contributes 0 bytes, so
        # summing only instantiated states is exact.
        sim, network, directory, servers, cfg, probe = build()
        pids = [s.pid for s in servers]
        if dap == "abd":
            fresh = Configuration.abd(config_id(5), pids)
        elif dap == "treas":
            fresh = Configuration.treas(config_id(5), pids, k=2, delta=2)
        else:
            replicas = [server_id(20 + i) for i in range(3)]
            fresh = Configuration.ldr(config_id(5), pids, replicas)
        directory.register(fresh)
        state = servers[0].dap_state_for(fresh.cfg_id)
        assert state is not None
        assert state.storage_data_bytes() == 0

    def test_retirement_refusal_classifier(self):
        retirement = QuorumRefusedError("nack", reasons=(RETIRED_CONFIG_REASON,))
        assert is_retirement_refusal(retirement)
        mixed = QuorumRefusedError("nack", reasons=(RETIRED_CONFIG_REASON,
                                                    "resource:memory"))
        assert not is_retirement_refusal(mixed)
        assert not is_retirement_refusal(QuorumRefusedError("nack"))
        assert not is_retirement_refusal(ValueError("boom"))


# --------------------------------------------------------------------------
# Reconfiguration edge-case regressions (the two crash windows).
# --------------------------------------------------------------------------

def make_deployment(**overrides):
    defaults = dict(num_servers=8, initial_dap="abd", initial_config_size=4,
                    num_writers=2, num_readers=3, num_reconfigurers=2, seed=0,
                    gc=True, latency=UniformLatency(1.0, 2.0))
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestReconfigEdgeCases:
    def test_add_config_accepts_decision_already_in_sequence(self, monkeypatch):
        # Contending-reconfigurer window: between our propose and the
        # decision callback, the decided configuration can already sit in
        # our sequence (propagated by the contender during read-config).
        # add-config must adopt the existing entry, not append-and-crash.
        dep = make_deployment(gc=False)
        reconfigurer = dep.reconfigurers[0]
        cfg1 = dep.make_configuration(dap="abd", fresh_servers=4)
        dep.reconfig(cfg1, 0)
        assert reconfigurer.cseq.index_of(cfg1.cfg_id) == 1

        def decide_existing(self, value):
            yield from ()
            return ConsensusDecision(value=cfg1, instance=self.instance)

        monkeypatch.setattr(PaxosProposer, "propose", decide_existing)
        handle = reconfigurer.spawn(
            reconfigurer._add_config(reconfigurer.cseq, cfg1))
        installed, index = dep.sim.run_until_complete(handle)
        assert installed.cfg_id == cfg1.cfg_id
        assert index == 1
        # The sequence still satisfies Uniqueness: one entry per cfg_id.
        assert reconfigurer.cseq.nu == 1

    def test_contending_reconfigurers_complete_without_crashing(self):
        # The end-to-end shape of the same window: two reconfigurers race
        # distinct proposals; at most one configuration installs per index
        # and both operations complete (pre-fix this raised
        # ConfigurationError inside add-config when the loser observed the
        # winner's decision already in its sequence).
        dep = make_deployment(gc=False, num_servers=12)
        pool = sorted(dep.servers)
        cfg_a = dep.make_configuration(dap="abd", servers=pool[4:8])
        cfg_b = dep.make_configuration(dap="abd", servers=pool[8:12])
        first = dep.spawn_reconfig(cfg_a, 0)
        second = dep.spawn_reconfig(cfg_b, 1)
        dep.sim.run()
        installed_a = first.result()
        installed_b = second.result()
        assert {installed_a.cfg_id, installed_b.cfg_id} <= {cfg_a.cfg_id,
                                                            cfg_b.cfg_id}
        seq_a = dep.reconfigurers[0].cseq
        seq_b = dep.reconfigurers[1].cseq
        assert seq_a.is_prefix_of(seq_b) or seq_b.is_prefix_of(seq_a)
        longer = seq_a if len(seq_a) >= len(seq_b) else seq_b
        ids = [entry.config.cfg_id for entry in longer]
        assert len(ids) == len(set(ids))

    def test_finalize_config_finalizes_the_installed_index(self):
        # Interleaving window: a contender appends index nu+1 between our
        # update-config and finalize-config.  Finalizing the recomputed
        # cseq.nu would mark the *contender's* configuration F before its
        # state transfer completed; the fix finalizes the installed index.
        dep = make_deployment(gc=False)
        reconfigurer = dep.reconfigurers[0]
        seq = reconfigurer.cseq
        mine = dep.make_configuration(dap="abd", fresh_servers=4)
        contender = dep.make_configuration(dap="abd", fresh_servers=4)
        my_index = seq.append(ConfigRecord(mine, Status.PENDING))
        their_index = seq.append(ConfigRecord(contender, Status.PENDING))
        handle = reconfigurer.spawn(reconfigurer._finalize_config(seq, my_index))
        dep.sim.run_until_complete(handle)
        assert seq[my_index].status is Status.FINALIZED
        assert seq[their_index].status is Status.PENDING

    def test_finalize_config_defaults_to_nu_for_the_wrapper(self):
        dep = make_deployment(gc=False)
        reconfigurer = dep.reconfigurers[0]
        seq = reconfigurer.cseq
        mine = dep.make_configuration(dap="abd", fresh_servers=4)
        index = seq.append(ConfigRecord(mine, Status.PENDING))
        handle = reconfigurer.spawn(reconfigurer._finalize_config(seq))
        dep.sim.run_until_complete(handle)
        assert seq[index].status is Status.FINALIZED

    def test_finalize_config_skips_put_config_to_a_pruned_predecessor(self):
        # After gc-config pruned [base..mu), finalizing at base must not
        # try to propagate to the (reclaimed) predecessor's quorum.
        dep = make_deployment()
        dep.write(Value.of_size(64, label="v"), 0)
        pool = sorted(dep.servers)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[4:8]), 0)
        seq = dep.reconfigurers[0].cseq
        assert seq.base == 1  # gc pruned the initial configuration
        handle = dep.reconfigurers[0].spawn(
            dep.reconfigurers[0]._finalize_config(seq, seq.base))
        finalized = dep.sim.run_until_complete(handle)
        assert finalized.status is Status.FINALIZED


# --------------------------------------------------------------------------
# gc-config end to end on the single-register deployment.
# --------------------------------------------------------------------------

class TestRetirementEndToEnd:
    def test_gc_reconfig_retires_the_old_configuration(self):
        dep = make_deployment()
        dep.write(Value.of_size(256, label="precious"), 0)
        pool = sorted(dep.servers)
        old_servers = [dep.servers[pid] for pid in pool[:4]]
        held = sum(server.storage_data_bytes() for server in old_servers)
        assert held > 0
        new_cfg = dep.make_configuration(dap="abd", servers=pool[4:8])
        dep.reconfig(new_cfg, 0)
        # Every old-config server reclaimed its state behind a tombstone.
        for server in old_servers:
            assert server.retired[dep.initial_configuration.cfg_id][1] == 1
            assert server.storage_data_bytes() == 0
        assert dep.configs_retired() == 4
        assert dep.bytes_reclaimed() == held
        assert dep.reconfigurers[0].configs_retired == 1
        # The reconfigurer's own sequence pruned its dead prefix...
        assert dep.reconfigurers[0].cseq.base == 1
        # ...and the data survived the retirement.
        assert dep.read(0).label == "precious"

    def test_gc_disabled_retires_nothing(self):
        dep = make_deployment(gc=False)
        dep.write(Value.of_size(256, label="v"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", fresh_servers=4), 0)
        assert dep.configs_retired() == 0
        assert dep.bytes_reclaimed() == 0
        assert dep.reconfigurers[0].cseq.base == 0

    def test_stale_reader_converges_through_tombstone_jumps(self):
        dep = make_deployment(num_servers=12)
        pool = sorted(dep.servers)
        dep.write(Value.of_size(128, label="v0"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[4:8]), 0)
        dep.write(Value.of_size(128, label="v1"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[8:12]), 0)
        # readers[2] never ran: its sequence still starts at the (now twice
        # retired) initial configuration.
        stale = dep.readers[2]
        assert stale.cseq.base == 0
        assert dep.read(2).label == "v1"
        # One jump per retirement boundary (ShardMap.forward semantics).
        assert stale.tombstone_jumps == 2
        assert stale.cseq.base == 2

    def test_stale_writer_converges_and_its_write_is_read(self):
        dep = make_deployment(num_servers=12)
        pool = sorted(dep.servers)
        dep.write(Value.of_size(64, label="v0"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[4:8]), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[8:12]), 0)
        stale = dep.writers[1]
        assert stale.cseq.base == 0
        dep.write(Value.of_size(64, label="late"), 1)
        assert stale.tombstone_jumps >= 1
        assert dep.read(0).label == "late"

    def test_retirement_metrics_are_visible_in_the_registry(self):
        dep = make_deployment(num_servers=12)
        registry = install_metrics(dep)
        pool = sorted(dep.servers)
        dep.write(Value.of_size(256, label="v"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[4:8]), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[8:12]), 0)
        dep.read(2)  # stale reader jumps through the tombstones
        assert registry.counters["configs_retired"].total == 2
        assert registry.counters["bytes_reclaimed"].total == dep.bytes_reclaimed()
        assert registry.counters["tombstone_jumps"].total >= 2
        assert "reconfig_phase:gc-config" in registry.histograms

    @pytest.mark.parametrize("seed", range(30))
    def test_stale_clients_converge_under_crashes_and_partitions(self, seed):
        # Two chained retirements, then one crash in every configuration
        # generation plus one partitioned (fully isolated) middle-generation
        # server -- each 4-server quorum system keeps 3 >= quorum live, so
        # traversal must still converge through the tombstones.
        dep = make_deployment(num_servers=12, seed=seed)
        pool = sorted(dep.servers)
        dep.write(Value.of_size(64, label="v0"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[4:8]), 0)
        dep.write(Value.of_size(64, label="v1"), 0)
        dep.reconfig(dep.make_configuration(dap="abd", servers=pool[8:12]), 0)

        dep.servers[pool[seed % 4]].crash()
        dep.servers[pool[8 + seed % 4]].crash()
        isolated = pool[4 + seed % 4]
        dep.network.add_drop_filter(
            lambda src, dest, message: isolated in (src, dest))

        stale_reader = dep.readers[2]
        assert stale_reader.cseq.base == 0
        assert dep.read(2).label == "v1"
        assert stale_reader.tombstone_jumps >= 1
        assert stale_reader.cseq.base == 2

        stale_writer = dep.writers[1]
        assert stale_writer.cseq.base == 0
        dep.write(Value.of_size(64, label=f"w{seed}"), 1)
        assert stale_writer.cseq.base == 2
        assert dep.read(0).label == f"w{seed}"


# --------------------------------------------------------------------------
# Store layer: per-key retirement and storage reclamation accounting.
# --------------------------------------------------------------------------

def make_store(**overrides):
    defaults = dict(
        shards=(ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="abd", num_servers=5)),
        num_writers=2, num_readers=2, seed=0, gc=True)
    defaults.update(overrides)
    return StoreDeployment(StoreSpec(**defaults))


class TestStoreRetirement:
    def test_migration_with_gc_reclaims_source_storage(self):
        store = make_store()
        keys = [f"k{i}" for i in range(8)]
        store.multi_put({key: store.writers[0].next_value(128) for key in keys})
        source = [store.servers[pid]
                  for pid in store.shard_map.shards[0].servers]
        migrating = {key for key in keys
                     if store.shard_map.shard_index(key) == 0}
        assert migrating, "expected some keys on shard 0"
        # Shard pools are disjoint, so after the shard-0 keys migrate away
        # the source servers own nothing: their still-owned baseline is 0.
        held = sum(server.storage_data_bytes() for server in source)
        assert held > 0
        total_before = store.total_storage_data_bytes()

        store.migrate_shard(0, fresh_servers=5)

        assert sum(server.storage_data_bytes() for server in source) == 0
        assert store.bytes_reclaimed() == held
        # One configuration retired per migrated key (per-key gc-config).
        assert store.configs_retired() == len(migrating) * len(source)
        # The data itself moved, not vanished: totals stay plausible and
        # every key still reads back.
        assert store.total_storage_data_bytes() >= total_before - held
        for key in keys:
            assert store.get(key) is not None

    def test_migration_without_gc_keeps_source_storage(self):
        store = make_store(gc=False)
        keys = [f"k{i}" for i in range(8)]
        store.multi_put({key: store.writers[0].next_value(128) for key in keys})
        source = [store.servers[pid]
                  for pid in store.shard_map.shards[0].servers]
        held = sum(server.storage_data_bytes() for server in source)
        store.migrate_shard(0, fresh_servers=5)
        assert sum(server.storage_data_bytes() for server in source) == held
        assert store.bytes_reclaimed() == 0
        assert store.configs_retired() == 0

    def test_stale_store_clients_read_through_retired_configs(self):
        store = make_store()
        store.put("k0", store.writers[0].next_value(64))
        store.migrate_shard(0, fresh_servers=5)
        # readers[1] never touched k0: its per-key sequence (if any) is
        # fresh, and the shard map forward converges it; the retired
        # source servers answer with tombstones, never stale data.
        value = store.get("k0", reader_index=1)
        assert value.size == 64

    def test_gc_scenario_history_is_tag_monotone_per_key(self):
        scenario = get_scenario("store_migration_gc")
        assert scenario.gc
        result = run_scenario_instance(scenario, seed=0)
        failure, method = result.check()
        assert failure is None
        assert method == "per-key(fast)"
        assert check_tag_monotonicity_per_key(result.history) is None
        assert result.deployment.configs_retired() > 0
        assert result.deployment.bytes_reclaimed() > 0

    def test_gc_scenario_with_gc_off_retires_nothing_and_diverges(self):
        scenario = get_scenario("store_migration_gc")
        on = run_scenario_instance(scenario, seed=0)
        off = run_scenario_instance(dataclasses.replace(scenario, gc=False),
                                    seed=0)
        assert off.deployment.configs_retired() == 0
        assert off.deployment.bytes_reclaimed() == 0
        failure, _ = off.check()
        assert failure is None
        assert on.signature() != off.signature()


# --------------------------------------------------------------------------
# The gc sweep axis.
# --------------------------------------------------------------------------

class TestGcSweepAxis:
    def test_parse_bool_vocabulary(self):
        for text in ("1", "true", "YES", "on"):
            assert _parse_bool(text) is True
        for text in ("0", "false", "No", "off"):
            assert _parse_bool(text) is False
        assert _parse_bool(True) is True
        with pytest.raises(ValueError):
            _parse_bool("maybe")

    def test_parse_grid_accepts_a_gc_axis(self):
        grid = parse_grid("scenarios=store_migration_gc;seeds=0;gc=0,1")
        assert grid.params == (("gc", (False, True)),)
        cells = grid.expand()
        assert [spec.cell_id for spec in cells] == [
            "store_migration_gc/s0[gc=False]",
            "store_migration_gc/s0[gc=True]",
        ]

    def test_inert_gc_axis_fails_the_cell(self):
        record = execute_run(RunSpec(scenario="abd_crash_minority", seed=0,
                                     params=(("gc", True),)))
        assert not record.ok
        assert "gc" in record.failure
        assert "never reconfigures" in record.failure

    def test_gc_axis_with_a_num_reconfigs_axis_is_accepted(self):
        record = execute_run(RunSpec(scenario="abd_crash_minority", seed=0,
                                     params=(("gc", True), ("num_reconfigs", 1))))
        assert record.ok, record.failure

    def test_gc_override_changes_the_run_and_gc_off_matches_baseline(self):
        baseline = execute_run(RunSpec(scenario="abd_reconfig_crash", seed=0))
        gc_off = execute_run(RunSpec(scenario="abd_reconfig_crash", seed=0,
                                     params=(("gc", False),)))
        gc_on = execute_run(RunSpec(scenario="abd_reconfig_crash", seed=0,
                                    params=(("gc", True),)))
        assert baseline.ok and gc_off.ok and gc_on.ok
        # gc=0 is byte-identical to the un-overridden scenario...
        assert gc_off.signature_hash == baseline.signature_hash
        # ...and gc=1 actually changes the execution.
        assert gc_on.signature_hash != baseline.signature_hash
