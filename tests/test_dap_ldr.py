"""Unit tests for the LDR DAP (Algorithm 13)."""

from __future__ import annotations

import pytest

from repro.common.ids import config_id, server_id, writer_id
from repro.common.tags import BOTTOM_TAG, Tag, TagValue
from repro.common.values import Value
from repro.config.configuration import Configuration
from repro.dap.ldr import (
    GET_DATA,
    LdrServerState,
    PUT_DATA,
    PUT_METADATA,
    QUERY_TAG_LOCATION,
)
from repro.net.message import request
from repro.registers.static import StaticRegisterDeployment
from repro.spec.properties import check_dap_properties


def make_config(directories=3, replicas=3):
    dirs = [server_id(i) for i in range(directories)]
    reps = [server_id(directories + i) for i in range(replicas)]
    return Configuration.ldr(config_id(0), dirs, reps)


class TestLdrServerState:
    def test_roles_detected(self):
        cfg = make_config()
        directory_state = LdrServerState(cfg, server_id(0))
        replica_state = LdrServerState(cfg, server_id(4))
        assert directory_state.is_directory and not directory_state.is_replica
        assert replica_state.is_replica and not replica_state.is_directory

    def test_metadata_update_keeps_highest_tag(self):
        cfg = make_config()
        state = LdrServerState(cfg, server_id(0))
        high = Tag(5, writer_id(0))
        low = Tag(2, writer_id(0))
        state.handle(writer_id(0), request(PUT_METADATA, 1, tag=high, location=(server_id(3),)))
        state.handle(writer_id(0), request(PUT_METADATA, 2, tag=low, location=(server_id(4),)))
        reply = state.handle(writer_id(0), request(QUERY_TAG_LOCATION, 3))
        assert reply["tag"] == high
        assert reply["location"] == (server_id(3),)

    def test_replica_stores_values_by_tag(self):
        cfg = make_config()
        state = LdrServerState(cfg, server_id(3))
        tag = Tag(1, writer_id(0))
        state.handle(writer_id(0), request(PUT_DATA, 1, tag=tag, value=Value.of_size(30, label="x")))
        reply = state.handle(writer_id(0), request(GET_DATA, 2, tag=tag))
        assert reply["value"].label == "x"
        assert reply.data_bytes == 30

    def test_get_data_for_unknown_tag_falls_back_to_newest(self):
        cfg = make_config()
        state = LdrServerState(cfg, server_id(3))
        known = Tag(1, writer_id(0))
        state.handle(writer_id(0), request(PUT_DATA, 1, tag=known, value=Value.of_size(10, label="known")))
        reply = state.handle(writer_id(0), request(GET_DATA, 2, tag=Tag(9, writer_id(1))))
        assert reply["value"].label == "known"

    def test_directory_storage_not_counted(self):
        cfg = make_config()
        state = LdrServerState(cfg, server_id(0))
        assert state.storage_data_bytes() == 0


class TestLdrPrimitives:
    def _deployment(self, **kwargs):
        kwargs.setdefault("record_dap", True)
        kwargs.setdefault("num_writers", 2)
        kwargs.setdefault("num_readers", 2)
        return StaticRegisterDeployment.ldr(num_directories=3, num_replicas=5, **kwargs)

    def test_put_then_get_round_trip(self):
        dep = self._deployment()
        writer, reader = dep.writers[0], dep.readers[0]
        pair = TagValue(Tag(1, writer.pid), Value.of_size(100, label="doc"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        result = dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        assert result.tag == pair.tag
        assert result.value.label == "doc"

    def test_initial_read_returns_bottom(self):
        dep = self._deployment()
        result = dep.sim.run_until_complete(dep.readers[0].spawn(dep.readers[0].dap.get_data()))
        assert result.tag == BOTTOM_TAG

    def test_read_transfers_value_only_once(self):
        # LDR's read fetches the value from f+1 replicas but only one replies
        # with the data before the threshold-1 gather resolves; the bulk of the
        # read is metadata traffic (that is the point of the algorithm).
        dep = self._deployment()
        writer, reader = dep.writers[0], dep.readers[0]
        value_size = 10_000
        pair = TagValue(Tag(1, writer.pid), Value.of_size(value_size, label="big"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        before = dep.stats.by_kind("LDR-DATA").data_bytes
        dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        dep.sim.run()
        after = dep.stats.by_kind("LDR-DATA").data_bytes
        transferred = after - before
        # At most f+1 replicas answer with the full value.
        cfg = dep.configuration
        assert transferred <= (cfg.ldr_f + 1) * value_size
        assert transferred >= value_size

    def test_register_operations_and_dap_properties(self):
        dep = self._deployment()
        for _ in range(2):
            dep.write(dep.writers[0].next_value(64), 0)
            dep.read(0)
            dep.write(dep.writers[1].next_value(64), 1)
            dep.read(1)
        assert check_dap_properties(dep.dap_recorder) == []

    def test_template_a2_reads_skip_propagation(self):
        dep = StaticRegisterDeployment.ldr(num_directories=3, num_replicas=5,
                                           num_writers=1, num_readers=1,
                                           use_template_a2=True, record_dap=True)
        dep.write(dep.writers[0].next_value(32), 0)
        value = dep.read(0)
        assert value.label == "writer-0:1"
        # A2 reads perform no put-data at all.
        put_calls = dep.dap_recorder.calls_for(dep.configuration.cfg_id, "put-data")
        assert len(put_calls) == 1  # only the write's put-data
        violations = check_dap_properties(dep.dap_recorder, check_c3=True)
        assert violations == []
