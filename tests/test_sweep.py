"""The sweep engine: grids, workers, campaigns, CLI.

The heavyweight guarantee -- a cell's history signature is byte-identical
whether it runs serially or in a pool worker -- is asserted here on a small
grid; ``benchmarks/bench_sweep.py`` re-asserts it on the full registry.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import (RunSpec, SweepGrid, auto_chunk, campaign,
                         default_jobs, execute_run, latency_summary,
                         parse_grid, parse_seeds, resolve_scenarios,
                         usable_cores)
from repro.sweep.__main__ import main as sweep_main
from repro.sweep.engine import MAX_AUTO_CHUNK, _cgroup_cpu_quota
from repro.workloads.scenarios import scenario_names


class TestGridParsing:
    def test_parse_full_registry(self):
        grid = parse_grid("scenarios=all;seeds=0..2")
        assert grid.scenarios == tuple(scenario_names())
        assert grid.seeds == (0, 1, 2)
        assert grid.params == ()

    def test_parse_patterns_and_names(self):
        grid = parse_grid("scenarios=abd_*,treas_crash_server;seeds=5")
        assert all(name.startswith("abd_") or name == "treas_crash_server"
                   for name in grid.scenarios)
        assert "treas_crash_server" in grid.scenarios
        assert grid.seeds == (5,)

    def test_parse_param_axes(self):
        grid = parse_grid("scenarios=abd_crash_minority;seeds=0;"
                          "value_size=128,512;think_time=1.5")
        assert dict(grid.params) == {"value_size": (128, 512), "think_time": (1.5,)}

    def test_seed_forms(self):
        assert parse_seeds("0..3") == (0, 1, 2, 3)
        assert parse_seeds("4,2,9") == (4, 2, 9)
        with pytest.raises(ValueError):
            parse_seeds("3..1")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="matches nothing"):
            parse_grid("scenarios=no_such_scenario;seeds=0")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown grid key"):
            parse_grid("scenarios=all;seeds=0;num_servers=9")

    def test_duplicate_clause_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_grid("scenarios=all;scenarios=all")

    def test_missing_scenarios_rejected(self):
        with pytest.raises(ValueError, match="must name scenarios"):
            parse_grid("seeds=0..1")

    def test_resolve_preserves_registration_order_and_dedups(self):
        registered = scenario_names()
        names = resolve_scenarios(["treas_*", "all"])
        # treas matches come first (in registration order), then the rest of
        # the registry (also in registration order), with no duplicates.
        treas = [name for name in registered if name.startswith("treas_")]
        rest = [name for name in registered if not name.startswith("treas_")]
        assert names == tuple(treas + rest)


class TestGridExpansion:
    def test_expansion_order_is_scenario_major(self):
        grid = SweepGrid(scenarios=("a_scenario", "b_scenario"), seeds=(0, 1))
        cells = [(spec.scenario, spec.seed) for spec in grid.expand()]
        assert cells == [("a_scenario", 0), ("a_scenario", 1),
                         ("b_scenario", 0), ("b_scenario", 1)]

    def test_param_cross_product(self):
        grid = SweepGrid(scenarios=("s",), seeds=(0,),
                         params=(("value_size", (128, 256)), ("think_time", (1.0,))))
        specs = grid.expand()
        assert len(specs) == 2
        assert {dict(spec.params)["value_size"] for spec in specs} == {128, 256}
        assert all(dict(spec.params)["think_time"] == 1.0 for spec in specs)

    def test_cell_ids_stable(self):
        spec = RunSpec("abd_crash_minority", 3,
                       params=(("think_time", 1.0), ("value_size", 128)))
        assert spec.cell_id == "abd_crash_minority/s3[think_time=1.0,value_size=128]"

    def test_invalid_param_rejected(self):
        with pytest.raises(ValueError, match="unknown grid parameter"):
            SweepGrid(scenarios=("s",), seeds=(0,), params=(("bogus", (1,)),))

    def test_duplicate_param_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate grid parameter axis"):
            SweepGrid(scenarios=("s",), seeds=(0,),
                      params=(("value_size", (128, 256)), ("value_size", (512,))))

    def test_describe_counts_cells(self):
        grid = SweepGrid(scenarios=("a", "b"), seeds=(0, 1, 2),
                         params=(("value_size", (1, 2)),))
        assert grid.describe()["cells"] == 12


class TestExecuteRun:
    def test_record_shape(self):
        record = execute_run(RunSpec("abd_crash_minority", 0))
        assert record.ok, record.failure
        assert record.checker_method == "fast"
        assert record.history_ops > 0
        assert record.events > 0 and record.messages > 0
        assert len(record.signature_hash) == 64
        assert record.read_latency["count"] > 0
        assert record.write_latency["p99"] >= record.write_latency["p50"] > 0

    def test_matches_run_scenario_signature(self):
        import hashlib

        from repro.workloads.scenarios import run_scenario

        record = execute_run(RunSpec("treas_crash_server", 2))
        direct = run_scenario("treas_crash_server", seed=2)
        expected = hashlib.sha256(repr(direct.signature()).encode()).hexdigest()
        assert record.signature_hash == expected

    def test_param_override_changes_workload(self):
        base = execute_run(RunSpec("abd_crash_minority", 0))
        bigger = execute_run(RunSpec(
            "abd_crash_minority", 0,
            params=(("operations_per_reader", 5), ("operations_per_writer", 5))))
        assert bigger.ok, bigger.failure
        assert bigger.history_ops > base.history_ops
        assert bigger.signature_hash != base.signature_hash

    def test_param_override_is_deterministic(self):
        spec = RunSpec("abd_crash_minority", 1, params=(("value_size", 64),))
        assert execute_run(spec).signature_hash == execute_run(spec).signature_hash

    def test_unknown_scenario_is_recorded_not_raised(self):
        # expand() does not validate names (grids can be built directly), so
        # the worker must contain the KeyError instead of killing the pool.
        record = execute_run(RunSpec("no_such_scenario", 0))
        assert not record.ok
        assert "cell crashed" in record.failure
        assert record.signature_hash == ""

    def test_broken_cell_is_recorded_not_raised(self):
        # value_size must be non-negative; the worker reports the failure as
        # a failed cell instead of poisoning the whole campaign.
        record = execute_run(RunSpec("abd_crash_minority", 0,
                                     params=(("value_size", -1),)))
        assert not record.ok
        assert "value size must be non-negative" in record.failure


class TestCampaign:
    GRID = SweepGrid(scenarios=("abd_crash_minority", "treas_crash_server"),
                     seeds=(0, 1))

    def test_serial_campaign(self):
        result = campaign(self.GRID, jobs=1)
        assert result.ok and result.passed == 4
        assert [r.cell_id for r in result.records] == [
            spec.cell_id for spec in self.GRID.expand()]
        assert result.checker_method_counts() == {"fast": 4}

    def test_pooled_matches_serial_hash_for_hash(self):
        serial = campaign(self.GRID, jobs=1)
        pooled = campaign(self.GRID, jobs=2)
        assert pooled.ok
        assert serial.signature_map() == pooled.signature_map()
        # Records come back in expansion order regardless of completion order.
        assert [r.cell_id for r in pooled.records] == [r.cell_id for r in serial.records]

    def test_progress_callback_sees_every_cell(self):
        seen = []
        campaign(self.GRID, jobs=1, progress=seen.append)
        assert [record.cell_id for record in seen] == [
            spec.cell_id for spec in self.GRID.expand()]

    def test_pass_matrix_and_render(self):
        result = campaign(self.GRID, jobs=1)
        matrix = result.pass_matrix()
        assert matrix == {"abd_crash_minority": {0: True, 1: True},
                          "treas_crash_server": {0: True, 1: True}}
        rendered = result.render_matrix()
        assert "abd_crash_minority" in rendered and "ok" in rendered

    def test_to_json_schema(self):
        result = campaign(SweepGrid(scenarios=("abd_crash_minority",), seeds=(0,)),
                          jobs=1)
        report = result.to_json()
        assert report["cells_total"] == 1 and report["cells_failed"] == 0
        assert report["slowest_cell"] == "abd_crash_minority/s0"
        cell = report["cells"][0]
        assert {"signature_hash", "wall_clock_sec", "read_latency",
                "write_latency", "checker_method"} <= set(cell)
        json.dumps(report)  # must be serialisable as-is

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            campaign(self.GRID, jobs=0)

    def test_default_jobs_is_positive(self):
        assert default_jobs() >= 1

    def test_pinned_chunk_matches_serial_hash_for_hash(self):
        serial = campaign(self.GRID, jobs=1)
        chunked = campaign(self.GRID, jobs=2, chunk=3)
        assert chunked.chunk == 3
        assert chunked.signature_map() == serial.signature_map()
        assert [r.cell_id for r in chunked.records] == \
            [r.cell_id for r in serial.records]

    def test_auto_chunk_is_recorded(self):
        result = campaign(self.GRID, jobs=2)
        assert result.chunk >= 1
        assert result.pool_spinup_sec >= 0.0

    def test_workers_records_effective_pool_size(self):
        # A --jobs 16 request on a smaller host must not report 16: the
        # engine caps the pool at usable_cores() (and the pending cells)
        # and records what it actually started.
        serial = campaign(self.GRID, jobs=1)
        assert serial.workers == 1
        pooled = campaign(self.GRID, jobs=16)
        assert pooled.jobs == 16
        assert pooled.workers == \
            min(16, len(self.GRID.expand()), usable_cores())
        assert pooled.to_json()["workers"] == pooled.workers

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk"):
            campaign(self.GRID, jobs=2, chunk=0)

    def test_max_cells_truncates_deterministically(self):
        partial = campaign(self.GRID, jobs=1, max_cells=2)
        assert not partial.complete
        assert [r.cell_id for r in partial.records] == \
            [spec.cell_id for spec in self.GRID.expand()[:2]]

    def test_max_events_axis_is_a_livelock_frontier(self):
        # A starved event budget fails the cell (the adaptive campaigns
        # bisect exactly this), a generous one verifies.
        grid = SweepGrid(scenarios=("abd_crash_minority",), seeds=(0,),
                         params=(("max_events", (200, 60000)),))
        result = campaign(grid, jobs=1)
        by_budget = {dict(r.params)["max_events"]: r for r in result.records}
        assert not by_budget[200].ok
        assert by_budget[60000].ok


class TestAutoChunk:
    def test_cheap_cells_get_big_batches(self):
        # 5ms cells: ~50 cells per 0.25s task, but load balance caps first.
        assert auto_chunk(0.005, 1000, 4) == 50

    def test_expensive_cells_get_single_batches(self):
        assert auto_chunk(0.5, 1000, 4) == 1

    def test_load_balance_keeps_two_tasks_per_worker(self):
        # 16 pending cells over 4 workers: never more than 2 cells per task
        # even though the cost target would allow far larger batches.
        assert auto_chunk(0.001, 16, 4) == 2

    def test_capped_and_floored(self):
        assert auto_chunk(0.0, 100_000, 1) == MAX_AUTO_CHUNK
        assert auto_chunk(100.0, 10, 1) == 1


class TestUsableCores:
    def test_positive_and_at_most_affinity(self):
        import os

        assert 1 <= usable_cores() <= len(os.sched_getaffinity(0))

    def test_cgroup_quota_caps_cores(self, monkeypatch):
        import repro.sweep.engine as engine

        monkeypatch.setattr(engine.os, "sched_getaffinity",
                            lambda pid: set(range(16)))
        monkeypatch.setattr(engine, "_cgroup_cpu_quota", lambda: 2.0)
        assert usable_cores() == 2
        monkeypatch.setattr(engine, "_cgroup_cpu_quota", lambda: None)
        assert usable_cores() == 16
        # A sub-core quota still leaves one usable core.
        monkeypatch.setattr(engine, "_cgroup_cpu_quota", lambda: 0.5)
        assert usable_cores() == 1

    def test_cgroup_v2_parsing(self, tmp_path):
        (tmp_path / "cpu.max").write_text("200000 100000\n")
        assert _cgroup_cpu_quota(tmp_path) == 2.0
        (tmp_path / "cpu.max").write_text("max 100000\n")
        assert _cgroup_cpu_quota(tmp_path) is None

    def test_cgroup_v1_parsing(self, tmp_path):
        (tmp_path / "cpu").mkdir()
        (tmp_path / "cpu" / "cpu.cfs_quota_us").write_text("150000\n")
        (tmp_path / "cpu" / "cpu.cfs_period_us").write_text("100000\n")
        assert _cgroup_cpu_quota(tmp_path) == 1.5
        (tmp_path / "cpu" / "cpu.cfs_quota_us").write_text("-1\n")
        assert _cgroup_cpu_quota(tmp_path) is None

    def test_missing_cgroup_means_no_quota(self, tmp_path):
        assert _cgroup_cpu_quota(tmp_path / "nope") is None

    def test_default_jobs_follows_usable_cores(self, monkeypatch):
        import repro.sweep.engine as engine

        monkeypatch.setattr(engine, "usable_cores", lambda: 32)
        assert default_jobs() == 8
        monkeypatch.setattr(engine, "usable_cores", lambda: 3)
        assert default_jobs() == 3


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([])["count"] == 0

    def test_percentiles_nearest_rank(self):
        sample = list(range(1, 101))  # 1..100
        summary = latency_summary(sample)
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["p99"] == 99
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_single_sample(self):
        summary = latency_summary([2.5])
        assert summary["p50"] == summary["p99"] == summary["max"] == 2.5


class TestCli:
    def test_cli_runs_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0..1",
                           "--jobs", "1", "--output", str(out), "--quiet"])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["cells_total"] == 2 and report["cells_failed"] == 0
        assert "pass" in capsys.readouterr().out

    def test_cli_check_serial_gate(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = sweep_main(["--grid", "scenarios=treas_crash_server;seeds=0",
                           "--jobs", "2", "--check-serial",
                           "--output", str(out), "--quiet"])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["serial_check"]["mismatches"] == 0

    def test_cli_list(self, capsys):
        assert sweep_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_cli_bad_grid_raises(self):
        with pytest.raises(ValueError):
            sweep_main(["--grid", "scenarios=nope;seeds=0"])

    def test_cli_chunk_flag(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0..1",
                           "--jobs", "2", "--chunk", "2",
                           "--output", str(out), "--quiet"])
        assert code == 0
        assert json.loads(out.read_text())["chunk"] == 2

    def test_cli_check_serial_all(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = sweep_main(["--grid", "scenarios=treas_crash_server;seeds=0",
                           "--jobs", "2", "--check-serial=all",
                           "--output", str(out), "--quiet"])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["serial_check"]["mode"] == "all"
        assert report["serial_check"]["mismatches"] == 0

    def test_cli_check_serial_bad_value(self):
        with pytest.raises(SystemExit):
            sweep_main(["--grid", "scenarios=treas_crash_server;seeds=0",
                        "--check-serial=zero", "--quiet"])

    def test_cli_stop_after_then_resume(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        out = tmp_path / "sweep.json"
        code = sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0..3",
                           "--jobs", "1", "--checkpoint", str(ckpt),
                           "--stop-after", "2", "--quiet"])
        assert code == 3  # incomplete but failure-free
        code = sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0..3",
                           "--jobs", "1", "--checkpoint", str(ckpt),
                           "--resume", "--output", str(out), "--quiet"])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["complete"] and report["resumed_cells"] == 2
        assert report["cells_total"] == 4

    def test_cli_existing_checkpoint_without_resume_exits_2(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        args = ["--grid", "scenarios=abd_crash_minority;seeds=0",
                "--jobs", "1", "--checkpoint", str(ckpt), "--quiet"]
        assert sweep_main(args) == 0
        assert sweep_main(args) == 2

    def test_cli_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            sweep_main(["--grid", "scenarios=abd_crash_minority;seeds=0",
                        "--resume", "--quiet"])
